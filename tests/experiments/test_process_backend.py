"""Tests for running ExperimentConfigs on the multi-process backend."""

import dataclasses

import pytest

from repro.analysis.export import result_from_dict, result_to_dict
from repro.experiments.process_backend import (
    PROCESS_POLICIES,
    process_scenario,
    run_process_experiment,
)
from repro.experiments.runner import run_experiment
from repro.faults.schedule import FaultSchedule
from repro.proc.supervisor import SupervisorConfig
from repro.streams.region import RegionParams

FAST = SupervisorConfig(
    heartbeat_interval=0.02,
    heartbeat_timeout=0.25,
    monitor_interval=0.01,
    backoff_start=0.02,
    backoff_max=0.1,
)


class TestValidation:
    def test_rejects_simulator_only_policies(self):
        config = process_scenario(crash_worker=None, total_tuples=10)
        for policy in ("reroute", "oracle"):
            with pytest.raises(ValueError, match="not executable"):
                run_process_experiment(config, policy)
        assert "reroute" not in PROCESS_POLICIES

    def test_fixed_weights_go_with_fixed_policy_only(self):
        config = process_scenario(crash_worker=None, total_tuples=10)
        with pytest.raises(ValueError, match="fixed_weights"):
            run_process_experiment(config, "fixed")
        with pytest.raises(ValueError, match="fixed_weights"):
            run_process_experiment(config, "rr", fixed_weights=[1, 1, 1, 1])

    def test_requires_a_finite_tuple_budget(self):
        config = dataclasses.replace(
            process_scenario(crash_worker=None), total_tuples=None,
            duration=30.0,
        )
        with pytest.raises(ValueError, match="total_tuples"):
            run_process_experiment(config, "rr")

    def test_rejects_open_loop_arrival_rate(self):
        config = dataclasses.replace(
            process_scenario(crash_worker=None), arrival_rate=500.0
        )
        with pytest.raises(ValueError, match="arrival_rate"):
            run_process_experiment(config, "rr")

    def test_region_params_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RegionParams(backend="quantum")
        assert RegionParams().backend == "sim"
        assert RegionParams(backend="process").backend == "process"


class TestScenario:
    def test_defaults_build_a_process_config(self):
        config = process_scenario()
        assert config.region.backend == "process"
        assert config.total_tuples == 400
        assert not config.fault_schedule.empty()
        # The host spec is derived so cost maps back to seconds exactly.
        speed = config.host_specs[0].thread_speed
        assert config.tuple_cost / speed == pytest.approx(0.002)

    def test_fault_free_scenario_has_empty_schedule(self):
        assert process_scenario(crash_worker=None).fault_schedule.empty()

    def test_count_trigger_is_used_when_given(self):
        config = process_scenario(crash_worker=2, crash_at_emitted=50)
        assert config.fault_schedule.count_crashes[0].emitted == 50
        assert config.fault_schedule.count_crashes[0].worker == 2

    def test_batch_size_rides_region_params(self):
        assert process_scenario().region.batch_size == 1
        assert process_scenario(batch_size=16).region.batch_size == 16


@pytest.mark.sockets
class TestExecution:
    def test_run_experiment_dispatches_on_backend(self):
        config = process_scenario(
            n_workers=2,
            total_tuples=60,
            tuple_cost_seconds=0.0005,
            crash_worker=None,
        )
        result = run_experiment(config, "rr", record_series=False)
        assert result.completed
        assert result.emitted == 60
        assert result.policy == "rr"
        assert result.worker_restarts == 0
        assert result.execution_time is not None

    def test_kill_recovery_round_trips_through_export(self):
        config = process_scenario(
            n_workers=3,
            total_tuples=200,
            tuple_cost_seconds=0.001,
            crash_worker=1,
            crash_at_emitted=30,
        )
        result = run_process_experiment(
            config, "rr", supervisor_config=FAST, timeout=60.0
        )
        assert result.completed
        assert result.emitted == 200
        assert result.worker_restarts >= 1
        assert result.quarantines >= 1
        assert result.time_to_quarantine is not None
        assert result.tuples_replayed >= 0
        # Retransmissions are visible in the sent-vs-emitted accounting.
        assert result.total_sent >= result.emitted
        restored = result_from_dict(result_to_dict(result))
        assert restored.worker_restarts == result.worker_restarts
        assert restored.quarantines == result.quarantines

    def test_batched_wire_runs_through_experiment_dispatch(self):
        # batch_size plumbs ExperimentConfig -> run_process_experiment ->
        # ProcessRegion, surviving a mid-run kill on the batched wire.
        config = process_scenario(
            n_workers=2,
            total_tuples=120,
            tuple_cost_seconds=0.001,
            crash_worker=1,
            crash_at_emitted=20,
            batch_size=8,
        )
        result = run_process_experiment(
            config, "rr", supervisor_config=FAST, timeout=60.0
        )
        assert result.completed
        assert result.emitted == 120
        assert result.worker_restarts >= 1

    def test_summary_mentions_restarts(self):
        config = process_scenario(
            n_workers=2,
            total_tuples=120,
            tuple_cost_seconds=0.001,
            crash_worker=0,
            crash_at_emitted=20,
        )
        result = run_process_experiment(
            config, "rr", supervisor_config=FAST, timeout=60.0
        )
        assert result.worker_restarts >= 1
        assert "worker_restarts=" in result.summary()
