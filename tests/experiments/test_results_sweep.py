"""Unit tests for sweep rows, normalization, and the sweep driver."""

import pytest

from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.results import SweepRow, format_sweep_table, normalize_to
from repro.experiments.sweep import run_sweep
from repro.workloads.external_load import LoadSchedule


class TestNormalization:
    def test_normalized_to_baseline_per_pe_count(self):
        rows = [
            SweepRow(2, "oracle", 10.0, 100.0),
            SweepRow(2, "rr", 40.0, 100.0),
            SweepRow(4, "oracle", 5.0, 200.0),
            SweepRow(4, "rr", 30.0, 200.0),
        ]
        normalize_to(rows, "oracle")
        by = {(r.n_pes, r.policy): r for r in rows}
        assert by[(2, "oracle")].normalized_time == pytest.approx(1.0)
        assert by[(2, "rr")].normalized_time == pytest.approx(4.0)
        assert by[(4, "rr")].normalized_time == pytest.approx(6.0)

    def test_missing_baseline_leaves_none(self):
        rows = [SweepRow(2, "rr", 40.0, 100.0)]
        normalize_to(rows, "oracle")
        assert rows[0].normalized_time is None

    def test_incomplete_run_leaves_none(self):
        rows = [
            SweepRow(2, "oracle", 10.0, 100.0),
            SweepRow(2, "rr", None, 100.0),
        ]
        normalize_to(rows, "oracle")
        assert rows[1].normalized_time is None


class TestFormatting:
    def test_table_contains_policies_and_sizes(self):
        rows = [
            SweepRow(2, "oracle", 10.0, 123.0, normalized_time=1.0),
            SweepRow(2, "rr", 40.0, 99.0, normalized_time=4.0),
        ]
        table = format_sweep_table(rows, title="demo")
        assert "demo" in table
        assert "oracle" in table and "rr" in table
        assert "4.00x" in table
        assert "123.0" in table

    def test_incomplete_cells_render_dash(self):
        rows = [SweepRow(2, "rr", None, 0.0)]
        assert "-" in format_sweep_table(rows)


class TestRunSweep:
    def test_grid_runs_every_cell(self):
        def factory(n):
            return ExperimentConfig(
                name=f"grid-{n}",
                n_workers=n,
                tuple_cost=1000.0,
                host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
                worker_host=[0] * n,
                load_schedule=LoadSchedule.static_load([0], 10.0),
                total_tuples=1500,
            )

        rows = run_sweep(factory, [2, 4], ["oracle", "rr"])
        assert len(rows) == 4
        by = {(r.n_pes, r.policy): r for r in rows}
        assert by[(2, "oracle")].normalized_time == pytest.approx(1.0)
        assert by[(2, "rr")].normalized_time > 1.0
