"""Tests for end-to-end region latency measurement."""

import pytest

from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.runner import run_experiment
from repro.workloads.external_load import LoadSchedule


def config(**overrides):
    defaults = dict(
        name="latency",
        n_workers=2,
        tuple_cost=1_000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
        worker_host=[0, 0],
        duration=60.0,
        splitter_cost_multiplies=125.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestLatencyMeasurement:
    def test_latency_series_recorded(self):
        result = run_experiment(config(), "rr")
        assert len(result.latency_series) > 10
        assert all(v >= 0 for _t, v in result.latency_series)

    def test_latency_reflects_queueing(self):
        # In a saturated region every tuple crosses full buffers; latency
        # must be at least the pipeline's service backlog, far above one
        # bare service time (5 ms at this scale).
        result = run_experiment(config(), "rr")
        assert result.final_latency() > 0.05

    def test_unsaturated_region_has_low_latency(self):
        # A slow splitter (no queueing anywhere): latency ~ one service.
        slow_source = config(splitter_cost_multiplies=4_000.0)
        result = run_experiment(slow_source, "rr")
        assert result.final_latency() < 0.05

    def test_capacity_aware_weights_cut_latency(self):
        # With one 10x worker, RR queues everything behind the slow PE.
        # Capacity-proportional weights (Oracle*) slash the region
        # latency; the learned balancer matches RR's latency at worst
        # (its exploration keeps re-probing the slow connection) while
        # multiplying throughput.
        loaded = config(
            load_schedule=LoadSchedule.static_load([0], 10.0),
            duration=120.0,
        )
        rr = run_experiment(loaded, "rr")
        oracle = run_experiment(loaded, "oracle")
        lb = run_experiment(loaded, "lb-adaptive")
        assert oracle.final_latency() < 0.5 * rr.final_latency(), (
            oracle.final_latency(),
            rr.final_latency(),
        )
        assert lb.final_latency() < 1.2 * rr.final_latency()
        assert lb.final_throughput() > 3.0 * rr.final_throughput()
