"""Determinism is the invariant of the hot-path optimizations.

Three guarantees pinned here:

* the engine's event order is reproducible bit-for-bit (golden trace
  hash over every fired event's ``(time, seq)``);
* transfer batching (one arrival event per pump instead of one per
  tuple) does not change any experiment result;
* the process-pool sweep executor returns exactly the rows the serial
  path produces.
"""

import dataclasses
import json

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.experiments.figures import fig09_config
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_sweep
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost


def result_fingerprint(result):
    """Everything an experiment measures, JSON-canonicalized.

    Wall-clock fields are excluded by construction: they are the only
    nondeterministic outputs.
    """
    payload = {
        "execution_time": result.execution_time,
        "completed": result.completed,
        "emitted": result.emitted,
        "sim_time": result.sim_time,
        "rerouted": result.rerouted,
        "total_sent": result.total_sent,
        "block_events": result.block_events,
        "final_weights": result.final_weights,
        "events_processed": result.events_processed,
        "throughput": list(
            zip(result.throughput_series.times, result.throughput_series.values)
        ),
        "weights": [list(zip(s.times, s.values)) for s in result.weight_series],
        "rates": [list(zip(s.times, s.values)) for s in result.rate_series],
    }
    return json.dumps(payload, sort_keys=True)


def small_region_trace(*, wire_delay: float, batch_transfers: bool) -> str:
    """Event-trace digest of a small two-worker region run."""
    sim = Simulator()
    sim.enable_tracing()
    region = ParallelRegion(
        sim,
        FiniteSource(400, constant_cost(1000.0)),
        RoundRobinPolicy(2),
        Placement.single_host(2, Host("h", cores=2, thread_speed=1e6)),
        params=RegionParams(
            wire_delay=wire_delay,
            batch_transfers=batch_transfers,
            service_jitter=0.05,
        ),
    )
    region.start()
    sim.run_until_idle(100.0)
    assert region.merger.emitted == 400
    return sim.trace_digest()


class TestGoldenTrace:
    def test_event_order_is_reproducible(self):
        first = small_region_trace(wire_delay=0.0, batch_transfers=True)
        second = small_region_trace(wire_delay=0.0, batch_transfers=True)
        assert first == second

    def test_event_order_reproducible_with_wire_delay(self):
        first = small_region_trace(wire_delay=1e-4, batch_transfers=True)
        second = small_region_trace(wire_delay=1e-4, batch_transfers=True)
        assert first == second


class TestBatchingInvariance:
    def test_figure9_results_identical_with_batching_on_and_off(self):
        # Nonzero wire delay exercises the batched arrival path (with
        # zero delay hand-off is synchronous and batching is moot).
        def run(batch: bool):
            config = fig09_config(2, dynamic=True)
            config = dataclasses.replace(
                config,
                region=dataclasses.replace(
                    config.region,
                    wire_delay=1e-4,
                    batch_transfers=batch,
                ),
            )
            return run_experiment(config, "lb-adaptive")

        batched = run(True)
        unbatched = run(False)
        assert result_fingerprint(batched) == result_fingerprint(unbatched)

    def test_batch_moves_multiple_tuples_in_one_event(self):
        from repro.net.connection import SimulatedConnection

        def pump_burst(batch: bool) -> int:
            """Events scheduled by one pump that moves two backlogged tuples."""
            sim = Simulator()
            conn = SimulatedConnection(
                sim,
                0,
                send_capacity=8,
                recv_capacity=4,
                wire_delay=1e-3,
                batch_transfers=batch,
            )
            for i in range(12):
                assert conn.send_nowait(i)
            sim.run_until(1.0)
            assert conn.recv_available() == 4  # receive buffer full
            assert conn.queued_tuples() == 12
            # Free two receive slots at once (a bursty consumer), then let
            # flow control catch up in a single pump.
            conn._recv_buffer.pop()
            conn._recv_buffer.pop()
            before = sim.perf.events_scheduled
            conn._pump()
            return sim.perf.events_scheduled - before

        assert pump_burst(batch=True) == 1  # both tuples share one event
        assert pump_burst(batch=False) == 2  # pre-batching: one event each


class TestSweepParallelism:
    @pytest.mark.parametrize("policies", [("oracle", "rr")])
    def test_parallel_rows_match_serial_rows(self, policies):
        def factory(n):
            return fig09_config(n, dynamic=False)

        serial = run_sweep(factory, (2,), policies, jobs=1)
        # jobs=2 engages the process pool (falling back to the serial
        # path on platforms where pools are unavailable — in which case
        # this still pins that the fallback is byte-identical).
        parallel = run_sweep(factory, (2,), policies, jobs=2)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(
                lambda n: fig09_config(n, dynamic=False),
                (2,),
                ("rr",),
                jobs=0,
            )
