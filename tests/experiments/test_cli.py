"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_sweep_options(self):
        args = build_parser().parse_args(["sweep", "--pes", "2,4", "--dynamic"])
        assert args.pes == "2,4"
        assert args.dynamic


class TestCommands:
    def test_list_prints_every_figure(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for bench in ("bench_fig02", "bench_fig12", "bench_sec44"):
            assert bench in out

    def test_unknown_figure_fails(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_sec44_runs(self, capsys):
        assert main(["figure", "sec44"]) == 0
        out = capsys.readouterr().out
        assert "rerouted" in out
        assert "gain" in out

    @pytest.mark.slow
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "allocation weights over time" in out
