"""Sanity tests for the per-figure experiment builders.

Full shape checks live in ``benchmarks/``; here we verify the builders
produce internally consistent configurations (separation of time scales,
load classes, placements) without running the heavy experiments.
"""

import pytest

from repro.experiments import figures


class TestScalingDiscipline:
    """Every figure must respect interval >> heaviest service time."""

    @pytest.mark.parametrize(
        "config,heavy_multiplier",
        [
            (figures.fig08_top_config(), 100.0),
            (figures.fig08_bottom_config(), 1.0),
            (figures.fig09_config(8, dynamic=True), 10.0),
            (figures.fig10_config(8, dynamic=True), 100.0),
            (figures.fig11_top_config(), 1.0),
            (figures.fig12_config(), 100.0),
            (figures.fig13_config(32), 100.0),
        ],
    )
    def test_heavy_service_fits_in_interval(self, config, heavy_multiplier):
        slowest_thread = min(s.thread_speed for s in config.host_specs)
        heavy_service = config.tuple_cost * heavy_multiplier / slowest_thread
        assert heavy_service <= config.sample_interval / 5.0, config.name


class TestFig08:
    def test_top_has_one_loaded_pe_removed_at_eighth(self):
        config = figures.fig08_top_config(duration=400.0)
        assert config.load_schedule.initial_multipliers(3) == [100.0, 1.0, 1.0]
        assert config.load_schedule.change_times() == [50.0]

    def test_bottom_has_equal_capacity(self):
        config = figures.fig08_bottom_config()
        assert config.load_schedule.initial_multipliers(3) == [1.0, 1.0, 1.0]


class TestFig09Fig10:
    def test_half_loaded(self):
        config = figures.fig09_config(8, dynamic=False)
        multipliers = config.load_schedule.initial_multipliers(8)
        assert multipliers == [10.0] * 4 + [1.0] * 4

    def test_dynamic_removal_at_eighth_of_budget(self):
        config = figures.fig09_config(4, dynamic=True, total_tuples=8000)
        assert all(e.emitted == 1000 for e in config.load_schedule.count_events)

    def test_fig09_splitter_knee_at_8_pes(self):
        config = figures.fig09_config(8, dynamic=False)
        per_pe = figures.SLOW_SPEED / config.tuple_cost
        assert config.max_ingest_rate() == pytest.approx(8 * per_pe)

    def test_fig10_load_is_100x(self):
        config = figures.fig10_config(4, dynamic=False)
        assert config.load_schedule.initial_multipliers(4)[:2] == [100.0, 100.0]

    def test_no_oversubscription(self):
        for n in (2, 4, 8, 16):
            config = figures.fig09_config(n, dynamic=False)
            assert config.host_specs[0].cores >= n


class TestFig11:
    def test_top_places_connection1_on_fast_host(self):
        config = figures.fig11_top_config()
        assert config.host_specs[config.worker_host[0]].smt_per_core == 2
        assert config.host_specs[config.worker_host[1]].smt_per_core == 1

    def test_even_placement_fills_slow_then_fast(self):
        config = figures.fig11_bottom_config(24, "even")
        slow_count = sum(1 for h in config.worker_host if h == 0)
        fast_count = sum(1 for h in config.worker_host if h == 1)
        assert slow_count == 8
        assert fast_count == 16

    def test_even_placement_half_half_at_16(self):
        config = figures.fig11_bottom_config(16, "even")
        assert sum(1 for h in config.worker_host if h == 0) == 8

    def test_all_fast_and_all_slow(self):
        fast = figures.fig11_bottom_config(8, "all-fast")
        slow = figures.fig11_bottom_config(8, "all-slow")
        assert set(fast.worker_host) == {1}
        assert set(slow.worker_host) == {0}

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            figures.fig11_bottom_config(8, "scattered")


class TestFig12Fig13:
    def test_fig12_three_load_classes(self):
        config = figures.fig12_config()
        multipliers = config.load_schedule.initial_multipliers(64)
        assert multipliers.count(100.0) == 20
        assert multipliers.count(5.0) == 20
        assert multipliers.count(1.0) == 24

    def test_fig12_clustering_enabled(self):
        assert figures.fig12_config().balancer.clustering

    def test_fig12_trickle_safe_sigma(self):
        # sigma must stay below resolution x the 100x PEs' service rate so
        # a 0.1% residual weight cannot gate the region (see DESIGN.md).
        config = figures.fig12_config()
        heavy_rate = config.host_specs[0].thread_speed / (
            config.tuple_cost * 100.0
        )
        assert config.max_ingest_rate() <= 1000 * heavy_rate

    def test_fig13_half_loaded_with_progress_removal(self):
        config = figures.fig13_config(32, total_tuples=80_000)
        multipliers = config.load_schedule.initial_multipliers(32)
        assert multipliers[:16] == [100.0] * 16
        assert all(e.emitted == 10_000 for e in config.load_schedule.count_events)


class TestSec44:
    def test_one_pe_100x(self):
        config = figures.sec44_config(1000)
        assert config.load_schedule.initial_multipliers(2) == [100.0, 1.0]

    def test_figure_index_covers_all_figures(self):
        figures_listed = {f.figure for f in figures.FIGURES}
        assert {"Fig. 2", "Fig. 5", "Fig. 7", "Fig. 8 top", "Fig. 8 bottom",
                "Fig. 9", "Fig. 10", "Fig. 11 top", "Fig. 11 bottom",
                "Fig. 12", "Fig. 13", "Sec. 4.4"} == figures_listed
