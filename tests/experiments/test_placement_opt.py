"""Tests for cluster-wide placement (the Section 8 extension)."""

import itertools

import pytest

from repro.experiments.config import HostSpec
from repro.experiments.placement_opt import (
    capacity_of,
    marginal_capacity,
    plan_placement,
)


def hosts():
    slow = HostSpec.slow(1e5)  # 8 threads at 1e5
    fast = HostSpec.fast(1e5)  # 16 threads at 1.857e5
    return [slow, fast]


class TestMarginalCapacity:
    def test_full_thread_then_smt_then_zero(self):
        fast = HostSpec("fast", cores=2, smt_per_core=2, thread_speed=100.0,
                        smt_efficiency=0.5)
        assert marginal_capacity(fast, 0) == 100.0
        assert marginal_capacity(fast, 1) == 100.0
        assert marginal_capacity(fast, 2) == 50.0  # SMT thread
        assert marginal_capacity(fast, 3) == 50.0
        assert marginal_capacity(fast, 4) == 0.0  # oversubscribed

    def test_marginals_non_increasing(self):
        for spec in hosts():
            marginals = [marginal_capacity(spec, k) for k in range(30)]
            assert marginals == sorted(marginals, reverse=True)


class TestPlanPlacement:
    def test_reproduces_figure11_24pe_split(self):
        # The paper's best 24-PE configuration: 16 on fast, 8 on slow.
        plan = plan_placement(hosts(), 24)
        assert plan.per_host == [8, 16]

    def test_prefers_fast_host_first(self):
        plan = plan_placement(hosts(), 8)
        assert plan.per_host == [0, 8]

    def test_fills_slow_before_oversubscribing_fast(self):
        # Beyond the fast host's 16 threads, slow threads are worth more
        # than nothing.
        plan = plan_placement(hosts(), 17)
        assert plan.per_host[0] >= 1

    def test_total_capacity_matches_assignment(self):
        plan = plan_placement(hosts(), 24)
        assert plan.total_capacity == pytest.approx(
            capacity_of(hosts(), plan.per_host)
        )

    def test_greedy_is_optimal_for_small_instances(self):
        specs = [
            HostSpec("a", cores=2, smt_per_core=2, thread_speed=70.0,
                     smt_efficiency=0.6),
            HostSpec("b", cores=3, smt_per_core=1, thread_speed=100.0),
            HostSpec("c", cores=1, smt_per_core=2, thread_speed=150.0,
                     smt_efficiency=0.3),
        ]
        for n in (1, 3, 5, 8, 11):
            plan = plan_placement(specs, n)
            best = max(
                (
                    capacity_of(specs, split)
                    for split in itertools.product(range(n + 1), repeat=3)
                    if sum(split) == n
                ),
            )
            assert plan.total_capacity == pytest.approx(best), n

    def test_worker_host_consistent_with_per_host(self):
        plan = plan_placement(hosts(), 10)
        for h in range(2):
            assert plan.worker_host.count(h) == plan.per_host[h]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_placement([], 3)
        with pytest.raises(ValueError):
            plan_placement(hosts(), 0)
        with pytest.raises(ValueError):
            capacity_of(hosts(), [1, 2, 3])

    def test_deterministic_tie_breaking(self):
        twins = [HostSpec("a", cores=2, thread_speed=100.0),
                 HostSpec("b", cores=2, thread_speed=100.0)]
        plan = plan_placement(twins, 3)
        assert plan.per_host == [2, 1]
