"""Integration tests for the experiment runner."""

import pytest

from repro.core.balancer import BalancerConfig
from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.runner import run_experiment
from repro.workloads.external_load import LoadSchedule


def quick_config(**overrides):
    defaults = dict(
        name="quick",
        n_workers=2,
        tuple_cost=1000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
        worker_host=[0, 0],
        total_tuples=2000,
        splitter_cost_multiplies=125.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestFiniteRuns:
    def test_rr_completes_budget(self):
        result = run_experiment(quick_config(), "rr")
        assert result.completed
        assert result.emitted == 2000
        assert result.execution_time is not None
        assert result.execution_time <= result.sim_time

    def test_execution_time_reflects_capacity(self):
        fast = run_experiment(quick_config(), "rr")
        slow = run_experiment(
            quick_config(load_schedule=LoadSchedule.static_load([0], 10.0)),
            "rr",
        )
        assert slow.execution_time > 2.0 * fast.execution_time

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(quick_config(), "magic")

    def test_fixed_policy_requires_weights(self):
        with pytest.raises(ValueError):
            run_experiment(quick_config(), "fixed")
        with pytest.raises(ValueError):
            run_experiment(quick_config(), "rr", fixed_weights=[500, 500])

    def test_fixed_weights_steer_traffic(self):
        result = run_experiment(
            quick_config(), "fixed", fixed_weights=[900, 100]
        )
        assert result.completed
        assert result.final_weights == [900, 100]


class TestSeriesRecording:
    def test_series_recorded_per_connection(self):
        config = quick_config(total_tuples=None, duration=20.0)
        result = run_experiment(config, "lb-adaptive")
        assert len(result.weight_series) == 2
        assert len(result.rate_series) == 2
        assert len(result.weight_series[0]) >= 15
        assert len(result.throughput_series) >= 15

    def test_record_series_can_be_disabled(self):
        config = quick_config(total_tuples=None, duration=10.0)
        result = run_experiment(config, "lb-adaptive", record_series=False)
        assert len(result.weight_series[0]) == 0
        assert len(result.throughput_series) >= 5  # throughput always kept

    def test_counter_reset_interval_supported(self):
        config = quick_config(total_tuples=None, duration=10.0)
        result = run_experiment(config, "rr", counter_reset_interval=2.0)
        assert result.emitted > 0


class TestPolicies:
    def test_lb_static_forced_decay_zero(self):
        config = quick_config(
            total_tuples=None,
            duration=15.0,
            balancer=BalancerConfig(decay=0.1),
        )
        result = run_experiment(config, "lb-static")
        assert result.policy == "lb-static"

    def test_oracle_weights_track_capacity(self):
        config = quick_config(
            load_schedule=LoadSchedule.static_load([0], 10.0),
            total_tuples=4000,
        )
        result = run_experiment(config, "oracle")
        assert result.final_weights[0] < result.final_weights[1]
        assert result.completed

    def test_oracle_switches_on_progress_trigger(self):
        config = quick_config(
            load_schedule=LoadSchedule.removed_after_emitted([0], 10.0, 500),
            total_tuples=4000,
        )
        result = run_experiment(config, "oracle")
        # After removal the oracle returns to an even distribution.
        assert abs(result.final_weights[0] - result.final_weights[1]) <= 1

    def test_reroute_reports_fraction(self):
        config = quick_config(
            load_schedule=LoadSchedule.static_load([0], 100.0),
            total_tuples=3000,
            tuple_cost=1000.0,
        )
        result = run_experiment(config, "reroute")
        assert result.rerouted > 0
        assert 0.0 < result.reroute_fraction() < 1.0

    def test_lb_beats_rr_under_imbalance(self):
        config = quick_config(
            load_schedule=LoadSchedule.static_load([0], 10.0),
            total_tuples=6000,
        )
        rr = run_experiment(config, "rr")
        lb = run_experiment(config, "lb-adaptive")
        assert lb.completed and rr.completed
        assert lb.execution_time < rr.execution_time


class TestProgressTriggeredLoad:
    def test_load_removed_after_emitted(self):
        config = quick_config(
            load_schedule=LoadSchedule.removed_after_emitted([0], 50.0, 1000),
            total_tuples=3000,
        )
        result = run_experiment(config, "rr")
        assert result.completed
        # Post-removal throughput should dominate the final window.
        pre = run_experiment(
            quick_config(
                load_schedule=LoadSchedule.static_load([0], 50.0),
                total_tuples=3000,
            ),
            "rr",
        )
        assert result.execution_time < pre.execution_time

    def test_summary_is_readable(self):
        result = run_experiment(quick_config(), "rr")
        text = result.summary()
        assert "policy=rr" in text
        assert "execution_time" in text
