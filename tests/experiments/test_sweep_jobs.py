"""Worker-count resolution for the sweep process pool.

``_resolve_jobs`` arbitrates three sources — the explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, and the machine's CPU
count — with explicit > env > cpu precedence, rejecting anything below 1
at whichever layer supplied it.
"""

import pytest

from repro.experiments.sweep import JOBS_ENV_VAR, _resolve_jobs


class TestExplicitJobs:
    def test_explicit_jobs_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "16")
        assert _resolve_jobs(3) == 3

    def test_explicit_one_is_serial(self):
        assert _resolve_jobs(1) == 1

    @pytest.mark.parametrize("jobs", [0, -1, -100])
    def test_explicit_below_one_rejected(self, jobs):
        with pytest.raises(ValueError, match="at least 1"):
            _resolve_jobs(jobs)


class TestEnvOverride:
    def test_env_used_when_jobs_is_none(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert _resolve_jobs(None) == 5

    def test_env_one_disables_pool(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "1")
        assert _resolve_jobs(None) == 1

    def test_env_whitespace_stripped(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "  7  ")
        assert _resolve_jobs(None) == 7

    @pytest.mark.parametrize("env", ["0", "-2"])
    def test_env_below_one_rejected(self, monkeypatch, env):
        monkeypatch.setenv(JOBS_ENV_VAR, env)
        with pytest.raises(ValueError, match="at least 1"):
            _resolve_jobs(None)

    @pytest.mark.parametrize("env", ["four", "1.5", "2x"])
    def test_env_non_integer_rejected(self, monkeypatch, env):
        monkeypatch.setenv(JOBS_ENV_VAR, env)
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            _resolve_jobs(None)


class TestCpuFallback:
    def test_cpu_count_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 12)
        assert _resolve_jobs(None) == 12

    def test_empty_env_falls_through_to_cpu(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "   ")
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert _resolve_jobs(None) == 4

    def test_unknown_cpu_count_means_one_worker(self, monkeypatch):
        # os.cpu_count() may return None on exotic platforms; the sweep
        # must still run (serially) rather than crash.
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert _resolve_jobs(None) == 1
