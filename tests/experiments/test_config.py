"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig, HostSpec
from repro.workloads.external_load import LoadSchedule


def minimal(**overrides):
    defaults = dict(
        name="test",
        n_workers=2,
        tuple_cost=1000.0,
        host_specs=[HostSpec("h", thread_speed=1e5)],
        duration=10.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestHostSpec:
    def test_build_creates_fresh_hosts(self):
        spec = HostSpec("h", cores=4, thread_speed=100.0)
        assert spec.build() is not spec.build()

    def test_slow_factory(self):
        spec = HostSpec.slow(1e5)
        assert spec.cores == 8
        assert spec.smt_per_core == 1

    def test_fast_factory_speed_ratio(self):
        spec = HostSpec.fast(1e5)
        assert spec.smt_per_core == 2
        assert spec.thread_speed == pytest.approx(1.857e5)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostSpec("h", cores=0)


class TestExperimentConfig:
    def test_default_placement_fills_cores(self):
        config = minimal(
            n_workers=10,
            host_specs=[HostSpec("a", cores=8, thread_speed=1e5),
                        HostSpec("b", cores=8, thread_speed=1e5)],
        )
        assert config.worker_host == [0] * 8 + [1] * 2

    def test_worker_host_length_checked(self):
        with pytest.raises(ValueError):
            minimal(worker_host=[0])

    def test_worker_host_bounds_checked(self):
        with pytest.raises(ValueError):
            minimal(worker_host=[0, 5])

    def test_needs_budget_or_horizon(self):
        with pytest.raises(ValueError):
            minimal(duration=None)

    def test_splitter_cost_sets_send_overhead(self):
        config = minimal(splitter_cost_multiplies=200.0)
        assert config.region.send_overhead == pytest.approx(200.0 / 1e5)
        assert config.max_ingest_rate() == pytest.approx(500.0)

    def test_splitter_thread_speed_override(self):
        config = minimal(
            splitter_cost_multiplies=200.0, splitter_thread_speed=2e5
        )
        assert config.max_ingest_rate() == pytest.approx(1000.0)

    def test_explicit_send_overhead_when_cost_disabled(self):
        from repro.streams.region import RegionParams

        config = minimal(
            splitter_cost_multiplies=None,
            region=RegionParams(send_overhead=0.25),
        )
        assert config.max_ingest_rate() == 4.0

    def test_horizon_uses_duration_when_set(self):
        assert minimal(duration=42.0).horizon() == 42.0

    def test_horizon_bounds_finite_runs(self):
        config = minimal(
            duration=None,
            total_tuples=100,
            load_schedule=LoadSchedule.static_load([0], 10.0),
        )
        # 100 tuples, 1000 multiplies, 10x load, 1e5 speed:
        # worst 0.1 s/tuple -> horizon >= 2 * 100 * 0.1.
        assert config.horizon() >= 20.0

    def test_build_placement_shares_host_objects(self):
        config = minimal(n_workers=2)
        placement = config.build_placement()
        assert placement[0] is placement[1]

    def test_with_name(self):
        copy = minimal().with_name("other")
        assert copy.name == "other"
        assert copy.n_workers == 2
