"""Unit tests for Oracle* weight computation."""

import pytest

from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.oracle import (
    oracle_schedule,
    proportional_weights,
    worker_capacities,
)
from repro.workloads.external_load import LoadSchedule


class TestProportionalWeights:
    def test_sums_to_resolution(self):
        weights = proportional_weights([1.0, 2.0, 3.0], 1000)
        assert sum(weights) == 1000

    def test_proportionality(self):
        assert proportional_weights([3.0, 1.0], 1000) == [750, 250]

    def test_largest_remainder_rounding(self):
        weights = proportional_weights([1.0, 1.0, 1.0], 100)
        assert sorted(weights) == [33, 33, 34]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            proportional_weights([], 100)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            proportional_weights([0.0, 0.0], 100)


def config_with_load(schedule, n=4):
    return ExperimentConfig(
        name="test",
        n_workers=n,
        tuple_cost=1000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=1e6)],
        worker_host=[0] * n,
        load_schedule=schedule,
        duration=10.0,
    )


class TestWorkerCapacities:
    def test_unloaded_capacities_equal(self):
        config = config_with_load(LoadSchedule.none())
        capacities = worker_capacities(config, 0.0)
        assert capacities == [pytest.approx(1000.0)] * 4

    def test_load_divides_capacity(self):
        config = config_with_load(LoadSchedule.static_load([0], 10.0))
        capacities = worker_capacities(config, 0.0)
        assert capacities[0] == pytest.approx(100.0)
        assert capacities[1] == pytest.approx(1000.0)

    def test_explicit_multipliers_override(self):
        config = config_with_load(LoadSchedule.static_load([0], 10.0))
        capacities = worker_capacities(
            config, 0.0, multipliers=[1.0, 1.0, 1.0, 1.0]
        )
        assert capacities[0] == pytest.approx(1000.0)

    def test_host_sharing_accounted(self):
        config = ExperimentConfig(
            name="t",
            n_workers=16,
            tuple_cost=1000.0,
            host_specs=[HostSpec("h", cores=8, thread_speed=1e6)],
            worker_host=[0] * 16,
            duration=1.0,
        )
        capacities = worker_capacities(config, 0.0)
        # 16 PEs on 8 threads: each runs at half speed.
        assert capacities[0] == pytest.approx(500.0)


class TestOracleSchedule:
    def test_static_schedule_has_single_entry(self):
        config = config_with_load(LoadSchedule.static_load([0, 1], 10.0))
        schedule = oracle_schedule(config)
        assert list(schedule) == [0.0]
        weights = schedule[0.0]
        assert weights[0] == weights[1] < weights[2]

    def test_dynamic_schedule_switches_at_change(self):
        config = config_with_load(LoadSchedule.removed_at([0], 10.0, 5.0))
        schedule = oracle_schedule(config)
        assert sorted(schedule) == [0.0, 5.0]
        assert schedule[0.0][0] < schedule[0.0][1]
        assert max(schedule[5.0]) - min(schedule[5.0]) <= 1
