"""Unit tests for the fluid steady-state model."""

import pytest

from repro.sim.fluid import FluidRegion


class TestThroughput:
    def test_even_weights_equal_rates(self):
        region = FluidRegion([100.0, 100.0], splitter_rate=1000.0)
        assert region.throughput() == pytest.approx(200.0)

    def test_bottleneck_gates_region(self):
        # Worker 0 gets 50% but can only do 10/s -> region capped at 20/s.
        region = FluidRegion([10.0, 1000.0], splitter_rate=1e6)
        assert region.throughput() == pytest.approx(20.0)

    def test_splitter_can_gate(self):
        region = FluidRegion([1000.0, 1000.0], splitter_rate=50.0)
        assert region.throughput() == pytest.approx(50.0)

    def test_zero_weight_connection_ignored(self):
        region = FluidRegion([1.0, 100.0], splitter_rate=1e6)
        region.set_weights([0, 1000])
        assert region.throughput() == pytest.approx(100.0)

    def test_weights_must_sum_to_resolution(self):
        region = FluidRegion([1.0, 1.0])
        with pytest.raises(ValueError):
            region.set_weights([500, 400])


class TestDrafting:
    def test_all_blocking_lands_on_bottleneck(self):
        region = FluidRegion([10.0, 1000.0], splitter_rate=100.0)
        region.advance(10.0)
        counters = region.blocking_counters
        assert counters[0].cumulative_seconds > 0
        assert counters[1].cumulative_seconds == 0

    def test_blocked_fraction_matches_throughput_deficit(self):
        region = FluidRegion([10.0, 1000.0], splitter_rate=100.0)
        region.advance(10.0)
        # throughput = 20/s, splitter 100/s -> blocked 80% of 10 s.
        assert region.blocking_counters[0].cumulative_seconds == pytest.approx(8.0)

    def test_no_blocking_when_splitter_gates(self):
        region = FluidRegion([1000.0, 1000.0], splitter_rate=10.0)
        region.advance(5.0)
        assert all(c.cumulative_seconds == 0 for c in region.blocking_counters)

    def test_leader_is_sticky_under_ties(self):
        # Equal capacity, equal weights: the first elected leader keeps
        # absorbing blocking (the paper's draft-leader persistence).
        region = FluidRegion([10.0, 10.0], splitter_rate=100.0)
        for _ in range(10):
            region.advance(1.0)
        blocked = [c.cumulative_seconds for c in region.blocking_counters]
        assert blocked[0] > 0
        assert blocked[1] == 0

    def test_leader_changes_when_load_shifts(self):
        region = FluidRegion([10.0, 10.0], splitter_rate=100.0)
        region.advance(1.0)
        assert region.bottleneck() == 0
        region.set_weights([100, 900])
        region.advance(1.0)
        assert region.bottleneck() == 1
        assert region.blocking_counters[1].cumulative_seconds > 0


class TestDynamics:
    def test_tuples_emitted_accumulate(self):
        region = FluidRegion([10.0, 10.0], splitter_rate=1000.0)
        region.advance(2.0)
        assert region.tuples_emitted == pytest.approx(40.0)

    def test_service_rate_change_takes_effect(self):
        region = FluidRegion([10.0, 10.0], splitter_rate=1000.0)
        region.set_service_rate(0, 1.0)
        assert region.throughput() == pytest.approx(2.0)

    def test_advance_requires_positive_dt(self):
        region = FluidRegion([1.0])
        with pytest.raises(ValueError):
            region.advance(0.0)
