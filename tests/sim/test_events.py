"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: fired.append(t))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["first", "second", "third"]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        cancel = queue.push(0.5, lambda: None)
        cancel.cancel()
        assert queue.pop() is keep

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(0.5, lambda: None)
        queue.push(1.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == 1.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_double_cancel_is_a_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1
        assert queue.cancellations == 1

    def test_cancel_after_fire_is_a_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()
        assert len(queue) == 1
        assert queue.cancellations == 0


class TestLiveCount:
    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[1].cancel()
        events[3].cancel()
        # Cancelled entries are still physically in the heap (lazy
        # deletion) but must not be counted.
        assert len(queue) == 3

    def test_len_decreases_on_pop(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.pop()
        assert len(queue) == 1

    def test_scheduled_total_counts_everything(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None).cancel()
        queue.schedule(2.0, lambda: None)
        queue.pop()
        assert queue.scheduled_total == 2


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        queue = EventQueue()
        doomed = [queue.push(float(i), lambda: None) for i in range(200)]
        survivor = queue.push(1000.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert queue.compactions >= 1
        assert len(queue) == 1
        assert queue.pop() is survivor

    def test_order_preserved_across_compaction(self):
        queue = EventQueue()
        doomed = [queue.push(float(i), lambda: None) for i in range(150)]
        fired = []
        for tag, t in (("a", 5.5), ("b", 2.5), ("c", 8.5)):
            queue.push(t, lambda t=tag: fired.append(t))
        for event in doomed:
            event.cancel()
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["b", "a", "c"]


class TestScheduleFastPath:
    def test_schedule_interleaves_with_push_fifo(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("push"))
        queue.schedule(1.0, lambda: fired.append("schedule"))
        queue.push(1.0, lambda: fired.append("push2"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["push", "schedule", "push2"]

    def test_recycled_cells_are_reused(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        cell = queue.pop_due(2.0)
        queue.recycle(cell)
        queue.schedule(3.0, lambda: None)
        assert queue.pop_due(4.0) is cell

    def test_pop_due_respects_limit(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(5.0, lambda: None)
        assert queue.pop_due(2.0) is not None
        assert queue.pop_due(2.0) is None
        assert len(queue) == 1
