"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.push(1.0, lambda t=tag: fired.append(t))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["first", "second", "third"]


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        cancel = queue.push(0.5, lambda: None)
        cancel.cancel()
        assert queue.pop() is keep

    def test_peek_skips_cancelled(self):
        queue = EventQueue()
        early = queue.push(0.5, lambda: None)
        queue.push(1.0, lambda: None)
        early.cancel()
        assert queue.peek_time() == 1.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
