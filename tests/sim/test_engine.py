"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_call_at_fires_at_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.5, lambda: seen.append(sim.now))
        sim.run_until(2.0)
        assert seen == [1.5]

    def test_call_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: sim.call_after(0.5, lambda: seen.append(sim.now)))
        sim.run_until(2.0)
        assert seen == [1.5]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)


class TestRunUntil:
    def test_clock_lands_exactly_on_end_time(self):
        sim = Simulator()
        sim.run_until(3.25)
        assert sim.now == 3.25

    def test_events_beyond_horizon_not_fired(self):
        sim = Simulator()
        seen = []
        sim.call_at(5.0, lambda: seen.append("late"))
        sim.run_until(4.0)
        assert seen == []
        sim.run_until(6.0)
        assert seen == ["late"]

    def test_end_time_before_now_rejected(self):
        sim = Simulator()
        sim.run_until(2.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_stop_interrupts_run(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.now == 1.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 3

    def test_run_until_idle_stops_at_queue_drain(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.run_until_idle(100.0)
        assert sim.now == 1.0


class TestCallEvery:
    def test_fires_periodically(self):
        sim = Simulator()
        times = []
        sim.call_every(1.0, lambda: times.append(sim.now))
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_start_overrides_first_firing(self):
        sim = Simulator()
        times = []
        sim.call_every(1.0, lambda: times.append(sim.now), start=0.25)
        sim.run_until(2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops_repetition(self):
        sim = Simulator()
        times = []
        cancel = sim.call_every(1.0, lambda: times.append(sim.now))
        sim.call_at(2.5, cancel)
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_every(0.0, lambda: None)


class TestPerfCounters:
    def test_counters_track_engine_activity(self):
        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None).cancel()
        sim.schedule_at(3.0, lambda: None)
        sim.call_at(9.0, lambda: None)
        sim.run_until(5.0)
        perf = sim.perf
        assert perf.events_processed == 2
        assert perf.events_scheduled == 4
        assert perf.events_cancelled == 1
        assert perf.live_events == 1
        assert sim.events_processed == 2

    def test_events_per_second(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run_until(3.0)
        assert sim.perf.events_per_second(0.5) == 4.0
        with pytest.raises(ValueError):
            sim.perf.events_per_second(0.0)

    def test_as_dict_round_trip(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run_until(2.0)
        d = sim.perf.as_dict()
        assert d["events_processed"] == 1
        assert d["events_scheduled"] == 1


class TestTracing:
    def test_identical_runs_produce_identical_digests(self):
        def build_and_run():
            sim = Simulator()
            sim.enable_tracing()
            sim.call_every(0.5, lambda: None)
            sim.schedule_at(1.25, lambda: sim.schedule_after(0.5, lambda: None))
            sim.run_until(10.0)
            return sim.trace_digest()

        assert build_and_run() == build_and_run()

    def test_different_orders_produce_different_digests(self):
        def run_one(first, second):
            sim = Simulator()
            sim.enable_tracing()
            sim.schedule_at(first, lambda: None)
            sim.schedule_at(second, lambda: None)
            sim.run_until(10.0)
            return sim.trace_digest()

        assert run_one(1.0, 2.0) != run_one(2.0, 1.0)

    def test_digest_requires_tracing_enabled(self):
        with pytest.raises(SimulationError):
            Simulator().trace_digest()
