"""Unit tests for external-load schedules."""

import pytest

from repro.sim.engine import Simulator
from repro.workloads.external_load import CountLoadEvent, LoadEvent, LoadSchedule


class _FakeWorker:
    def __init__(self):
        self.multiplier = 1.0

    def set_load_multiplier(self, multiplier):
        self.multiplier = multiplier


class TestConstruction:
    def test_none(self):
        schedule = LoadSchedule.none()
        assert schedule.initial_multipliers(3) == [1.0, 1.0, 1.0]
        assert schedule.change_times() == []

    def test_static_load(self):
        schedule = LoadSchedule.static_load([0, 2], 10.0)
        assert schedule.initial_multipliers(3) == [10.0, 1.0, 10.0]

    def test_removed_at(self):
        schedule = LoadSchedule.removed_at([1], 100.0, 50.0)
        assert schedule.initial_multipliers(2) == [1.0, 100.0]
        assert schedule.change_times() == [50.0]

    def test_half_loaded(self):
        schedule = LoadSchedule.half_loaded(4, 10.0)
        assert schedule.initial_multipliers(4) == [10.0, 10.0, 1.0, 1.0]

    def test_half_loaded_until_emitted(self):
        schedule = LoadSchedule.half_loaded_until_emitted(4, 10.0, 500)
        assert schedule.initial_multipliers(4) == [10.0, 10.0, 1.0, 1.0]
        assert [e.emitted for e in schedule.count_events] == [500, 500]

    def test_event_validation(self):
        with pytest.raises(ValueError):
            LoadEvent(time=-1.0, worker=0, multiplier=1.0)
        with pytest.raises(ValueError):
            LoadEvent(time=0.0, worker=-1, multiplier=1.0)
        with pytest.raises(ValueError):
            CountLoadEvent(emitted=0, worker=0, multiplier=1.0)

    def test_out_of_range_worker_detected(self):
        schedule = LoadSchedule.static_load([5], 10.0)
        with pytest.raises(ValueError):
            schedule.initial_multipliers(3)


class TestMultiplierAt:
    def test_before_and_after_change(self):
        schedule = LoadSchedule.removed_at([0], 100.0, 50.0)
        assert schedule.multiplier_at(0, 49.9) == 100.0
        assert schedule.multiplier_at(0, 50.0) == 1.0
        assert schedule.multiplier_at(1, 100.0) == 1.0

    def test_latest_event_wins(self):
        schedule = LoadSchedule(
            initial={0: 2.0},
            events=[
                LoadEvent(10.0, 0, 5.0),
                LoadEvent(20.0, 0, 7.0),
            ],
        )
        assert schedule.multiplier_at(0, 15.0) == 5.0
        assert schedule.multiplier_at(0, 25.0) == 7.0


class TestArming:
    def test_timed_events_fire_on_simulator(self):
        sim = Simulator()
        workers = [_FakeWorker(), _FakeWorker()]
        schedule = LoadSchedule(events=[LoadEvent(5.0, 1, 100.0)])
        schedule.arm(sim, workers)
        sim.run_until(4.9)
        assert workers[1].multiplier == 1.0
        sim.run_until(5.1)
        assert workers[1].multiplier == 100.0
        assert workers[0].multiplier == 1.0

    def test_arm_checks_worker_range(self):
        sim = Simulator()
        schedule = LoadSchedule.removed_at([3], 10.0, 1.0)
        with pytest.raises(ValueError):
            schedule.arm(sim, [_FakeWorker()])
