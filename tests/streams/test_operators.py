"""Unit tests for logical operators."""

import pytest

from repro.streams.operators import (
    Filter,
    Functor,
    PassThrough,
    SinkOp,
    SourceOp,
)
from repro.streams.tuples import StreamTuple


def tup(seq=0, payload=None):
    return StreamTuple(seq=seq, cost_multiplies=10.0, payload=payload)


class TestPassThrough:
    def test_forwards_unchanged(self):
        op = PassThrough("p", 100.0)
        t = tup(payload={"x": 1})
        assert op.apply(t) is t

    def test_requires_name(self):
        with pytest.raises(ValueError):
            PassThrough("", 1.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PassThrough("p", -1.0)


class TestFunctor:
    def test_transforms_payload(self):
        op = Functor("f", 10.0, lambda p: p * 2)
        result = op.apply(tup(seq=5, payload=21))
        assert result.payload == 42
        assert result.seq == 5

    def test_preserves_cost(self):
        op = Functor("f", 10.0, lambda p: p)
        assert op.apply(tup()).cost_multiplies == 10.0


class TestFilter:
    def test_passes_matching(self):
        op = Filter("f", 1.0, lambda p: p > 0)
        assert op.apply(tup(payload=1)) is not None

    def test_drops_non_matching(self):
        op = Filter("f", 1.0, lambda p: p > 0)
        assert op.apply(tup(payload=-1)) is None


class TestSourceOp:
    def test_produces_sequential_tuples(self):
        src = SourceOp("s", 10.0, tuple_cost=100.0, total=3)
        seqs = []
        while (t := src.next_tuple()) is not None:
            seqs.append(t.seq)
        assert seqs == [0, 1, 2]
        assert src.produced == 3

    def test_payload_factory(self):
        src = SourceOp(
            "s", 10.0, tuple_cost=100.0, total=2, make_payload=lambda s: s * 10
        )
        assert src.next_tuple().payload == 0
        assert src.next_tuple().payload == 10

    def test_unbounded(self):
        src = SourceOp("s", 10.0, tuple_cost=100.0)
        for _ in range(50):
            assert src.next_tuple() is not None

    def test_apply_is_an_error(self):
        with pytest.raises(RuntimeError):
            SourceOp("s", 1.0, tuple_cost=1.0).apply(tup())


class TestSinkOp:
    def test_counts_and_calls_out(self):
        seen = []
        sink = SinkOp("k", on_tuple=seen.append)
        assert sink.apply(tup(seq=7)) is None
        assert sink.consumed == 1
        assert seen[0].seq == 7
