"""Unit tests for tuples and tuple sources."""

import pytest

from repro.streams.sources import FiniteSource, InfiniteSource, constant_cost
from repro.streams.tuples import StreamTuple


class TestStreamTuple:
    def test_fields(self):
        tup = StreamTuple(seq=3, cost_multiplies=1000.0, payload={"k": 1})
        assert tup.seq == 3
        assert tup.cost_multiplies == 1000.0
        assert tup.payload == {"k": 1}

    def test_negative_seq_rejected(self):
        with pytest.raises(ValueError):
            StreamTuple(seq=-1, cost_multiplies=1.0)

    def test_non_positive_cost_rejected(self):
        with pytest.raises(ValueError):
            StreamTuple(seq=0, cost_multiplies=0.0)


class TestConstantCost:
    def test_same_cost_for_every_seq(self):
        cost = constant_cost(1000.0)
        assert cost(0) == cost(123456) == 1000.0

    def test_positive_required(self):
        with pytest.raises(ValueError):
            constant_cost(0.0)


class TestFiniteSource:
    def test_produces_exactly_total(self):
        source = FiniteSource(3, constant_cost(1.0))
        tuples = []
        while (tup := source.next_tuple()) is not None:
            tuples.append(tup)
        assert [t.seq for t in tuples] == [0, 1, 2]
        assert source.exhausted()
        assert source.produced == 3

    def test_exhausted_source_keeps_returning_none(self):
        source = FiniteSource(1, constant_cost(1.0))
        source.next_tuple()
        assert source.next_tuple() is None
        assert source.next_tuple() is None

    def test_total_must_be_positive(self):
        with pytest.raises(ValueError):
            FiniteSource(0, constant_cost(1.0))


class TestInfiniteSource:
    def test_never_exhausts(self):
        source = InfiniteSource(constant_cost(1.0))
        for expected_seq in range(100):
            tup = source.next_tuple()
            assert tup is not None
            assert tup.seq == expected_seq
        assert not source.exhausted()
