"""Loss-declaration paths: mark_lost x on_completion, both mergers.

These pin down the skip-gap bookkeeping the fault-tolerant recovery
layer depends on: completion targets count lost tuples, late arrivals of
skipped tuples are drops (not sequence errors), and the unordered merger
counts losses immediately because it has no gap to wait behind.
"""

from repro.overload.flow import FlowControlGate
from repro.sim.engine import Simulator
from repro.streams.merger import OrderedMerger, UnorderedMerger
from repro.streams.tuples import StreamTuple


def tup(seq):
    return StreamTuple(seq=seq, cost_multiplies=1.0)


class TestOrderedMarkLostCompletion:
    def test_lost_tuples_count_toward_completion(self):
        merger = OrderedMerger(Simulator())
        done = []
        merger.on_completion(3, lambda: done.append(True))
        merger.accept(0, tup(0))
        merger.accept(0, tup(2))
        assert not done
        merger.mark_lost([1])
        assert done
        assert merger.emitted == 2
        assert merger.tuples_lost == 1

    def test_all_lost_budget_still_completes(self):
        merger = OrderedMerger(Simulator())
        done = []
        merger.on_completion(4, lambda: done.append(True))
        merger.mark_lost([0, 1, 2, 3])
        assert done
        assert merger.emitted == 0
        assert merger.tuples_lost == 4

    def test_lost_tail_after_emissions_completes(self):
        merger = OrderedMerger(Simulator())
        done = []
        merger.on_completion(5, lambda: done.append(True))
        for seq in range(3):
            merger.accept(0, tup(seq))
        merger.mark_lost([3, 4])
        assert done

    def test_completion_fires_once(self):
        merger = OrderedMerger(Simulator())
        calls = []
        merger.on_completion(1, lambda: calls.append(True))
        merger.mark_lost([0])
        merger.accept(0, tup(1))
        assert calls == [True]


class TestOrderedMarkLostEdges:
    def test_emitted_and_pending_seqs_are_not_lost(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(0))  # emitted
        merger.accept(0, tup(2))  # pending behind the gap at 1
        assert merger.mark_lost([0, 2]) == 0
        assert merger.tuples_lost == 0

    def test_double_mark_counts_once(self):
        merger = OrderedMerger(Simulator())
        assert merger.mark_lost([5]) == 1
        assert merger.mark_lost([5]) == 0

    def test_future_gap_not_counted_until_reached(self):
        merger = OrderedMerger(Simulator())
        assert merger.mark_lost([2]) == 1
        assert merger.tuples_lost == 0  # still waiting on 0 and 1
        merger.accept(0, tup(0))
        merger.accept(0, tup(1))
        assert merger.tuples_lost == 1
        assert merger.next_seq == 3

    def test_late_arrival_of_skipped_tuple_is_a_drop(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(0))
        merger.mark_lost([1])
        merger.accept(0, tup(2))
        merger.accept(1, tup(1))  # straggler for the skipped seq
        assert merger.late_arrivals == 1
        assert merger.emitted == 2

    def test_mark_lost_drains_the_pending_buffer_through_the_gate(self):
        merger = OrderedMerger(Simulator())
        gate = FlowControlGate(3, 1)
        merger.attach_flow_gate(gate)
        for seq in (1, 2, 3):  # parked behind missing seq 0
            merger.accept(0, tup(seq))
        assert gate.paused
        merger.mark_lost([0])
        assert merger.pending_count == 0
        assert not gate.paused


class TestUnorderedMarkLost:
    def test_never_seen_seqs_count_immediately(self):
        merger = UnorderedMerger(Simulator())
        assert merger.mark_lost([3, 7]) == 2
        assert merger.tuples_lost == 2

    def test_seen_seqs_are_not_lost(self):
        merger = UnorderedMerger(Simulator())
        merger.accept(0, tup(5))
        assert merger.mark_lost([5]) == 0

    def test_double_mark_counts_once(self):
        merger = UnorderedMerger(Simulator())
        assert merger.mark_lost([4]) == 1
        assert merger.mark_lost([4]) == 0
        assert merger.tuples_lost == 1

    def test_losses_count_toward_completion(self):
        merger = UnorderedMerger(Simulator())
        done = []
        merger.on_completion(3, lambda: done.append(True))
        merger.accept(0, tup(9))
        merger.accept(1, tup(4))
        merger.mark_lost([0])
        assert done

    def test_late_arrival_of_skipped_tuple_is_a_drop(self):
        merger = UnorderedMerger(Simulator())
        merger.mark_lost([2])
        merger.accept(0, tup(2))
        assert merger.late_arrivals == 1
        assert merger.emitted == 0
