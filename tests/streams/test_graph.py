"""Unit tests for the dataflow graph."""

import pytest

from repro.streams.graph import GraphError, StreamGraph
from repro.streams.operators import Filter, PassThrough, SinkOp, SourceOp


def small_graph():
    g = StreamGraph()
    src = g.add(SourceOp("src", 10.0, tuple_cost=100.0, total=10))
    mid = g.add(PassThrough("mid", 10.0))
    sink = g.add(SinkOp("sink"))
    g.chain(src, mid, sink)
    return g, (src, mid, sink)


class TestBuilding:
    def test_chain_connects_pairs(self):
        g, (src, mid, sink) = small_graph()
        assert g.edges == [(src, mid), (mid, sink)]

    def test_duplicate_name_rejected(self):
        g = StreamGraph()
        g.add(PassThrough("x", 1.0))
        with pytest.raises(GraphError):
            g.add(PassThrough("x", 2.0))

    def test_self_loop_rejected(self):
        g = StreamGraph()
        node = g.add(PassThrough("x", 1.0))
        with pytest.raises(GraphError):
            g.connect(node, node)

    def test_duplicate_edge_rejected(self):
        g, (src, mid, _) = small_graph()
        with pytest.raises(GraphError):
            g.connect(src, mid)

    def test_unknown_node_rejected(self):
        g = StreamGraph()
        g.add(PassThrough("x", 1.0))
        with pytest.raises(GraphError):
            g.connect(0, 5)


class TestQueries:
    def test_up_and_downstream(self):
        g, (src, mid, sink) = small_graph()
        assert g.upstream_of(mid) == [src]
        assert g.downstream_of(mid) == [sink]

    def test_sources_and_sinks(self):
        g, (src, _mid, sink) = small_graph()
        assert g.sources() == [src]
        assert g.sinks() == [sink]

    def test_topological_order_respects_edges(self):
        g, (src, mid, sink) = small_graph()
        order = g.topological_order()
        assert order.index(src) < order.index(mid) < order.index(sink)

    def test_cycle_detected(self):
        g = StreamGraph()
        a = g.add(PassThrough("a", 1.0))
        b = g.add(PassThrough("b", 1.0))
        g.connect(a, b)
        g.connect(b, a)
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()


class TestParallelAnnotations:
    def test_parallelize(self):
        g, (_src, mid, _sink) = small_graph()
        g.parallelize(mid, 4)
        assert g.parallel[mid].width == 4
        assert g.parallel[mid].ordered

    def test_source_and_sink_not_parallelizable(self):
        g, (src, _mid, sink) = small_graph()
        with pytest.raises(GraphError):
            g.parallelize(src, 2)
        with pytest.raises(GraphError):
            g.parallelize(sink, 2)

    def test_ordered_filter_rejected(self):
        g = StreamGraph()
        src = g.add(SourceOp("src", 1.0, tuple_cost=1.0))
        flt = g.add(Filter("flt", 1.0, lambda p: True))
        sink = g.add(SinkOp("sink"))
        g.chain(src, flt, sink)
        with pytest.raises(GraphError):
            g.parallelize(flt, 2)
        g.parallelize(flt, 2, ordered=False)  # allowed without ordering

    def test_zero_width_rejected(self):
        g, (_src, mid, _sink) = small_graph()
        with pytest.raises(ValueError):
            g.parallelize(mid, 0)


class TestValidation:
    def test_valid_graph_passes(self):
        g, _ = small_graph()
        g.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            StreamGraph().validate()

    def test_inputless_non_source_rejected(self):
        g = StreamGraph()
        g.add(PassThrough("floating", 1.0))
        g.add(SinkOp("sink"))
        g.connect(0, 1)
        with pytest.raises(GraphError):
            g.validate()

    def test_outputless_non_sink_rejected(self):
        g = StreamGraph()
        src = g.add(SourceOp("src", 1.0, tuple_cost=1.0))
        mid = g.add(PassThrough("mid", 1.0))
        g.connect(src, mid)
        with pytest.raises(GraphError):
            g.validate()

    def test_ordered_region_needs_single_input(self):
        g = StreamGraph()
        s1 = g.add(SourceOp("s1", 1.0, tuple_cost=1.0))
        s2 = g.add(SourceOp("s2", 1.0, tuple_cost=1.0))
        mid = g.add(PassThrough("mid", 1.0))
        sink = g.add(SinkOp("sink"))
        g.connect(s1, mid)
        g.connect(s2, mid)
        g.connect(mid, sink)
        g.parallelize(mid, 2)
        with pytest.raises(GraphError, match="exactly one input"):
            g.validate()
        g.parallel[mid].ordered = False
        g.validate()
