"""Unit tests for the batched dataplane fast path.

Component-level coverage for the pieces the batch-equivalence property
test exercises end to end: batch allocation in the routing policies, bulk
buffer/connection operations, the merger's run acceptance, the splitter's
apportion-and-dispatch cycle, and the worker's batched service loop.
"""

import pytest

from repro.core.policies import (
    ReroutingPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
)
from repro.net.buffers import BoundedBuffer
from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.merger import OrderedMerger, SequenceError, UnorderedMerger
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost
from repro.streams.tuples import StreamTuple
from repro.util.perf import BatchStats


def tup(seq):
    return StreamTuple(seq=seq, cost_multiplies=1.0)


# --------------------------------------------------------------- policies


class TestRoundRobinAllocateBatch:
    def test_matches_per_pick_realization(self):
        batch = RoundRobinPolicy(3)
        picks = RoundRobinPolicy(3)
        for count in (1, 2, 3, 5, 7, 100):
            expected = [0, 0, 0]
            for _ in range(count):
                expected[picks.next_connection()] += 1
            assert batch.allocate_batch(count) == expected

    def test_cursor_advances_across_batches(self):
        policy = RoundRobinPolicy(3)
        assert policy.allocate_batch(2) == [1, 1, 0]
        assert policy.allocate_batch(2) == [1, 0, 1], "resumes at 2, wraps to 0"
        assert policy.next_connection() == 1

    def test_zero_count(self):
        assert RoundRobinPolicy(2).allocate_batch(0) == [0, 0]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(2).allocate_batch(-1)


class TestWeightedAllocateBatch:
    def test_exact_for_divisible_batch(self):
        policy = WeightedPolicy([3, 1])
        assert policy.allocate_batch(4) == [3, 1]
        assert policy.allocate_batch(8) == [6, 2]

    def test_credits_carry_between_batches(self):
        # 1:1 weights, odd batches: the leftover must alternate.
        policy = WeightedPolicy([1, 1])
        totals = [0, 0]
        for _ in range(10):
            alloc = policy.allocate_batch(3)
            assert sum(alloc) == 3
            totals = [a + b for a, b in zip(totals, alloc)]
        assert totals == [15, 15]

    def test_long_run_drift_bounded_by_one(self):
        policy = WeightedPolicy([5, 1, 3])
        totals = [0, 0, 0]
        sent = 0
        for count in [1, 2, 7, 64, 3, 1, 1, 5, 9, 2] * 5:
            alloc = policy.allocate_batch(count)
            assert all(a >= 0 for a in alloc)
            assert sum(alloc) == count
            totals = [a + b for a, b in zip(totals, alloc)]
            sent += count
            for j, w in enumerate([5, 1, 3]):
                assert abs(totals[j] - sent * w / 9) <= 1.0

    def test_zero_weight_connection_gets_nothing(self):
        policy = WeightedPolicy([0, 2, 0, 1])
        for count in (1, 2, 7, 64):
            alloc = policy.allocate_batch(count)
            assert alloc[0] == 0 and alloc[2] == 0

    def test_debt_never_goes_negative(self):
        # Regression: a low-weight connection that just received a
        # leftover carries a debit credit; on the next small batch its
        # true floor is -1, which must clamp to 0 (a negative allocation
        # corrupts the splitter's batch slicing).
        policy = WeightedPolicy([1, 3, 3, 3])
        for _ in range(50):
            alloc = policy.allocate_batch(2)
            assert all(a >= 0 for a in alloc), alloc
            assert sum(alloc) == 2

    def test_clamped_floors_cannot_overshoot_count(self):
        # Regression: with mixed debit/credit carries the clamped floors
        # summed past ``count`` and the leftover slice went negative,
        # handing +1 to nearly every connection — a batch of 2 came back
        # as an allocation of 8 and crashed the splitter's sum check.
        policy = WeightedPolicy([7, 1, 1, 9, 7, 1])
        policy._batch_credits = [0.5, -0.5, -0.5, 0.5, 0.5, -0.5]
        alloc = policy.allocate_batch(2)
        assert sum(alloc) == 2, alloc
        assert all(a >= 0 for a in alloc), alloc

    def test_varying_counts_preserve_sum_invariant(self):
        # The same overshoot arises organically from uneven batch
        # occupancy (partial pulls / end of stream), without poking at
        # the credit vector: every call must still sum exactly.
        policy = WeightedPolicy([7, 1, 1, 9, 7, 1])
        for count in [6, 2, 11, 1, 3, 64, 2, 2, 5, 1] * 20:
            alloc = policy.allocate_batch(count)
            assert sum(alloc) == count, alloc
            assert all(a >= 0 for a in alloc), alloc

    def test_set_weights_resets_credits(self):
        policy = WeightedPolicy([1, 1])
        policy.allocate_batch(1)  # leaves fractional credits behind
        policy.set_weights([1, 1])
        # Fresh credits: the tie goes to the lowest index again.
        assert policy.allocate_batch(1) == [1, 0]

    def test_rerouting_policy_delegates_to_round_robin(self):
        policy = ReroutingPolicy(3)
        reference = RoundRobinPolicy(3)
        for count in (1, 4, 7):
            assert policy.allocate_batch(count) == reference.allocate_batch(
                count
            )


# ------------------------------------------------- buffers and connection


class TestPopMany:
    def test_drains_in_fifo_order(self):
        buffer = BoundedBuffer(8)
        for i in range(5):
            buffer.try_push(i)
        assert buffer.pop_many(3) == [0, 1, 2]
        assert buffer.pop_many(10) == [3, 4]
        assert len(buffer) == 0

    def test_non_positive_max_rejected(self):
        with pytest.raises(ValueError):
            BoundedBuffer(4).pop_many(0)


class TestBulkConnection:
    def test_send_many_partial_on_full_buffer(self):
        conn = SimulatedConnection(
            Simulator(), 0, send_capacity=2, recv_capacity=2
        )
        conn.stall()  # freeze the transport so only the send buffer fills
        items = [tup(s) for s in range(5)]
        assert conn.send_many(items) == 2
        assert conn.send_many(items, 2) == 0
        assert conn.tuples_sent == 2

    def test_send_many_resumes_from_start_offset(self):
        conn = SimulatedConnection(
            Simulator(), 0, send_capacity=8, recv_capacity=8
        )
        items = [tup(s) for s in range(4)]
        assert conn.send_many(items, 2) == 2
        assert conn.take_many(8), "only items[2:] were sent"
        assert conn.tuples_sent == 2

    def test_take_many_returns_oldest_first(self):
        conn = SimulatedConnection(
            Simulator(), 0, send_capacity=8, recv_capacity=8
        )
        conn.send_many([tup(s) for s in range(4)])
        run = conn.take_many(3)
        assert [t.seq for t in run] == [0, 1, 2]

    def test_coalesced_delivery_notifies_once_per_run(self):
        wakeups = []
        conn = SimulatedConnection(
            Simulator(),
            0,
            send_capacity=8,
            recv_capacity=8,
            coalesce_delivery=True,
        )
        conn.on_deliver = lambda: wakeups.append(conn.recv_available())
        conn.send_many([tup(s) for s in range(5)])
        assert wakeups == [5], "one wakeup with the whole run visible"
        assert conn.tuples_delivered == 5

    def test_per_tuple_delivery_notifies_per_tuple(self):
        wakeups = []
        conn = SimulatedConnection(
            Simulator(), 0, send_capacity=8, recv_capacity=8
        )
        conn.on_deliver = lambda: wakeups.append(1)
        conn.send_many([tup(s) for s in range(5)])
        assert len(wakeups) == 5


# ----------------------------------------------------------------- source


class TestNextBatch:
    def test_finite_source_batches_until_exhausted(self):
        source = FiniteSource(7, constant_cost(1.0))
        first = source.next_batch(3)
        assert [t.seq for t in first] == [0, 1, 2]
        assert [t.seq for t in source.next_batch(10)] == [3, 4, 5, 6]
        assert source.next_batch(5) == []

    def test_non_positive_max_rejected(self):
        with pytest.raises(ValueError):
            FiniteSource(3, constant_cost(1.0)).next_batch(0)


# ----------------------------------------------------------------- merger


class TestAcceptRun:
    def test_contiguous_run_emits_in_order(self):
        emitted = []
        merger = OrderedMerger(
            Simulator(), on_emit=lambda t: emitted.append(t.seq)
        )
        merger.accept_run(0, [tup(s) for s in range(4)])
        assert emitted == [0, 1, 2, 3]
        assert merger.received_per_worker[0] == 4

    def test_out_of_order_runs_held_and_released(self):
        emitted = []
        merger = OrderedMerger(
            Simulator(), on_emit=lambda t: emitted.append(t.seq)
        )
        merger.accept_run(1, [tup(2), tup(3)])
        assert emitted == []
        assert merger.pending_count == 2
        merger.accept_run(0, [tup(0), tup(1)])
        assert emitted == [0, 1, 2, 3]

    def test_single_occupancy_update_per_run(self):
        merger = OrderedMerger(Simulator())
        merger.accept_run(0, [tup(5), tup(6), tup(7)])
        assert merger.max_pending == 3

    def test_duplicate_in_run_rejected(self):
        merger = OrderedMerger(Simulator())
        merger.accept_run(0, [tup(0), tup(1)])
        with pytest.raises(SequenceError):
            merger.accept_run(1, [tup(1)])

    def test_empty_run_is_a_no_op(self):
        merger = OrderedMerger(Simulator())
        merger.accept_run(0, [])
        assert merger.emitted == 0
        assert 0 not in merger.received_per_worker

    def test_lost_tuples_straggling_in_a_run_are_dropped(self):
        emitted = []
        merger = OrderedMerger(
            Simulator(), on_emit=lambda t: emitted.append(t.seq)
        )
        merger.mark_lost([0, 1])
        merger.accept_run(0, [tup(0), tup(2), tup(3)])
        assert emitted == [2, 3]
        assert merger.late_arrivals == 1
        assert merger.tuples_lost == 2

    def test_unordered_merger_accepts_runs(self):
        emitted = []
        merger = UnorderedMerger(
            Simulator(), on_emit=lambda t: emitted.append(t.seq)
        )
        merger.accept_run(0, [tup(3), tup(1)])
        assert emitted == [3, 1], "unordered: arrival order, no holding"


# ------------------------------------------------------------- batch stats


class TestBatchStats:
    def test_mean_occupancy(self):
        stats = BatchStats()
        assert stats.mean_occupancy == 0.0
        stats.record(4)
        stats.record(2)
        assert stats.batches == 2
        assert stats.tuples == 6
        assert stats.mean_occupancy == 3.0
        assert stats.as_dict() == {
            "batches": 2,
            "tuples": 6,
            "mean_occupancy": 3.0,
        }


# ---------------------------------------------------------- region wiring


def build_region(total, batch_size, *, weights=(1, 1), **params):
    sim = Simulator()
    host = Host("h", cores=8, thread_speed=1e5)
    region = ParallelRegion(
        sim,
        FiniteSource(total, constant_cost(1_000.0)),
        WeightedPolicy(list(weights)),
        Placement.single_host(len(weights), host),
        params=RegionParams(batch_size=batch_size, **params),
    )
    return sim, region


class TestRegionBatching:
    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            RegionParams(batch_size=0)

    def test_dispatch_and_service_stats_recorded(self):
        sim, region = build_region(64, 16)
        region.merger.on_completion(64, sim.stop)
        region.start()
        sim.run_until(1e6)
        stats = region.splitter.dispatch_stats
        assert stats.tuples == 64
        assert stats.batches <= 8, "16-tuple batches, modulo partial pulls"
        assert stats.mean_occupancy > 1.0
        assert sum(pe.service_stats.tuples for pe in region.workers) == 64
        assert sim.events_coalesced > 0
        assert sim.perf.events_coalesced == sim.events_coalesced

    def test_batch_size_one_coalesces_nothing(self):
        sim, region = build_region(32, 1)
        region.merger.on_completion(32, sim.stop)
        region.start()
        sim.run_until(1e6)
        assert sim.events_coalesced == 0
        assert region.splitter.dispatch_stats.batches == 0

    def test_batching_schedules_fewer_events(self):
        def events_at(batch_size):
            sim, region = build_region(256, batch_size)
            region.merger.on_completion(256, sim.stop)
            region.start()
            sim.run_until(1e6)
            return sim.perf.events_processed

        assert events_at(16) < events_at(1) / 3

    def test_blocking_charged_when_workers_lag(self):
        # Tiny buffers and slow workers: the splitter must elect to block
        # mid-batch and charge the wait to the connection that filled up.
        sim, region = build_region(
            80, 8, send_capacity=2, recv_capacity=2
        )
        region.merger.on_completion(80, sim.stop)
        region.start()
        sim.run_until(1e6)
        assert region.splitter.block_events > 0
        assert sum(c.blocking.lifetime_seconds for c in region.connections) > 0.0

    def test_crash_revokes_whole_run_and_replays(self):
        from repro.faults import FaultInjector

        sim, region = build_region(
            60, 8, fault_tolerant=True, weights=(1, 1)
        )
        injector = FaultInjector(sim, region)
        emitted = []
        region.merger.on_emit = lambda t: emitted.append(t.seq)
        region.merger.on_completion(60, sim.stop)
        sim.call_at(0.02, lambda: injector.crash(0, restart_after=0.05))
        region.start()
        sim.run_until(1e6)
        assert emitted == list(range(60))
        pe = region.workers[0]
        assert pe.tuples_dropped > 0, "the in-service run was revoked"


class TestCustomPolicyFallback:
    def test_policy_without_allocate_batch_uses_per_pick_fallback(self):
        class EvensOnly:
            """Minimal RoutingPolicy: everything to connection 0."""

            allows_reroute = False

            def next_connection(self):
                return 0

            def reroute_candidates(self, blocked):
                return ()

        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1e5)
        region = ParallelRegion(
            sim,
            FiniteSource(20, constant_cost(1_000.0)),
            EvensOnly(),
            Placement.single_host(2, host),
            params=RegionParams(batch_size=4),
        )
        region.merger.on_completion(20, sim.stop)
        region.start()
        sim.run_until(1e6)
        assert region.splitter.sent_per_connection == [20, 0]

    def test_invalid_allocation_rejected(self):
        class Overallocates(RoundRobinPolicy):
            def allocate_batch(self, count):
                return [count, count]

        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1e5)
        region = ParallelRegion(
            sim,
            FiniteSource(10, constant_cost(1_000.0)),
            Overallocates(2),
            Placement.single_host(2, host),
            params=RegionParams(batch_size=4),
        )
        with pytest.raises(ValueError, match="allocated"):
            region.start()
            sim.run_until(1e6)
