"""Tests for the bursty source and the balancer's behaviour under bursts."""

from repro.core.balancer import BalancerConfig
from repro.sim.engine import Simulator
from repro.streams.application import Application
from repro.streams.graph import StreamGraph
from repro.streams.hosts import Host
from repro.streams.operators import BurstySourceOp, PassThrough, SinkOp


class TestBurstySourceOp:
    def test_phase_membership(self):
        src = BurstySourceOp(
            "s", 100.0, tuple_cost=1.0, burst_length=3, lull_length=2
        )
        phases = [src.in_burst(seq) for seq in range(10)]
        assert phases == [True, True, True, False, False] * 2

    def test_production_cost_alternates(self):
        src = BurstySourceOp(
            "s", 100.0, tuple_cost=1.0, burst_length=1, lull_length=1,
            lull_factor=10.0,
        )
        assert src.production_cost(0) == 100.0
        assert src.production_cost(1) == 1000.0

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            BurstySourceOp(
                "s", 1.0, tuple_cost=1.0, burst_length=0, lull_length=1
            )


class TestBurstyApplication:
    def build(self, *, balanced):
        g = StreamGraph()
        src = g.add(BurstySourceOp(
            "src", 100.0, tuple_cost=100.0,
            burst_length=200, lull_length=100, lull_factor=40.0,
        ))
        work = g.add(PassThrough("work", 1_200.0))
        sink = g.add(SinkOp("sink"))
        g.chain(src, work, sink)
        g.parallelize(work, 3)
        sim = Simulator()
        app = Application(
            sim, g, default_host=Host("big", cores=16, thread_speed=2e5)
        )
        balancer = None
        if balanced:
            balancer = app.enable_load_balancing("work", BalancerConfig())
        return app, balancer

    def test_bursty_stream_flows(self):
        app, _ = self.build(balanced=False)
        app.start()
        app.run_until(120.0)
        assert app.operator_pe("sink").sink.consumed > 1_000

    def test_balancer_survives_bursts(self):
        # Bursty arrivals must not destabilize the controller: weights
        # stay valid and the sink keeps pace with the unbalanced run.
        app, balancer = self.build(balanced=True)
        one_loaded = app.operator_pe("work[1]")
        one_loaded.set_load_multiplier(20.0)
        app.start()
        app.run_until(180.0)
        weights = balancer.weights
        assert sum(weights) == 1000
        assert weights[1] < 250, weights

        baseline, _ = self.build(balanced=False)
        baseline.operator_pe("work[1]").set_load_multiplier(20.0)
        baseline.start()
        baseline.run_until(180.0)
        assert (
            app.operator_pe("sink").sink.consumed
            > baseline.operator_pe("sink").sink.consumed
        )
