"""Failing the last live channel: the RegionStalledError guard.

Regression tests for the all-channels-dead deadlock: without a survivor
there is nowhere to replay and the splitter would park forever, so the
failure must raise loudly — unless a recovery layer explicitly promises
to restore a channel (``allow_stall=True``), which is exactly how the
quarantine path keeps working.
"""

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost
from repro.streams.splitter import RegionStalledError


def make_region(sim, n=2, total=50):
    host = Host("h", cores=8, thread_speed=1000.0)
    return ParallelRegion(
        sim,
        FiniteSource(total, constant_cost(100.0)),
        RoundRobinPolicy(n),
        Placement.single_host(n, host),
        params=RegionParams(fault_tolerant=True),
    )


class TestLastChannelGuard:
    def test_failing_the_last_live_channel_raises(self):
        sim = Simulator()
        region = make_region(sim, n=2)
        region.start()
        sim.run_until(1.0)
        region.fail_channel(0)
        with pytest.raises(RegionStalledError):
            region.fail_channel(1)

    def test_raise_leaves_the_survivor_untouched(self):
        sim = Simulator()
        region = make_region(sim, n=2)
        region.start()
        sim.run_until(1.0)
        region.fail_channel(0)
        with pytest.raises(RegionStalledError):
            region.fail_channel(1)
        # The guard fired before any state mutation: channel 1 still runs.
        assert region.splitter.live[1]
        assert region.workers[1].alive
        sim.run_until(60.0)
        assert region.merger.emitted + region.merger.tuples_lost >= 50

    def test_allow_stall_opts_in_and_restore_recovers(self):
        sim = Simulator()
        region = make_region(sim, n=2)
        region.start()
        sim.run_until(1.0)
        region.fail_channel(0)
        region.fail_channel(1, allow_stall=True)  # no raise
        assert sum(region.splitter.live) == 0
        sim.call_at(5.0, lambda: region.restore_channel(1))
        sim.run_until(120.0)
        assert region.merger.emitted + region.merger.tuples_lost >= 50

    def test_splitter_level_guard(self):
        sim = Simulator()
        region = make_region(sim, n=1)
        region.start()
        sim.run_until(1.0)
        with pytest.raises(RegionStalledError):
            region.splitter.fail_channel(0)

    def test_error_is_a_runtime_error(self):
        assert issubclass(RegionStalledError, RuntimeError)

    def test_already_dead_channel_is_a_noop_not_an_error(self):
        sim = Simulator()
        region = make_region(sim, n=2)
        region.start()
        sim.run_until(1.0)
        region.fail_channel(0)
        # Re-failing the dead channel must not trip the last-live guard.
        assert region.splitter.fail_channel(0) == (0, [])
