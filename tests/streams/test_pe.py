"""Unit tests for worker PEs."""

import pytest

from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator
from repro.streams.hosts import Host
from repro.streams.merger import OrderedMerger
from repro.streams.pe import WorkerPE
from repro.streams.tuples import StreamTuple


def make_worker(sim, *, thread_speed=1000.0, load=1.0):
    host = Host("h", cores=1, thread_speed=thread_speed)
    conn = SimulatedConnection(sim, 0)
    merger = OrderedMerger(sim)
    pe = WorkerPE(sim, 0, conn, host, merger, load_multiplier=load)
    return pe, conn, merger


class TestServiceModel:
    def test_service_time_formula(self):
        sim = Simulator()
        pe, _conn, _merger = make_worker(sim, thread_speed=1000.0, load=2.0)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        # 500 multiplies * 2.0 load / 1000 multiplies-per-sec = 1 second.
        assert pe.service_time(tup) == pytest.approx(1.0)

    def test_processes_delivered_tuple_after_service_time(self):
        sim = Simulator()
        pe, conn, merger = make_worker(sim, thread_speed=1000.0)
        conn.send_nowait(StreamTuple(seq=0, cost_multiplies=500.0))
        sim.run_until(0.49)
        assert merger.emitted == 0
        sim.run_until(0.51)
        assert merger.emitted == 1
        assert pe.tuples_processed == 1

    def test_tuples_processed_sequentially(self):
        sim = Simulator()
        pe, conn, merger = make_worker(sim, thread_speed=1000.0)
        for seq in range(3):
            conn.send_nowait(StreamTuple(seq=seq, cost_multiplies=1000.0))
        sim.run_until(2.5)
        assert merger.emitted == 2
        sim.run_until(3.5)
        assert merger.emitted == 3

    def test_busy_seconds_accumulate(self):
        sim = Simulator()
        pe, conn, _merger = make_worker(sim, thread_speed=1000.0)
        conn.send_nowait(StreamTuple(seq=0, cost_multiplies=250.0))
        sim.run_until(1.0)
        assert pe.busy_seconds == pytest.approx(0.25)


class TestLoadMultiplier:
    def test_load_change_applies_from_next_tuple(self):
        sim = Simulator()
        pe, conn, merger = make_worker(sim, thread_speed=1000.0)
        conn.send_nowait(StreamTuple(seq=0, cost_multiplies=1000.0))
        conn.send_nowait(StreamTuple(seq=1, cost_multiplies=1000.0))
        sim.call_at(0.5, lambda: pe.set_load_multiplier(10.0))
        # Tuple 0 finishes at 1.0 s (started before the change); tuple 1
        # takes 10 s from there.
        sim.run_until(1.5)
        assert merger.emitted == 1
        sim.run_until(11.5)
        assert merger.emitted == 2

    def test_invalid_multiplier_rejected(self):
        sim = Simulator()
        pe, _conn, _merger = make_worker(sim)
        with pytest.raises(ValueError):
            pe.set_load_multiplier(0.0)


class TestHostSharing:
    def test_colocated_pes_share_host_capacity(self):
        sim = Simulator()
        host = Host("h", cores=1, thread_speed=1000.0)
        merger = OrderedMerger(sim)
        conns = [SimulatedConnection(sim, j) for j in range(2)]
        pes = [WorkerPE(sim, j, conns[j], host, merger) for j in range(2)]
        # 2 PEs on a 1-core host: each runs at half speed.
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        assert pes[0].service_time(tup) == pytest.approx(1.0)
