"""Unit tests for the assembled parallel region."""

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, InfiniteSource, constant_cost


def make_region(sim, n=2, *, total=None, cost=100.0, thread_speed=1000.0,
                load_multipliers=None, params=None):
    host = Host("h", cores=max(8, n), thread_speed=thread_speed)
    placement = Placement.single_host(n, host)
    if total is None:
        source = InfiniteSource(constant_cost(cost))
    else:
        source = FiniteSource(total, constant_cost(cost))
    return ParallelRegion(
        sim,
        source,
        RoundRobinPolicy(n),
        placement,
        params=params,
        load_multipliers=load_multipliers,
    )


class TestAssembly:
    def test_all_tuples_exit_in_order(self):
        sim = Simulator()
        region = make_region(sim, n=3, total=30)
        emitted = []
        region.merger.on_emit = lambda t: emitted.append(t.seq)
        region.start()
        sim.run_until(60.0)
        assert emitted == list(range(30))

    def test_worker_count(self):
        sim = Simulator()
        region = make_region(sim, n=4)
        assert region.n_workers == 4
        assert len(region.blocking_counters) == 4

    def test_load_multipliers_applied(self):
        sim = Simulator()
        region = make_region(sim, n=2, load_multipliers=[10.0, 1.0])
        assert region.workers[0].load_multiplier == 10.0
        assert region.workers[1].load_multiplier == 1.0

    def test_load_multipliers_length_checked(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_region(sim, n=2, load_multipliers=[1.0])

    def test_total_capacity(self):
        sim = Simulator()
        region = make_region(
            sim, n=2, thread_speed=1000.0, load_multipliers=[10.0, 1.0]
        )
        # Worker 0: 1000/10 = 100 unit-cost tuples/s; worker 1: 1000.
        assert region.total_capacity() == pytest.approx(1100.0)

    def test_empty_placement_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ParallelRegion(
                sim,
                InfiniteSource(constant_cost(1.0)),
                RoundRobinPolicy(1),
                Placement(host_of=[]),
            )


class TestUnorderedRegion:
    def test_unordered_region_emits_out_of_order(self):
        from repro.streams.merger import UnorderedMerger

        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1000.0)
        placement = Placement.single_host(2, host)
        region = ParallelRegion(
            sim,
            FiniteSource(20, constant_cost(100.0)),
            RoundRobinPolicy(2),
            placement,
            load_multipliers=[10.0, 1.0],
            ordered=False,
        )
        assert isinstance(region.merger, UnorderedMerger)
        emitted = []
        region.merger.on_emit = lambda t: emitted.append(t.seq)
        region.start()
        sim.run_until(50.0)
        assert sorted(emitted) == list(range(20))
        assert emitted != sorted(emitted)  # fast worker ran ahead

    def test_ordered_is_the_default(self):
        sim = Simulator()
        region = make_region(sim, n=2)
        assert region.ordered


class TestRegionParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            RegionParams(send_capacity=0)
        with pytest.raises(ValueError):
            RegionParams(wire_delay=-1.0)
        with pytest.raises(ValueError):
            RegionParams(send_overhead=0.0)

    def test_params_propagate_to_connections(self):
        sim = Simulator()
        region = make_region(
            sim, n=1, params=RegionParams(send_capacity=5, recv_capacity=7)
        )
        conn = region.connections[0]
        assert conn._send_buffer.capacity == 5
        assert conn._recv_buffer.capacity == 7


class TestBackpressure:
    def test_region_gated_by_slowest_worker(self):
        # The Section 4.1 phenomenon: with an in-order merge, overall
        # throughput is that of the slowest member times N.
        sim = Simulator()
        region = make_region(
            sim, n=2, thread_speed=1000.0, cost=100.0,
            load_multipliers=[10.0, 1.0],
        )
        region.start()
        sim.run_until(100.0)
        # Slow worker: 1 tuple/s. RR -> region ~2 tuples/s, not ~11.
        rate = region.merger.emitted / 100.0
        assert rate == pytest.approx(2.0, rel=0.2)

    def test_equal_per_connection_throughput(self):
        # Section 4.3: per-connection throughput carries no information —
        # with RR the long-run rates are equal even when capacities differ
        # 10x. The cumulative counts differ only by the (constant) number
        # of tuples parked in the slow pipeline's buffers, so the gap must
        # not grow with time.
        sim = Simulator()
        region = make_region(
            sim, n=2, thread_speed=1000.0, cost=100.0,
            load_multipliers=[10.0, 1.0],
        )
        region.start()
        sim.run_until(100.0)
        received = region.merger.received_per_worker
        gap_at_100 = received[1] - received[0]
        pipeline_limit = 32 + 32 + 2  # send + recv buffers + in service
        assert 0 <= gap_at_100 <= pipeline_limit
        sim.run_until(200.0)
        received = region.merger.received_per_worker
        assert received[1] - received[0] <= pipeline_limit
        # Meanwhile both totals kept growing at the same (slow) rate.
        assert received[0] >= 190
