"""Unit tests for the open-loop rated source."""

import pytest

from repro.overload.admission import AdmissionController, DropTailShedding
from repro.sim.engine import Simulator
from repro.streams.sources import RatedSource, constant_cost


def make_source(rate=10.0, total=None):
    return RatedSource(rate, constant_cost(100.0), total=total)


class TestArrivals:
    def test_deterministic_interarrival(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        source.arm(sim)
        sim.run_until(1.05)
        assert source.arrivals == 10
        assert source.backlog() == 10

    def test_total_bounds_the_stream(self):
        sim = Simulator()
        source = make_source(rate=10.0, total=5)
        source.arm(sim)
        sim.run_until(10.0)
        assert source.arrivals == 5
        assert not source.exhausted()  # backlog not drained yet
        while source.next_tuple() is not None:
            pass
        assert source.exhausted()
        assert not source.idle()

    def test_idle_between_arrivals(self):
        sim = Simulator()
        source = make_source(rate=1.0)
        source.arm(sim)
        assert source.idle()  # nothing arrived yet, more will
        sim.run_until(1.5)
        assert not source.idle()
        source.next_tuple()
        assert source.idle()

    def test_born_at_is_the_arrival_time(self):
        sim = Simulator()
        source = make_source(rate=4.0)
        source.arm(sim)
        sim.run_until(1.0)
        tup = source.next_tuple()
        assert tup.seq == 0
        assert tup.born_at == pytest.approx(0.25)

    def test_on_available_fires_per_admitted_arrival(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        wakes = []
        source.arm(sim, on_available=lambda: wakes.append(sim.now))
        sim.run_until(0.55)
        assert len(wakes) == 5

    def test_max_backlog_tracks_peak(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        source.arm(sim)
        sim.run_until(1.05)
        source.next_tuple()
        source.next_tuple()
        assert source.backlog() == 8
        assert source.max_backlog == 10

    def test_rearm_rejected(self):
        sim = Simulator()
        source = make_source()
        source.arm(sim)
        with pytest.raises(RuntimeError):
            source.arm(sim)


class TestRateChanges:
    def test_scale_rate_speeds_up_arrivals(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        source.arm(sim)
        sim.call_at(1.0, lambda: source.scale_rate(2.0))
        sim.run_until(2.05)
        # 10 arrivals in the first second, ~20 in the second.
        assert source.arrivals == pytest.approx(30, abs=2)
        assert source.rate == 20.0

    def test_scale_up_then_down_restores_rate(self):
        source = make_source(rate=10.0)
        source.scale_rate(2.5)
        source.scale_rate(1 / 2.5)
        assert source.rate == pytest.approx(10.0)

    def test_set_rate_validates(self):
        source = make_source()
        with pytest.raises(ValueError):
            source.set_rate(0.0)
        with pytest.raises(ValueError):
            source.scale_rate(-1.0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            make_source(rate=0.0)


class TestAdmission:
    def test_shed_arrivals_never_enter_the_backlog(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        source.admission = AdmissionController(DropTailShedding(3))
        wakes = []
        source.arm(sim, on_available=lambda: wakes.append(sim.now))
        sim.run_until(1.05)
        assert source.backlog() == 3
        assert source.tuples_shed == 7
        assert source.arrivals == 10
        assert len(wakes) == 3  # shed arrivals do not wake the consumer

    def test_admitted_stream_is_gap_free(self):
        sim = Simulator()
        source = make_source(rate=10.0)
        source.admission = AdmissionController(DropTailShedding(3))
        source.arm(sim)
        sim.run_until(1.05)
        seqs = []
        while (tup := source.next_tuple()) is not None:
            seqs.append(tup.seq)
        assert seqs == [0, 1, 2]
