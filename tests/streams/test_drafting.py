"""Emergent-phenomena tests: drafting (Section 4.2).

Drafting is not coded anywhere — it must *emerge* from the single-threaded
splitter and bounded buffers. These tests run the dataplane with no
controller and assert the phenomenon the paper describes: during a
measurement period, essentially all observed blocking lands on a single
connection (the draft leader), even when every connection has the same
capacity.
"""

from repro.core.policies import RoundRobinPolicy, WeightedPolicy
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import InfiniteSource, constant_cost


def run_region(policy, n, *, seconds=50.0, thread_speed=1000.0, cost=100.0,
               send_overhead=0.01):
    sim = Simulator()
    host = Host("h", cores=max(8, n), thread_speed=thread_speed)
    region = ParallelRegion(
        sim,
        InfiniteSource(constant_cost(cost)),
        policy,
        Placement.single_host(n, host),
        params=RegionParams(send_overhead=send_overhead),
    )
    region.start()
    sim.run_until(seconds)
    return region


class TestDrafting:
    def test_one_leader_absorbs_blocking_at_equal_capacity(self):
        # 3 equal workers at 10 tuples/s each; splitter at 100/s. The
        # region saturates, and the blocking concentrates on one conn.
        region = run_region(RoundRobinPolicy(3), 3)
        blocked = [c.lifetime_seconds for c in region.blocking_counters]
        total = sum(blocked)
        assert total > 0
        assert max(blocked) / total > 0.9, f"no draft leader: {blocked}"

    def test_blocking_rare_in_episode_count(self):
        # Section 4.4: "blocking is a rare event" — episodes are few
        # relative to tuples sent, even under heavy imbalance.
        region = run_region(RoundRobinPolicy(2), 2)
        episodes = sum(c.lifetime_episodes for c in region.blocking_counters)
        sent = region.splitter.tuples_sent
        assert sent > 0
        assert episodes <= sent

    def test_draft_leader_follows_the_most_loaded_connection(self):
        # With a skewed split the most-loaded connection is the leader.
        region = run_region(WeightedPolicy([800, 200]), 2)
        blocked = [c.lifetime_seconds for c in region.blocking_counters]
        assert blocked[0] > blocked[1]

    def test_no_blocking_when_splitter_is_the_bottleneck(self):
        # Splitter slower than aggregate capacity: buffers never fill.
        region = run_region(
            RoundRobinPolicy(2), 2, send_overhead=1.0, thread_speed=10_000.0
        )
        assert all(c.lifetime_seconds == 0 for c in region.blocking_counters)


class TestBlockingRateMonotonicity:
    def test_blocking_rate_monotone_in_allocation_weight(self):
        # The Figure 5 result: connection 1's blocking rate decreases as
        # its share drops from 80% toward 50%.
        rates = []
        for split in ((800, 200), (700, 300), (600, 400), (500, 500)):
            region = run_region(WeightedPolicy(list(split)), 2, seconds=100.0)
            rates.append(region.blocking_counters[0].lifetime_seconds / 100.0)
        assert rates == sorted(rates, reverse=True), rates
