"""Unit tests for the splitter: routing, electing to block, re-routing."""

import pytest

from repro.core.policies import ReroutingPolicy, RoundRobinPolicy, WeightedPolicy
from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator
from repro.streams.splitter import Splitter
from repro.streams.sources import FiniteSource, constant_cost


def build(sim, n_connections, policy, total, *, send_capacity=2, recv_capacity=2,
          send_overhead=0.001):
    connections = [
        SimulatedConnection(
            sim, j, send_capacity=send_capacity, recv_capacity=recv_capacity
        )
        for j in range(n_connections)
    ]
    source = FiniteSource(total, constant_cost(1.0))
    splitter = Splitter(
        sim, source, connections, policy, send_overhead=send_overhead
    )
    return splitter, connections


class TestRouting:
    def test_round_robin_distributes_evenly(self):
        sim = Simulator()
        splitter, conns = build(
            sim, 3, RoundRobinPolicy(3), 9, send_capacity=8, recv_capacity=8
        )
        splitter.start()
        sim.run_until(1.0)
        assert splitter.sent_per_connection == [3, 3, 3]
        assert splitter.finished

    def test_weighted_routing_follows_weights(self):
        sim = Simulator()
        splitter, conns = build(
            sim, 2, WeightedPolicy([750, 250]), 8,
            send_capacity=16, recv_capacity=16,
        )
        splitter.start()
        sim.run_until(1.0)
        assert splitter.sent_per_connection == [6, 2]

    def test_sequence_order_preserved_across_connections(self):
        sim = Simulator()
        splitter, conns = build(
            sim, 2, RoundRobinPolicy(2), 6, send_capacity=8, recv_capacity=8
        )
        splitter.start()
        sim.run_until(1.0)
        seqs = []
        for conn in conns:
            while conn.recv_available():
                seqs.append(conn.take().seq)
        assert sorted(seqs) == list(range(6))

    def test_cannot_start_twice(self):
        sim = Simulator()
        splitter, _ = build(sim, 1, RoundRobinPolicy(1), 1)
        splitter.start()
        with pytest.raises(RuntimeError):
            splitter.start()


class TestElectingToBlock:
    def test_splitter_blocks_when_connection_full(self):
        sim = Simulator()
        # One connection, 4 buffer slots, no consumer: the splitter must
        # stall at tuple 5 and stay blocked.
        splitter, conns = build(sim, 1, RoundRobinPolicy(1), 10)
        splitter.start()
        sim.run_until(10.0)
        assert splitter.tuples_sent == 4
        assert splitter.block_events == 1
        assert not splitter.finished

    def test_blocking_time_charged_to_connection(self):
        sim = Simulator()
        splitter, conns = build(sim, 1, RoundRobinPolicy(1), 10)
        splitter.start()
        sim.run_until(5.0)
        # Free one slot at t=5; the splitter was blocked since ~0.004.
        conns[0].take()
        sim.run_until(6.0)
        blocked = conns[0].blocking.read()
        assert blocked == pytest.approx(5.0 - 0.004, abs=0.01)

    def test_single_thread_blocks_all_connections(self):
        # While blocked on connection 0, the splitter sends nothing to
        # connection 1 — the root cause of drafting (Section 4.2).
        sim = Simulator()
        splitter, conns = build(sim, 2, RoundRobinPolicy(2), 100)
        splitter.start()
        sim.run_until(10.0)
        sent_before = splitter.sent_per_connection[1]
        sim.run_until(20.0)
        assert splitter.sent_per_connection[1] == sent_before


class TestRerouting:
    def test_rerouted_tuples_counted(self):
        sim = Simulator()
        splitter, conns = build(sim, 2, ReroutingPolicy(2), 12)
        splitter.start()
        # Connection 0 never drains; connection 1 drains fully.
        def drain():
            while conns[1].recv_available():
                conns[1].take()
        sim.call_every(0.0005, drain)
        sim.run_until(1.0)
        assert splitter.rerouted > 0
        assert splitter.sent_per_connection[1] > splitter.sent_per_connection[0]

    def test_blocks_when_all_connections_full(self):
        sim = Simulator()
        splitter, conns = build(sim, 2, ReroutingPolicy(2), 20)
        splitter.start()
        sim.run_until(5.0)
        assert splitter.tuples_sent == 8  # both pipelines full
        assert splitter.block_events >= 1
