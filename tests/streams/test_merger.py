"""Unit tests for the ordered merger (sequential semantics)."""

import pytest

from repro.sim.engine import Simulator
from repro.streams.merger import OrderedMerger, SequenceError, UnorderedMerger
from repro.streams.tuples import StreamTuple


def tup(seq):
    return StreamTuple(seq=seq, cost_multiplies=1.0)


class TestOrdering:
    def test_in_order_tuples_flow_through(self):
        emitted = []
        merger = OrderedMerger(Simulator(), on_emit=lambda t: emitted.append(t.seq))
        for seq in range(5):
            merger.accept(0, tup(seq))
        assert emitted == [0, 1, 2, 3, 4]
        assert merger.pending_count == 0

    def test_out_of_order_tuples_held_back(self):
        emitted = []
        merger = OrderedMerger(Simulator(), on_emit=lambda t: emitted.append(t.seq))
        merger.accept(1, tup(2))
        merger.accept(1, tup(1))
        assert emitted == []
        assert merger.pending_count == 2
        merger.accept(0, tup(0))
        assert emitted == [0, 1, 2]

    def test_interleaving_across_workers(self):
        emitted = []
        merger = OrderedMerger(Simulator(), on_emit=lambda t: emitted.append(t.seq))
        # Worker 0 got evens, worker 1 got odds; worker 1 runs ahead.
        for seq in (1, 3, 5):
            merger.accept(1, tup(seq))
        for seq in (0, 2, 4):
            merger.accept(0, tup(seq))
        assert emitted == [0, 1, 2, 3, 4, 5]

    def test_duplicate_rejected(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(0))
        with pytest.raises(SequenceError):
            merger.accept(0, tup(0))

    def test_duplicate_pending_rejected(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(5))
        with pytest.raises(SequenceError):
            merger.accept(1, tup(5))


class TestDiagnostics:
    def test_max_pending_tracks_reordering_depth(self):
        merger = OrderedMerger(Simulator())
        for seq in (3, 2, 1):
            merger.accept(0, tup(seq))
        assert merger.max_pending == 3

    def test_received_per_worker(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(0))
        merger.accept(1, tup(1))
        merger.accept(1, tup(2))
        assert merger.received_per_worker == {0: 1, 1: 2}

    def test_last_emit_time_uses_sim_clock(self):
        sim = Simulator()
        merger = OrderedMerger(sim)
        sim.call_at(2.5, lambda: merger.accept(0, tup(0)))
        sim.run_until(3.0)
        assert merger.last_emit_time == 2.5


class TestUnorderedMerger:
    def test_forwards_immediately_out_of_order(self):
        emitted = []
        merger = UnorderedMerger(
            Simulator(), on_emit=lambda t: emitted.append(t.seq)
        )
        for seq in (2, 0, 1):
            merger.accept(0, tup(seq))
        assert emitted == [2, 0, 1]
        assert merger.pending_count == 0

    def test_counts_and_completion(self):
        merger = UnorderedMerger(Simulator())
        done = []
        merger.on_completion(2, lambda: done.append(True))
        merger.accept(0, tup(5))
        merger.accept(1, tup(3))
        assert merger.emitted == 2
        assert done == [True]
        assert merger.received_per_worker == {0: 1, 1: 1}

    def test_duplicate_rejected(self):
        merger = UnorderedMerger(Simulator())
        merger.accept(0, tup(7))
        with pytest.raises(SequenceError):
            merger.accept(1, tup(7))


class TestCompletion:
    def test_callback_fires_at_target(self):
        merger = OrderedMerger(Simulator())
        done = []
        merger.on_completion(3, lambda: done.append(merger.emitted))
        for seq in range(5):
            merger.accept(0, tup(seq))
        assert done == [3]

    def test_target_must_be_positive(self):
        with pytest.raises(ValueError):
            OrderedMerger(Simulator()).on_completion(0, lambda: None)
