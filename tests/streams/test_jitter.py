"""Tests for seeded service-time jitter."""

import pytest

from repro.core.policies import WeightedPolicy
from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.merger import OrderedMerger
from repro.streams.pe import WorkerPE
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import InfiniteSource, constant_cost
from repro.streams.tuples import StreamTuple


def make_pe(jitter, seed=0):
    sim = Simulator()
    host = Host("h", cores=1, thread_speed=1000.0)
    conn = SimulatedConnection(sim, 0)
    return WorkerPE(
        sim, 0, conn, host, OrderedMerger(sim),
        service_jitter=jitter, seed=seed,
    )


class TestJitterModel:
    def test_zero_jitter_is_deterministic(self):
        pe = make_pe(0.0)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        assert pe.service_time(tup) == pe.service_time(tup) == 0.5

    def test_jitter_bounds(self):
        pe = make_pe(0.2)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        for _ in range(200):
            assert 0.4 <= pe.service_time(tup) <= 0.6

    def test_jitter_varies(self):
        pe = make_pe(0.2)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        samples = {round(pe.service_time(tup), 6) for _ in range(50)}
        assert len(samples) > 10

    def test_same_seed_reproduces(self):
        a, b = make_pe(0.2, seed=7), make_pe(0.2, seed=7)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        assert [a.service_time(tup) for _ in range(20)] == [
            b.service_time(tup) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a, b = make_pe(0.2, seed=1), make_pe(0.2, seed=2)
        tup = StreamTuple(seq=0, cost_multiplies=500.0)
        assert [a.service_time(tup) for _ in range(20)] != [
            b.service_time(tup) for _ in range(20)
        ]

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            make_pe(1.5)
        with pytest.raises(ValueError):
            RegionParams(service_jitter=-0.1)


class TestDraftLeaderRotationUnderNoise:
    def test_5050_leader_swaps_with_jitter(self):
        # The paper's Figure 5(d): at a 50/50 split the draft leader
        # changes "at some arbitrary point in time". A perfectly
        # deterministic simulator never swaps; realistic noise does it.
        sim = Simulator()
        host = Host("h", cores=8, thread_speed=2e5)
        region = ParallelRegion(
            sim,
            InfiniteSource(constant_cost(10_000)),
            WeightedPolicy([500, 500]),
            Placement.single_host(2, host),
            params=RegionParams(
                send_overhead=4_000 / 2e5, service_jitter=0.1, seed=42
            ),
        )
        region.start()
        leaders = []
        last = [0.0, 0.0]

        def sample():
            current = [c.lifetime_seconds for c in region.blocking_counters]
            deltas = [c - p for c, p in zip(current, last)]
            last[:] = current
            if max(deltas) > 0:
                leaders.append(deltas.index(max(deltas)))

        sim.call_every(1.0, sample)
        sim.run_until(300.0)
        assert len(set(leaders)) == 2, "leader never rotated under jitter"
        swaps = sum(1 for a, b in zip(leaders, leaders[1:]) if a != b)
        assert swaps >= 1
