"""Direct unit tests for the dataplane's failure-recovery paths.

The fault package's tests drive these paths end to end; here each layer
is pinned in isolation — the merger's lost-sequence handling, the
splitter's retransmit buffer and fail/restore transitions, the worker's
crash/halt/restart lifecycle, and the connection's fail/reset/redeliver
primitives.
"""

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.merger import OrderedMerger, SequenceError
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost
from repro.streams.splitter import Splitter
from repro.streams.tuples import StreamTuple


def tup(seq):
    return StreamTuple(seq=seq, cost_multiplies=1.0)


def make_ft_region(sim, n=2, *, total=50, cost=100.0, retransmit_capacity=None):
    host = Host("h", cores=max(8, n), thread_speed=1000.0)
    return ParallelRegion(
        sim,
        FiniteSource(total, constant_cost(cost)),
        RoundRobinPolicy(n),
        Placement.single_host(n, host),
        params=RegionParams(
            fault_tolerant=True, retransmit_capacity=retransmit_capacity
        ),
    )


class TestMergerLostSequences:
    def test_mark_lost_releases_held_successors(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(1))
        merger.accept(0, tup(2))
        assert merger.emitted == 0
        assert merger.mark_lost([0]) == 1
        assert merger.emitted == 2
        assert merger.tuples_lost == 1

    def test_mark_lost_future_gap_waits_until_reached(self):
        merger = OrderedMerger(Simulator())
        merger.mark_lost([2])
        merger.accept(0, tup(0))
        merger.accept(0, tup(1))
        # Seq 2 is consumed as lost the moment the cursor reaches it.
        assert merger.next_seq == 3
        assert merger.tuples_lost == 1

    def test_emitted_and_pending_seqs_are_not_markable(self):
        merger = OrderedMerger(Simulator())
        merger.accept(0, tup(0))
        merger.accept(0, tup(2))
        assert merger.mark_lost([0, 2]) == 0
        assert merger.tuples_lost == 0

    def test_late_arrival_of_skipped_seq_is_a_drop_not_an_error(self):
        merger = OrderedMerger(Simulator())
        merger.mark_lost([0])
        assert merger.next_seq == 1
        merger.accept(0, tup(0))  # straggler after the skip
        assert merger.late_arrivals == 1
        assert merger.emitted == 0
        # A genuine duplicate still raises.
        merger.accept(0, tup(1))
        with pytest.raises(SequenceError):
            merger.accept(0, tup(1))

    def test_late_arrival_of_marked_but_unskipped_seq(self):
        merger = OrderedMerger(Simulator())
        merger.mark_lost([5])
        merger.accept(0, tup(5))
        assert merger.late_arrivals == 1
        assert merger.next_seq == 0

    def test_completion_counts_lost_tuples(self):
        sim = Simulator()
        merger = OrderedMerger(sim)
        fired = []
        merger.on_completion(3, lambda: fired.append(sim.now))
        merger.accept(0, tup(0))
        merger.accept(0, tup(1))
        merger.mark_lost([2])
        assert fired, "budget must drain even when its tail is lost"


class TestSplitterRetransmit:
    def _splitter(self, sim, n=2, total=20, capacity=None):
        connections = [
            SimulatedConnection(sim, i, send_capacity=4, recv_capacity=4)
            for i in range(n)
        ]
        splitter = Splitter(
            sim,
            FiniteSource(total, constant_cost(1.0)),
            connections,
            RoundRobinPolicy(n),
            fault_tolerant=True,
            retransmit_capacity=capacity,
        )
        return splitter, connections

    def test_sent_tuples_are_tracked_until_acked(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        # 8 tuples fit in the two connections' send buffers (4 each)
        # plus in-flight pumps; all unacked.
        assert splitter.inflight_count(0) > 0
        total_inflight = splitter.inflight_count(0) + splitter.inflight_count(1)
        assert total_inflight == splitter.tuples_sent

    def test_acks_retire_fifo(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        before = splitter.inflight_count(0)
        splitter.acknowledge(0, 0)  # seq 0 went to connection 0 (RR)
        assert splitter.inflight_count(0) == before - 1

    def test_out_of_order_ack_raises(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        with pytest.raises(RuntimeError, match="does not match"):
            splitter.acknowledge(0, 2)  # front of connection 0 is seq 0

    def test_fail_channel_queues_unacked_for_replay(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        unacked = splitter.inflight_count(0)
        replayed, lost = splitter.fail_channel(0)
        assert replayed == unacked
        assert lost == []
        assert splitter.tuples_replayed == unacked
        assert not splitter.live[0]

    def test_fail_channel_skip_returns_lost_seqs(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        unacked = splitter.inflight_count(0)
        replayed, lost = splitter.fail_channel(0, replay=False)
        assert replayed == 0
        assert len(lost) == unacked
        assert lost == sorted(lost)

    def test_fail_channel_is_idempotent(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        splitter.fail_channel(0)
        assert splitter.fail_channel(0) == (0, [])

    def test_bounded_buffer_evicts_to_unreplayable(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim, capacity=2)
        splitter.start()
        sim.run_until(1.0)
        assert splitter.retransmit_dropped > 0
        assert splitter.inflight_count(0) <= 2
        _, lost = splitter.fail_channel(0)
        # Evicted seqs come back as lost even under the replay policy.
        assert lost

    def test_evicted_then_acked_seq_is_not_lost(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim, capacity=2)
        splitter.start()
        sim.run_until(1.0)
        # Connection 0 received seqs 0, 2, 4, ... (RR); with capacity 2
        # the oldest were evicted. Ack one evicted seq, then fail.
        splitter.acknowledge(0, 0)
        _, lost = splitter.fail_channel(0)
        assert 0 not in lost

    def test_restore_channel_marks_live(self):
        sim = Simulator()
        splitter, _ = self._splitter(sim)
        splitter.start()
        sim.run_until(1.0)
        splitter.fail_channel(0)
        splitter.restore_channel(0)
        assert splitter.live[0]

    def test_plain_splitter_rejects_fail_channel(self):
        sim = Simulator()
        connections = [SimulatedConnection(sim, 0)]
        splitter = Splitter(
            sim,
            FiniteSource(5, constant_cost(1.0)),
            connections,
            RoundRobinPolicy(1),
        )
        with pytest.raises(RuntimeError, match="fault-tolerant"):
            splitter.fail_channel(0)


class TestRegionFailRestore:
    def test_fail_channel_reroutes_everything_to_survivor(self):
        sim = Simulator()
        region = make_ft_region(sim, n=2, total=40)
        region.start()
        sim.run_until(0.5)
        region.fail_channel(0)
        sim.run_until(60.0)
        assert region.merger.emitted == 40
        assert region.merger.tuples_lost == 0
        assert region.splitter.fault_reroutes > 0

    def test_plain_region_rejects_fail_channel(self):
        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1000.0)
        region = ParallelRegion(
            sim,
            FiniteSource(10, constant_cost(100.0)),
            RoundRobinPolicy(2),
            Placement.single_host(2, host),
        )
        with pytest.raises(RuntimeError, match="fault_tolerant"):
            region.fail_channel(0)

    def test_restore_channel_resumes_consumption(self):
        sim = Simulator()
        region = make_ft_region(sim, n=2, total=60)
        region.start()
        sim.run_until(0.5)
        region.fail_channel(1)
        sim.run_until(1.0)
        region.restore_channel(1)
        sim.run_until(60.0)
        assert region.merger.emitted == 60
        assert region.splitter.live[1]


class TestWorkerLifecycle:
    def test_crash_requires_fault_tolerance(self):
        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1000.0)
        region = ParallelRegion(
            sim,
            FiniteSource(10, constant_cost(100.0)),
            RoundRobinPolicy(1),
            Placement.single_host(1, host),
        )
        region.start()
        sim.run_until(0.05)
        with pytest.raises(RuntimeError, match="not fault-tolerant"):
            region.workers[0].crash()

    def test_crash_revokes_in_service_tuple(self):
        sim = Simulator()
        region = make_ft_region(sim, n=1, total=10)
        region.start()
        sim.run_until(0.05)  # mid-service (service time is 0.1 s)
        worker = region.workers[0]
        assert worker.busy
        revoked = worker.crash()
        assert revoked is not None
        assert not worker.busy
        assert worker.tuples_dropped == 1
        # The cancelled completion never fires.
        processed = worker.tuples_processed
        sim.run_until(0.3)
        assert worker.tuples_processed == processed

    def test_halt_then_resume_continues(self):
        sim = Simulator()
        region = make_ft_region(sim, n=1, total=10)
        region.start()
        sim.run_until(0.05)
        worker = region.workers[0]
        # Halt revokes the in-service tuple; redeliver it the way the
        # injector does, so no sequence number is orphaned.
        revoked = worker.halt()
        assert worker.halted
        assert revoked is not None
        region.connections[0].requeue_front(revoked)
        sim.run_until(0.5)
        stalled_at = worker.tuples_processed
        worker.resume()
        sim.run_until(10.0)
        assert worker.tuples_processed > stalled_at
        assert region.merger.emitted == 10

    def test_restart_resumes_from_intact_buffer(self):
        sim = Simulator()
        region = make_ft_region(sim, n=1, total=10)
        region.start()
        sim.run_until(0.05)
        worker = region.workers[0]
        revoked = worker.crash()
        region.connections[0].requeue_front(revoked)
        worker.restart()
        sim.run_until(10.0)
        # Nothing lost: the revoked tuple was redelivered.
        assert region.merger.emitted == 10


class TestConnectionFaultPrimitives:
    def test_fail_drops_buffers_and_stalls(self):
        sim = Simulator()
        conn = SimulatedConnection(sim, 0, send_capacity=4, recv_capacity=4)
        for seq in range(4):
            assert conn.send_nowait(tup(seq))
        sim.run_until(1.0)
        assert conn.queued_tuples() > 0
        dropped = conn.fail()
        assert dropped > 0
        assert conn.queued_tuples() == 0
        assert conn.stalled

    def test_in_flight_transfer_cancelled_by_generation(self):
        sim = Simulator()
        conn = SimulatedConnection(
            sim, 0, send_capacity=4, recv_capacity=4, wire_delay=0.5
        )
        assert conn.send_nowait(tup(0))
        sim.run_until(0.1)  # transfer scheduled, not yet arrived
        conn.fail()
        conn.reset()
        sim.run_until(2.0)
        # The pre-failure transfer must not land in the fresh buffers.
        assert conn.queued_tuples() == 0

    def test_reset_clears_stall(self):
        sim = Simulator()
        conn = SimulatedConnection(sim, 0)
        conn.fail()
        assert conn.stalled
        conn.reset()
        assert not conn.stalled
        assert conn.send_nowait(tup(0))

    def test_requeue_front_bypasses_capacity(self):
        sim = Simulator()
        conn = SimulatedConnection(sim, 0, send_capacity=2, recv_capacity=1)
        for seq in range(1, 3):
            conn.send_nowait(tup(seq))
        sim.run_until(1.0)
        conn.requeue_front(tup(0))
        assert conn.take().seq == 0
