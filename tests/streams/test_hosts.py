"""Unit tests for the host capacity model and placements."""

import pytest

from repro.streams.hosts import Host, Placement


class _FakePE:
    """Hosts only count placed PEs; any object will do."""


def fill(host, n):
    for _ in range(n):
        host.place(_FakePE())


class TestCapacityModel:
    def test_threads(self):
        assert Host("slow", cores=8).threads == 8
        assert Host("fast", cores=8, smt_per_core=2).threads == 16

    def test_capacity_scales_with_cores(self):
        host = Host("h", cores=8, thread_speed=100.0)
        assert host.total_capacity(1) == 100.0
        assert host.total_capacity(8) == 800.0

    def test_oversubscription_caps_capacity(self):
        # The paper: "The slow host can only execute 8 PEs simultaneously;
        # any more than 8 PEs, and the slow host becomes oversubscribed."
        host = Host("slow", cores=8, thread_speed=100.0)
        assert host.total_capacity(16) == host.total_capacity(8)

    def test_smt_extends_scaling(self):
        # The fast host keeps scaling from 8 to 16 PEs via SMT.
        host = Host("fast", cores=8, smt_per_core=2, thread_speed=100.0)
        assert host.total_capacity(16) == 2 * host.total_capacity(8)
        assert host.total_capacity(24) == host.total_capacity(16)

    def test_smt_efficiency_discounts_smt_threads(self):
        host = Host("fast", cores=8, smt_per_core=2, thread_speed=100.0, smt_efficiency=0.5)
        assert host.total_capacity(16) == pytest.approx(800.0 + 8 * 50.0)

    def test_zero_active_pes(self):
        assert Host("h").total_capacity(0) == 0.0


class TestPerPeSpeed:
    def test_fair_share(self):
        host = Host("h", cores=8, thread_speed=100.0)
        fill(host, 4)
        assert host.per_pe_speed() == 100.0
        fill(host, 12)  # 16 total on 8 threads
        assert host.per_pe_speed() == pytest.approx(800.0 / 16)

    def test_requires_placed_pes(self):
        with pytest.raises(RuntimeError):
            Host("h").per_pe_speed()


class TestPlacement:
    def test_single_host(self):
        host = Host("h")
        placement = Placement.single_host(3, host)
        assert len(placement) == 3
        assert placement[0] is placement[2] is host

    def test_split_evenly_round_robins(self):
        a, b = Host("a"), Host("b")
        placement = Placement.split_evenly(5, [a, b])
        assert [p.name for p in placement.host_of] == ["a", "b", "a", "b", "a"]

    def test_split_evenly_rejects_empty(self):
        with pytest.raises(ValueError):
            Placement.split_evenly(2, [])

    def test_one_pe_per_core_allocates_hosts(self):
        placement = Placement.one_pe_per_core(
            20, lambda i: Host(f"h{i}"), cores_per_host=8
        )
        names = [p.name for p in placement.host_of]
        assert names[:8] == ["h0"] * 8
        assert names[8:16] == ["h1"] * 8
        assert names[16:] == ["h2"] * 4

    def test_hosts_lists_distinct_in_order(self):
        a, b = Host("a"), Host("b")
        placement = Placement(host_of=[a, b, a])
        assert placement.hosts() == [a, b]
