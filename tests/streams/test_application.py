"""Integration tests for the compiled application runtime."""

import pytest

from repro.core.balancer import BalancerConfig
from repro.sim.engine import Simulator
from repro.streams.application import Application
from repro.streams.graph import StreamGraph
from repro.streams.hosts import Host
from repro.streams.operators import (
    Filter,
    Functor,
    PassThrough,
    SinkOp,
    SourceOp,
)


def big_host():
    return Host("big", cores=32, thread_speed=2e5)


def build_app(graph, **kwargs):
    sim = Simulator()
    return Application(sim, graph, default_host=big_host(), **kwargs)


def pipeline_graph(total=500, seen=None):
    g = StreamGraph()
    src = g.add(SourceOp("src", 100.0, tuple_cost=100.0, total=total,
                         make_payload=lambda s: s))
    double = g.add(Functor("double", 100.0, lambda p: p * 2))
    sink = g.add(SinkOp("sink", on_tuple=(seen.append if seen is not None else None)))
    g.chain(src, double, sink)
    return g


class TestPipeline:
    def test_all_tuples_flow_through(self):
        seen = []
        app = build_app(pipeline_graph(total=500, seen=seen))
        app.start()
        app.run_until(60.0)
        assert len(seen) == 500
        assert [t.seq for t in seen] == list(range(500))

    def test_functor_transforms(self):
        seen = []
        app = build_app(pipeline_graph(total=10, seen=seen))
        app.start()
        app.run_until(10.0)
        assert [t.payload for t in seen] == [2 * s for s in range(10)]

    def test_backpressure_gates_source(self):
        # A slow downstream operator limits how fast the source can
        # produce, via bounded buffers only.
        g = StreamGraph()
        src = g.add(SourceOp("src", 100.0, tuple_cost=100.0))
        slow = g.add(PassThrough("slow", 20_000.0))  # 10 tuples/s
        sink = g.add(SinkOp("sink"))
        g.chain(src, slow, sink)
        app = build_app(g)
        app.start()
        app.run_until(50.0)
        produced = app.operator_pe("src").source.produced
        # Source could do 2000/s; backpressure holds it near 10/s plus
        # the buffers' worth of slack.
        assert produced < 10 * 50 + 70


class TestTaskParallelism:
    def test_fanout_duplicates_tuples(self):
        g = StreamGraph()
        src = g.add(SourceOp("src", 100.0, tuple_cost=100.0, total=100))
        left = g.add(PassThrough("left", 100.0))
        right = g.add(PassThrough("right", 100.0))
        sink_l = g.add(SinkOp("sink_l"))
        sink_r = g.add(SinkOp("sink_r"))
        g.connect(src, left)
        g.connect(src, right)
        g.connect(left, sink_l)
        g.connect(right, sink_r)
        app = build_app(g)
        app.start()
        app.run_until(30.0)
        assert app.operator_pe("sink_l").sink.consumed == 100
        assert app.operator_pe("sink_r").sink.consumed == 100


class TestFiltering:
    def test_filter_drops(self):
        g = StreamGraph()
        src = g.add(SourceOp("src", 100.0, tuple_cost=100.0, total=100,
                             make_payload=lambda s: s))
        flt = g.add(Filter("flt", 100.0, lambda p: p % 2 == 0))
        sink = g.add(SinkOp("sink"))
        g.chain(src, flt, sink)
        app = build_app(g)
        app.start()
        app.run_until(30.0)
        assert app.operator_pe("sink").sink.consumed == 50
        assert app.operator_pe("flt").dropped == 50


class TestParallelRegion:
    def region_graph(self, total=2_000, ordered=True, seen=None):
        g = StreamGraph()
        src = g.add(SourceOp("src", 100.0, tuple_cost=100.0, total=total,
                             make_payload=lambda s: s))
        work = g.add(PassThrough("work", 2_000.0))
        sink = g.add(SinkOp("sink", on_tuple=(seen.append if seen is not None else None)))
        g.chain(src, work, sink)
        g.parallelize(work, 4, ordered=ordered)
        return g

    def test_region_expands_and_processes_everything(self):
        seen = []
        app = build_app(self.region_graph(seen=seen))
        app.start()
        app.run_until(120.0)
        assert len(seen) == 2_000
        handle = app.regions["work"]
        assert len(handle.replicas) == 4
        assert sum(r.processed for r in handle.replicas) == 2_000
        # Round-robin spreads the work evenly.
        assert max(r.processed for r in handle.replicas) <= 501

    def test_ordered_region_preserves_sequence(self):
        seen = []
        app = build_app(self.region_graph(seen=seen))
        app.start()
        app.run_until(120.0)
        assert [t.seq for t in seen] == list(range(2_000))

    def test_unordered_region_can_reorder(self):
        seen = []
        g = self.region_graph(ordered=False, seen=seen)
        app = build_app(g)
        app.operator_pe("work[0]").set_load_multiplier(10.0)
        app.start()
        app.run_until(240.0)
        assert sorted(t.seq for t in seen) == list(range(2_000))
        assert [t.seq for t in seen] != list(range(2_000))

    def test_load_balancing_starves_loaded_replica(self):
        app = build_app(self.region_graph(total=None))
        balancer = app.enable_load_balancing(
            "work", BalancerConfig(), interval=1.0
        )
        app.operator_pe("work[2]").set_load_multiplier(100.0)
        app.start()
        app.run_until(120.0)
        weights = balancer.weights
        assert weights[2] < 100, weights
        assert sum(weights) == 1000

    def test_region_blocking_counters_exposed(self):
        app = build_app(self.region_graph())
        handle = app.regions["work"]
        assert len(handle.blocking_counters) == 4

    def test_set_weights_requires_weighted_policy(self):
        app = build_app(self.region_graph())
        with pytest.raises(RuntimeError):
            app.regions["work"].set_weights([250, 250, 250, 250])


class TestLookup:
    def test_operator_pe_by_name(self):
        app = build_app(pipeline_graph())
        assert app.operator_pe("double").name == "double"
        with pytest.raises(KeyError):
            app.operator_pe("nope")

    def test_replica_lookup(self):
        g = StreamGraph()
        src = g.add(SourceOp("src", 1.0, tuple_cost=1.0, total=1))
        work = g.add(PassThrough("work", 1.0))
        sink = g.add(SinkOp("sink"))
        g.chain(src, work, sink)
        g.parallelize(work, 2)
        app = build_app(g)
        assert app.operator_pe("work[1]").name == "work[1]"
