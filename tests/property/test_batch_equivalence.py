"""Property: the batched dataplane preserves the region's semantics.

Hypothesis draws random workloads — region width, weights, buffer sizes,
wire delay, service jitter — and runs each one at ``batch_size`` 1, 2, 7,
and 64. Whatever the batch size:

* the merged output is the full sequence 0..N-1, in order, exactly once
  (sequential semantics are batch-size-independent);
* the final policy weights are identical to the ``batch_size=1`` run;
* realized per-connection allocations match the weights exactly — the
  largest-remainder apportionment never drifts more than one tuple from
  connection ``j``'s exact share ``total * w_j / sum(w)``, the same
  long-run guarantee smooth weighted round-robin gives the per-tuple path;

and the same ordering/completeness guarantees hold with the failure
machinery exercising crash + replay mid-run (``fault_tolerant``) and with
the overload layer attached (``overload_protection``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import RoundRobinPolicy, WeightedPolicy
from repro.faults import FaultInjector
from repro.overload import OverloadConfig, OverloadManager
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, RatedSource, constant_cost

BATCH_SIZES = (1, 2, 7, 64)

workloads = st.fixed_dictionaries(
    {
        "n_workers": st.integers(min_value=2, max_value=4),
        "total": st.integers(min_value=30, max_value=150),
        "raw_weights": st.lists(
            st.integers(min_value=0, max_value=9), min_size=4, max_size=4
        ).filter(lambda ws: sum(ws[:2]) > 0),
        "send_capacity": st.integers(min_value=2, max_value=8),
        "recv_capacity": st.integers(min_value=2, max_value=8),
        "wire_delay": st.sampled_from([0.0, 0.005]),
        "service_jitter": st.sampled_from([0.0, 0.3]),
    }
)


def build_region(sim, workload, batch_size, *, fault_tolerant=False):
    n = workload["n_workers"]
    weights = workload["raw_weights"][:n]
    if sum(weights) == 0:
        weights[0] = 1
    host = Host("h", cores=8, thread_speed=1e5)
    region = ParallelRegion(
        sim,
        FiniteSource(workload["total"], constant_cost(1_000.0)),
        WeightedPolicy(weights),
        Placement.single_host(n, host),
        params=RegionParams(
            send_capacity=workload["send_capacity"],
            recv_capacity=workload["recv_capacity"],
            wire_delay=workload["wire_delay"],
            service_jitter=workload["service_jitter"],
            fault_tolerant=fault_tolerant,
            batch_size=batch_size,
        ),
    )
    return region, weights


def run_plain(workload, batch_size):
    sim = Simulator()
    region, weights = build_region(sim, workload, batch_size)
    seqs = []
    region.merger.on_emit = lambda tup: seqs.append(tup.seq)
    region.merger.on_completion(workload["total"], sim.stop)
    region.start()
    sim.run_until(1e6)
    return region, weights, seqs


@settings(max_examples=20, deadline=None)
@given(workload=workloads)
def test_merged_output_and_weights_match_batch_size_one(workload):
    total = workload["total"]
    baseline = None
    for batch_size in BATCH_SIZES:
        region, weights, seqs = run_plain(workload, batch_size)
        # Sequential semantics: the full budget, in order, exactly once.
        assert seqs == list(range(total)), f"batch_size={batch_size}"
        # Final weights identical to the batch_size=1 run.
        final = region.splitter.policy.weights
        if baseline is None:
            baseline = final
        assert final == baseline, f"batch_size={batch_size}"
        # Largest-remainder apportionment: every connection's realized
        # allocation is within one tuple of its exact share.
        w_total = sum(weights)
        for j, sent in enumerate(region.splitter.sent_per_connection):
            exact = total * weights[j] / w_total
            assert abs(sent - exact) <= 1.0, (
                f"batch_size={batch_size}: connection {j} got {sent}, "
                f"exact share {exact:.2f}"
            )


crash_plans = st.fixed_dictionaries(
    {
        "worker": st.integers(min_value=0, max_value=1),
        "crash_at": st.floats(min_value=0.05, max_value=1.0),
        "restart_after": st.floats(min_value=0.1, max_value=1.0),
    }
)


@settings(max_examples=15, deadline=None)
@given(workload=workloads, plan=crash_plans)
def test_crash_and_replay_preserve_order_at_any_batch_size(workload, plan):
    total = workload["total"]
    for batch_size in BATCH_SIZES:
        sim = Simulator()
        region, _ = build_region(
            sim, workload, batch_size, fault_tolerant=True
        )
        injector = FaultInjector(sim, region)
        seqs = []
        region.merger.on_emit = lambda tup: seqs.append(tup.seq)
        region.merger.on_completion(total, sim.stop)
        sim.call_at(
            plan["crash_at"],
            lambda: injector.crash(
                plan["worker"], restart_after=plan["restart_after"]
            ),
        )
        region.start()
        sim.run_until(1e6)
        assert seqs == list(range(total)), f"batch_size={batch_size}"
        assert region.merger.tuples_lost == 0


@settings(max_examples=15, deadline=None)
@given(workload=workloads)
def test_unordered_merger_emits_all_at_any_batch_size(workload):
    # Without sequential semantics there is no canonical order, but every
    # tuple must still come out exactly once — at every batch size.
    total = workload["total"]
    for batch_size in BATCH_SIZES:
        sim = Simulator()
        n = workload["n_workers"]
        weights = workload["raw_weights"][:n]
        if sum(weights) == 0:
            weights[0] = 1
        host = Host("h", cores=8, thread_speed=1e5)
        region = ParallelRegion(
            sim,
            FiniteSource(total, constant_cost(1_000.0)),
            WeightedPolicy(weights),
            Placement.single_host(n, host),
            params=RegionParams(
                send_capacity=workload["send_capacity"],
                recv_capacity=workload["recv_capacity"],
                wire_delay=workload["wire_delay"],
                service_jitter=workload["service_jitter"],
                batch_size=batch_size,
            ),
            ordered=False,
        )
        seqs = []
        region.merger.on_emit = lambda tup: seqs.append(tup.seq)
        region.merger.on_completion(total, sim.stop)
        region.start()
        sim.run_until(1e6)
        assert sorted(seqs) == list(range(total)), f"batch_size={batch_size}"
        assert len(seqs) == total


@settings(max_examples=15, deadline=None)
@given(workload=workloads, rate_scale=st.sampled_from([0.3, 1.0, 3.0]))
def test_mixed_block_sizes_per_dispatch_keep_order(workload, rate_scale):
    # An open-loop source drains whatever backlog has accumulated, so
    # consecutive dispatch cycles pull *different* block sizes (often
    # smaller than batch_size, sometimes just one tuple). Ordering and
    # exactly-once must survive the mix at every batch size.
    total = workload["total"]
    for batch_size in BATCH_SIZES:
        sim = Simulator()
        n = workload["n_workers"]
        weights = workload["raw_weights"][:n]
        if sum(weights) == 0:
            weights[0] = 1
        host = Host("h", cores=8, thread_speed=1e5)
        source = RatedSource(
            25.0 * n * rate_scale, constant_cost(1_000.0), total=total
        )
        region = ParallelRegion(
            sim,
            source,
            WeightedPolicy(weights),
            Placement.single_host(n, host),
            params=RegionParams(
                send_capacity=workload["send_capacity"],
                recv_capacity=workload["recv_capacity"],
                wire_delay=workload["wire_delay"],
                batch_size=batch_size,
            ),
        )
        source.arm(sim, on_available=region.splitter.notify_available)
        seqs = []
        region.merger.on_emit = lambda tup: seqs.append(tup.seq)
        region.merger.on_completion(total, sim.stop)
        region.start()
        sim.run_until(1e7)
        assert seqs == list(range(total)), f"batch_size={batch_size}"
        if batch_size > 1:
            # The mix really happened: mean realized dispatch occupancy
            # must sit strictly inside (0, batch_size] — and for the
            # saturating-rate cases below capacity it is typically < B.
            occupancy = region.splitter.dispatch_stats.mean_occupancy
            assert 0.0 < occupancy <= batch_size


@settings(max_examples=10, deadline=None)
@given(workload=workloads, plan=crash_plans)
def test_crash_and_replay_with_unordered_merger(workload, plan):
    # Fault tolerance composes with the pass-through merger: a crash +
    # replay mid-run must still deliver every tuple exactly once, at
    # every batch size, even though nothing reorders.
    total = workload["total"]
    for batch_size in BATCH_SIZES:
        sim = Simulator()
        n = workload["n_workers"]
        weights = workload["raw_weights"][:n]
        if sum(weights) == 0:
            weights[0] = 1
        host = Host("h", cores=8, thread_speed=1e5)
        region = ParallelRegion(
            sim,
            FiniteSource(total, constant_cost(1_000.0)),
            WeightedPolicy(weights),
            Placement.single_host(n, host),
            params=RegionParams(
                send_capacity=workload["send_capacity"],
                recv_capacity=workload["recv_capacity"],
                wire_delay=workload["wire_delay"],
                service_jitter=workload["service_jitter"],
                fault_tolerant=True,
                batch_size=batch_size,
            ),
            ordered=False,
        )
        injector = FaultInjector(sim, region)
        seqs = []
        region.merger.on_emit = lambda tup: seqs.append(tup.seq)
        region.merger.on_completion(total, sim.stop)
        sim.call_at(
            plan["crash_at"],
            lambda: injector.crash(
                plan["worker"], restart_after=plan["restart_after"]
            ),
        )
        region.start()
        sim.run_until(1e6)
        assert sorted(seqs) == list(range(total)), f"batch_size={batch_size}"
        assert len(seqs) == total


@settings(max_examples=10, deadline=None)
@given(workload=workloads)
def test_overload_protection_keeps_order_at_any_batch_size(workload):
    # Offered load well under capacity: the overload layer is attached
    # (admission, flow gate, detector all live) but must not shed, so
    # every batch size drains the identical admitted stream.
    total = workload["total"]
    for batch_size in BATCH_SIZES:
        sim = Simulator()
        n = workload["n_workers"]
        host = Host("h", cores=8, thread_speed=1e5)
        source = RatedSource(25.0 * n, constant_cost(1_000.0), total=total)
        region = ParallelRegion(
            sim,
            source,
            RoundRobinPolicy(n),
            Placement.single_host(n, host),
            params=RegionParams(
                send_capacity=workload["send_capacity"],
                recv_capacity=workload["recv_capacity"],
                overload_protection=True,
                batch_size=batch_size,
            ),
        )
        manager = OverloadManager(
            sim, region, source=source, config=OverloadConfig()
        )
        manager.start()
        source.arm(sim, on_available=region.splitter.notify_available)
        seqs = []
        region.merger.on_emit = lambda tup: seqs.append(tup.seq)
        region.merger.on_completion(total, sim.stop)
        region.start()
        sim.run_until(1e6)
        assert source.tuples_shed == 0, f"batch_size={batch_size}"
        assert seqs == list(range(total)), f"batch_size={batch_size}"
