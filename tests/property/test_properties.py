"""Property-based tests (hypothesis) on the core invariants.

These pin down the algebraic contracts the paper's model depends on:
monotone regression really is monotone and mean-preserving, Fox's greedy
really is optimal, smooth weighted round-robin really delivers its weights,
the merger really restores sequence order, and the clustering distance
really is a semi-metric.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import distribute_evenly, even_split
from repro.core.clustering import agglomerative_cluster, function_distance
from repro.core.monotone import is_non_decreasing, monotone_regression
from repro.core.policies import WeightedPolicy
from repro.core.rap import (
    objective,
    solve_minimax_binary_search,
    solve_minimax_bruteforce,
    solve_minimax_fox,
)
from repro.core.rate_function import BlockingRateFunction
from repro.experiments.oracle import proportional_weights
from repro.sim.engine import Simulator
from repro.streams.merger import OrderedMerger
from repro.streams.tuples import StreamTuple

values_list = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


class TestMonotoneRegression:
    @given(values_list)
    def test_output_is_non_decreasing(self, values):
        assert is_non_decreasing(monotone_regression(values), tol=1e-9)

    @given(values_list)
    def test_mean_preserved(self, values):
        fitted = monotone_regression(values)
        assert math.isclose(
            sum(values), sum(fitted), rel_tol=1e-9, abs_tol=1e-6
        )

    @given(values_list)
    def test_idempotent(self, values):
        fitted = monotone_regression(values)
        assert monotone_regression(fitted) == fitted

    @given(values_list)
    def test_monotone_input_unchanged(self, values):
        ordered = sorted(values)
        assert monotone_regression(ordered) == ordered

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_weighted_mean_preserved(self, pairs):
        values = [v for v, _ in pairs]
        weights = [w for _, w in pairs]
        fitted = monotone_regression(values, weights)
        raw = sum(v * w for v, w in zip(values, weights))
        fit = sum(v * w for v, w in zip(fitted, weights))
        assert math.isclose(raw, fit, rel_tol=1e-9, abs_tol=1e-6)


def _functions_from_slopes(slopes):
    return [lambda w, s=s: s * w for s in slopes]


class TestRapOptimality:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=3,
        ),
        st.integers(min_value=2, max_value=12),
    )
    def test_fox_matches_bruteforce(self, slopes, resolution):
        functions = _functions_from_slopes(slopes)
        fox = solve_minimax_fox(functions, resolution)
        best = solve_minimax_bruteforce(functions, resolution)
        assert sum(fox) == resolution
        assert objective(functions, fox) <= objective(functions, best) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=6,
        ),
        st.integers(min_value=5, max_value=200),
    )
    def test_fox_and_binary_search_agree(self, slopes, resolution):
        functions = _functions_from_slopes(slopes)
        fox = solve_minimax_fox(functions, resolution)
        binary = solve_minimax_binary_search(functions, resolution)
        assert sum(binary) == resolution
        assert math.isclose(
            objective(functions, fox),
            objective(functions, binary),
            rel_tol=1e-9,
            abs_tol=1e-12,
        )


class TestWeightedRoundRobinFairness:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8)
        .filter(lambda ws: sum(ws) > 0)
    )
    def test_exact_counts_over_one_cycle(self, weights):
        policy = WeightedPolicy(weights)
        total = sum(weights)
        counts = [0] * len(weights)
        for _ in range(total):
            counts[policy.next_connection()] += 1
        assert counts == list(weights)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=5),
        st.integers(min_value=2, max_value=5),
    )
    def test_counts_over_k_cycles(self, weights, cycles):
        policy = WeightedPolicy(weights)
        total = sum(weights)
        counts = [0] * len(weights)
        for _ in range(total * cycles):
            counts[policy.next_connection()] += 1
        assert counts == [w * cycles for w in weights]


class TestWeightedAllocateBatchInvariants:
    """allocate_batch under *varying* counts, not one fixed batch size.

    Regression territory: mixed debit/credit carries from uneven batch
    occupancy (partial pulls, replay, end of stream) once made the
    clamped floors sum past ``count``, and the leftover hand-out then
    over-allocated — ``sum(alloc) == count`` must hold for every call in
    any interleaving, alongside non-negativity and bounded drift.
    """

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8)
        .filter(lambda ws: sum(ws) > 0),
        st.lists(st.integers(min_value=0, max_value=70), min_size=1, max_size=30),
    )
    def test_sum_and_nonnegativity_for_any_count_sequence(self, weights, counts):
        policy = WeightedPolicy(weights)
        totals = [0] * len(weights)
        sent = 0
        w_total = sum(weights)
        for count in counts:
            alloc = policy.allocate_batch(count)
            assert sum(alloc) == count, (weights, counts, alloc)
            assert all(a >= 0 for a in alloc), (weights, counts, alloc)
            sent += count
            for j, a in enumerate(alloc):
                totals[j] += a
                assert weights[j] > 0 or a == 0, "zero weight must get nothing"
        # Long-run exactness survives the varying occupancy: every
        # connection stays within one tuple of its exact share.
        for j, w in enumerate(weights):
            assert abs(totals[j] - sent * w / w_total) <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=2, max_size=8)
        .filter(lambda ws: sum(ws) > 0),
        st.lists(st.integers(min_value=0, max_value=70), min_size=1, max_size=30),
    )
    def test_matches_per_pick_totals_within_one(self, weights, counts):
        batched = WeightedPolicy(weights)
        per_pick = WeightedPolicy(weights)
        batched_totals = [0] * len(weights)
        pick_totals = [0] * len(weights)
        for count in counts:
            for j, a in enumerate(batched.allocate_batch(count)):
                batched_totals[j] += a
            for _ in range(count):
                pick_totals[per_pick.next_connection()] += 1
        for j in range(len(weights)):
            assert abs(batched_totals[j] - pick_totals[j]) <= 2, (
                weights, counts, batched_totals, pick_totals,
            )


class TestMergerOrdering:
    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(25))))
    def test_any_arrival_order_is_restored(self, arrival_order):
        emitted = []
        merger = OrderedMerger(Simulator(), on_emit=lambda t: emitted.append(t.seq))
        for seq in arrival_order:
            merger.accept(0, StreamTuple(seq=seq, cost_multiplies=1.0))
        assert emitted == sorted(arrival_order)
        assert merger.pending_count == 0


class TestAllocationHelpers:
    @given(st.integers(min_value=1, max_value=2000), st.integers(min_value=1, max_value=64))
    def test_even_split_sums_and_balance(self, resolution, n):
        weights = even_split(resolution, n)
        assert sum(weights) == resolution
        assert max(weights) - min(weights) <= 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=1000),
    )
    def test_proportional_weights_sum(self, capacities, resolution):
        weights = proportional_weights(capacities, resolution)
        assert sum(weights) == resolution
        assert all(w >= 0 for w in weights)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_distribute_evenly_within_bounds(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        minima = data.draw(
            st.lists(st.integers(min_value=0, max_value=5), min_size=n, max_size=n)
        )
        extra = data.draw(
            st.lists(st.integers(min_value=0, max_value=20), min_size=n, max_size=n)
        )
        maxima = [lo + e for lo, e in zip(minima, extra)]
        total = data.draw(
            st.integers(min_value=sum(minima), max_value=sum(maxima))
        )
        weights = distribute_evenly(total, minima, maxima)
        assert sum(weights) == total
        assert all(lo <= w <= hi for w, lo, hi in zip(weights, minima, maxima))


class TestRateFunctionInvariants:
    observations = st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=1000),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=0,
        max_size=30,
    )

    @settings(max_examples=60, deadline=None)
    @given(observations)
    def test_fitted_function_is_monotone(self, points):
        fn = BlockingRateFunction()
        for weight, rate in points:
            fn.observe(weight, rate)
        sampled = [fn.value(w) for w in range(0, 1001, 37)]
        assert is_non_decreasing(sampled, tol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(observations, st.integers(min_value=0, max_value=1000))
    def test_decay_never_increases_values(self, points, pivot):
        fn = BlockingRateFunction()
        for weight, rate in points:
            fn.observe(weight, rate)
        before = [fn.value(w) for w in range(0, 1001, 97)]
        fn.decay_above(pivot, 0.1)
        after = [fn.value(w) for w in range(0, 1001, 97)]
        assert all(b <= a + 1e-9 for a, b in zip(before, after))

    @settings(max_examples=40, deadline=None)
    @given(observations)
    def test_values_non_negative(self, points):
        fn = BlockingRateFunction()
        for weight, rate in points:
            fn.observe(weight, rate)
        assert all(fn.value(w) >= 0.0 for w in range(0, 1001, 53))


class TestClusteringProperties:
    fn_strategy = st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=1000),
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        ),
        min_size=0,
        max_size=8,
    )

    @staticmethod
    def build(points):
        fn = BlockingRateFunction()
        for weight, rate in points:
            fn.observe(weight, rate)
        return fn

    @settings(max_examples=40, deadline=None)
    @given(fn_strategy, fn_strategy)
    def test_distance_symmetric_and_non_negative(self, pa, pb):
        a, b = self.build(pa), self.build(pb)
        d_ab = function_distance(a, b)
        d_ba = function_distance(b, a)
        assert d_ab >= 0.0
        assert math.isclose(d_ab, d_ba, rel_tol=1e-9, abs_tol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(fn_strategy)
    def test_self_distance_zero(self, points):
        fn = self.build(points)
        assert function_distance(fn, fn) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.randoms(use_true_random=False),
    )
    def test_clustering_is_a_partition(self, n, threshold, rng):
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                d = rng.uniform(0.0, 5.0)
                matrix[i][j] = d
                matrix[j][i] = d
        clusters = agglomerative_cluster(matrix, threshold)
        members = sorted(m for c in clusters for m in c)
        assert members == list(range(n))
