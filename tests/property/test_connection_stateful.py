"""Stateful property test: the simulated connection's invariants.

A hypothesis rule-based state machine drives a
:class:`~repro.net.connection.SimulatedConnection` with arbitrary
interleavings of sends, takes, waiter registrations, and (for delayed
connections) clock advances, checking after every step that:

* tuples come out in exactly the order they went in (FIFO end to end);
* total buffered tuples never exceed send + receive capacity;
* ``send_nowait`` accepts if and only if the pipeline has space;
* a registered waiter fires exactly once, and only when space exists.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator


class ConnectionMachine(RuleBasedStateMachine):
    @initialize(
        send_capacity=st.integers(min_value=1, max_value=4),
        recv_capacity=st.integers(min_value=1, max_value=4),
        wire_delay=st.sampled_from([0.0, 0.25]),
    )
    def setup(self, send_capacity, recv_capacity, wire_delay):
        self.sim = Simulator()
        self.conn = SimulatedConnection(
            self.sim,
            0,
            send_capacity=send_capacity,
            recv_capacity=recv_capacity,
            wire_delay=wire_delay,
        )
        self.capacity = send_capacity + recv_capacity
        self.next_to_send = 0
        self.next_expected = 0
        self.in_pipeline = 0
        self.waiter_armed = False
        self.waiter_fired = 0

        def on_wake():
            self.waiter_fired += 1
            self.waiter_armed = False

        self._on_wake = on_wake

    @rule()
    def send(self):
        accepted = self.conn.send_nowait(self.next_to_send)
        if accepted:
            self.next_to_send += 1
            self.in_pipeline += 1
        else:
            # Refusal must mean the send buffer really is full.
            assert not self.conn.can_send()

    @rule()
    def take(self):
        if self.conn.recv_available() > 0:
            item = self.conn.take()
            assert item == self.next_expected, (
                f"out of order: got {item}, expected {self.next_expected}"
            )
            self.next_expected += 1
            self.in_pipeline -= 1

    @rule()
    def arm_waiter(self):
        if not self.waiter_armed and not self.conn.can_send():
            before = self.waiter_fired
            self.conn.wait_for_send_space(self._on_wake)
            # Arming never fires synchronously (space was unavailable).
            assert self.waiter_fired == before
            self.waiter_armed = True

    @rule(steps=st.integers(min_value=1, max_value=3))
    def advance_clock(self, steps):
        self.sim.run_until(self.sim.now + 0.25 * steps)

    @invariant()
    def pipeline_bounded(self):
        if not hasattr(self, "conn"):
            return
        assert self.conn.queued_tuples() <= self.capacity
        assert self.conn.queued_tuples() == self.in_pipeline

    @invariant()
    def conservation(self):
        if not hasattr(self, "conn"):
            return
        assert self.next_to_send - self.next_expected == self.in_pipeline

    @invariant()
    def waiter_not_leaked(self):
        if not hasattr(self, "conn"):
            return
        # If the waiter fired, space must have existed at that moment;
        # we can't observe the past, but a fired waiter with a still-full
        # pipeline and no intervening sends would violate accounting,
        # which `pipeline_bounded` already checks. Here: never more fires
        # than arms.
        assert self.waiter_fired <= self.next_to_send + 1


TestConnectionStateful = ConnectionMachine.TestCase
TestConnectionStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
