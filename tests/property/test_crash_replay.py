"""Property: no crash/replay interleaving can break sequential semantics.

Hypothesis draws arbitrary crash schedules — which workers die, when,
and how quickly they restart — and the region must always emit a
strictly ordered, gap-free sequence:

* under the **replay** gap policy, every sequence number is emitted
  exactly once, in order, no matter the interleaving;
* under the **skip** gap policy, the emitted sequence is still strictly
  increasing, and emitted + lost partitions the full budget exactly.

The merger raises on duplicates out of band, so these runs also prove
no interleaving produces a double emission.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import WeightedPolicy
from repro.faults import FaultInjector, RecoveryConfig, RecoveryCoordinator
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost

N_WORKERS = 3
TOTAL = 150

crash_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_WORKERS - 1),  # worker
        st.floats(min_value=0.05, max_value=4.0),  # crash time
        st.floats(min_value=0.2, max_value=3.0),  # restart delay
    ),
    min_size=1,
    max_size=4,
)


def run_with_crashes(crashes, gap_policy):
    sim = Simulator()
    host = Host("h", cores=8, thread_speed=1e5)
    region = ParallelRegion(
        sim,
        FiniteSource(TOTAL, constant_cost(1_000.0)),
        WeightedPolicy([1000 // N_WORKERS] * N_WORKERS),
        Placement.single_host(N_WORKERS, host),
        params=RegionParams(fault_tolerant=True),
    )
    injector = FaultInjector(sim, region)
    recovery = RecoveryCoordinator(
        sim,
        region,
        injector=injector,
        config=RecoveryConfig(
            check_interval=0.1,
            staleness_timeout=0.4,
            heartbeat_confirmations=1,
            gap_policy=gap_policy,
            skip_timeout=0.3,
        ),
    )
    emitted_seqs = []
    region.merger.on_emit = lambda tup: emitted_seqs.append(tup.seq)
    for worker, at, restart_after in crashes:
        sim.call_at(
            at,
            lambda w=worker, r=restart_after: injector.crash(
                w, restart_after=r
            ),
        )
    recovery.start()
    region.merger.on_completion(TOTAL, sim.stop)
    region.start()
    sim.run_until(300.0)
    return region, emitted_seqs


@settings(max_examples=25, deadline=None)
@given(crashes=crash_events)
def test_replay_policy_emits_every_seq_exactly_once(crashes):
    region, seqs = run_with_crashes(crashes, "replay")
    # Every worker restarts, so the run must drain completely...
    assert seqs == list(range(TOTAL))
    # ...with nothing lost and nothing emitted twice.
    assert region.merger.tuples_lost == 0
    assert region.merger.emitted == TOTAL


@settings(max_examples=25, deadline=None)
@given(crashes=crash_events)
def test_skip_policy_partitions_budget_in_order(crashes):
    region, seqs = run_with_crashes(crashes, "skip")
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    assert region.merger.emitted + region.merger.tuples_lost == TOTAL
    assert region.merger.emitted == len(seqs)
