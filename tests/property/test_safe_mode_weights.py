"""Property: safe mode keeps the allocation valid under arbitrary garbage.

The acceptance bar for the balancer guardrails: feed the controller *any*
sequence of counter samples — NaN, infinities, negatives, huge values,
counter resets, stale or frozen clocks — and after every round the weight
vector must still be a valid allocation (sums to the resolution, every
component within bounds) and per-round movement must respect the churn
cap. The controller must also never raise: degenerate input holds the
last-good weights, it does not crash the control loop.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancer import BalancerConfig, LoadBalancer

RESOLUTION = 1000
N = 4
MAX_CHURN = 50

# A counter sample: mostly plausible cumulative seconds, sometimes garbage.
counter_values = st.one_of(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(allow_nan=True, allow_infinity=True),
    st.just(0.0),
)

# Clock steps: mostly advancing, sometimes frozen or rewinding.
clock_steps = st.one_of(
    st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    st.just(0.0),
    st.floats(min_value=-5.0, max_value=0.0, allow_nan=False),
)

rounds = st.lists(
    st.tuples(
        clock_steps,
        st.lists(counter_values, min_size=N, max_size=N),
    ),
    min_size=1,
    max_size=40,
)


def valid_allocation(weights):
    return (
        sum(weights) == RESOLUTION
        and all(0 <= w <= RESOLUTION for w in weights)
        and all(isinstance(w, int) for w in weights)
    )


@settings(max_examples=200, deadline=None)
@given(rounds=rounds)
def test_weights_stay_valid_under_degenerate_counters(rounds):
    lb = LoadBalancer(
        N,
        BalancerConfig(
            safe_mode=True,
            max_churn=MAX_CHURN,
            safe_recover_rounds=2,
        ),
    )
    now = 0.0
    previous = lb.weights
    for step, counters in rounds:
        now += step
        if not math.isfinite(now):  # keep the clock itself a float
            now = 0.0
        lb.update(now, counters)
        weights = lb.weights
        assert valid_allocation(weights), weights
        moved = sum(w - p for w, p in zip(weights, previous) if w > p)
        assert moved <= MAX_CHURN, (previous, weights)
        previous = weights


@settings(max_examples=100, deadline=None)
@given(
    rounds=rounds,
    floor=st.integers(min_value=0, max_value=RESOLUTION // N),
)
def test_weight_floor_survives_degenerate_counters(rounds, floor):
    lb = LoadBalancer(
        N,
        BalancerConfig(
            safe_mode=True,
            max_churn=MAX_CHURN,
            weight_floor=floor,
        ),
    )
    now = 0.0
    for step, counters in rounds:
        now += step
        if not math.isfinite(now):
            now = 0.0
        lb.update(now, counters)
        assert sum(lb.weights) == RESOLUTION
        assert all(w >= floor for w in lb.weights), (floor, lb.weights)
