"""Unit tests for exponential smoothing and interval-rate estimation."""

import pytest

from repro.util.ewma import Ewma, IntervalRate


class TestEwma:
    def test_starts_empty(self):
        assert Ewma().value is None

    def test_first_observation_is_taken_verbatim(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.observe(10.0) == 10.0

    def test_smooths_toward_new_values(self):
        ewma = Ewma(alpha=0.5)
        ewma.observe(0.0)
        assert ewma.observe(10.0) == 5.0
        assert ewma.observe(10.0) == 7.5

    def test_alpha_one_tracks_latest(self):
        ewma = Ewma(alpha=1.0)
        ewma.observe(3.0)
        assert ewma.observe(42.0) == 42.0

    def test_reset_forgets(self):
        ewma = Ewma()
        ewma.observe(5.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.observe(1.0) == 1.0

    def test_rejects_zero_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)

    def test_rejects_out_of_range_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestIntervalRate:
    def test_first_sample_yields_no_rate(self):
        rate = IntervalRate()
        assert rate.sample(1.0, 5.0) is None
        assert rate.rate is None

    def test_rate_is_delta_over_elapsed(self):
        rate = IntervalRate(alpha=1.0)
        rate.sample(0.0, 0.0)
        assert rate.sample(2.0, 1.0) == pytest.approx(0.5)

    def test_counter_reset_measured_from_zero(self):
        # Figure 2: the transport layer periodically resets the counter;
        # a sample smaller than its predecessor means the counter
        # restarted from zero during the interval.
        rate = IntervalRate(alpha=1.0)
        rate.sample(0.0, 100.0)
        assert rate.sample(1.0, 0.3) == pytest.approx(0.3)

    def test_smoothing_applies_across_intervals(self):
        rate = IntervalRate(alpha=0.5)
        rate.sample(0.0, 0.0)
        rate.sample(1.0, 1.0)  # raw 1.0 -> smoothed 1.0
        assert rate.sample(2.0, 1.0) == pytest.approx(0.5)  # raw 0.0

    def test_time_must_advance(self):
        rate = IntervalRate()
        rate.sample(1.0, 0.0)
        with pytest.raises(ValueError):
            rate.sample(1.0, 0.5)

    def test_negative_counter_rejected(self):
        rate = IntervalRate()
        with pytest.raises(ValueError):
            rate.sample(0.0, -1.0)

    def test_reset_requires_repriming(self):
        rate = IntervalRate()
        rate.sample(0.0, 0.0)
        rate.sample(1.0, 1.0)
        rate.reset()
        assert rate.sample(2.0, 5.0) is None
