"""Unit tests for the append-only time series."""

import pytest

from repro.util.timeseries import TimeSeries


def make_series(points):
    series = TimeSeries("test")
    for t, v in points:
        series.record(t, v)
    return series


class TestRecording:
    def test_empty_series_is_falsy(self):
        assert not TimeSeries()
        assert len(TimeSeries()) == 0

    def test_records_in_order(self):
        series = make_series([(0.0, 1.0), (1.0, 2.0)])
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_equal_times_allowed(self):
        series = make_series([(1.0, 1.0), (1.0, 2.0)])
        assert len(series) == 2

    def test_time_cannot_go_backwards(self):
        series = make_series([(1.0, 1.0)])
        with pytest.raises(ValueError):
            series.record(0.5, 2.0)

    def test_last(self):
        series = make_series([(0.0, 1.0), (3.0, 7.0)])
        assert series.last() == (3.0, 7.0)

    def test_last_of_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()


class TestLookup:
    def test_value_at_is_step_function(self):
        series = make_series([(0.0, 1.0), (10.0, 2.0)])
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(100.0) == 2.0

    def test_value_before_first_point_raises(self):
        series = make_series([(5.0, 1.0)])
        with pytest.raises(ValueError):
            series.value_at(4.9)

    def test_window_bounds_inclusive(self):
        series = make_series([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)])
        window = series.window(1.0, 2.0)
        assert list(window) == [(1.0, 2.0), (2.0, 3.0)]

    def test_window_preserves_name(self):
        series = make_series([(0.0, 1.0)])
        assert series.window(0.0, 1.0).name == "test"


class TestStatistics:
    def test_mean(self):
        series = make_series([(0.0, 1.0), (1.0, 3.0)])
        assert series.mean() == 2.0

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()

    def test_final_mean_uses_trailing_window(self):
        # 11 points over [0, 10]; trailing 10% covers t in [9, 10].
        series = make_series([(float(t), float(t)) for t in range(11)])
        assert series.final_mean(0.1) == pytest.approx(9.5)

    def test_final_mean_full_fraction_is_mean(self):
        series = make_series([(0.0, 2.0), (1.0, 4.0)])
        assert series.final_mean(1.0) == series.mean()

    def test_final_mean_fraction_validated(self):
        series = make_series([(0.0, 2.0)])
        with pytest.raises(ValueError):
            series.final_mean(0.0)
