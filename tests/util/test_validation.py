"""Unit tests for argument validation helpers."""

import math

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
)


class TestScalarChecks:
    def test_positive_accepts_positive(self):
        check_positive("x", 1e-12)

    @pytest.mark.parametrize("value", [0.0, -1.0, math.inf, math.nan])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)

    def test_non_negative_accepts_zero(self):
        check_non_negative("x", 0.0)

    @pytest.mark.parametrize("value", [-0.1, math.nan, math.inf])
    def test_non_negative_rejects(self, value):
        with pytest.raises(ValueError):
            check_non_negative("x", value)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_fraction_accepts(self, value):
        check_fraction("x", value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, math.nan])
    def test_fraction_rejects(self, value):
        with pytest.raises(ValueError):
            check_fraction("x", value)


class TestProbabilityVector:
    def test_accepts_valid(self):
        check_probability_vector("w", [0.2, 0.3, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector("w", [])

    def test_rejects_negative_entry(self):
        with pytest.raises(ValueError, match=r"w\[1\]"):
            check_probability_vector("w", [0.5, -0.1, 0.6])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector("w", [0.5, 0.6])

    def test_tolerance(self):
        check_probability_vector("w", [0.5, 0.5 + 1e-10])
