"""Edge cases for the lightweight perf tallies (util/perf.py)."""

import pytest

from repro.util.perf import (
    COUNTERS,
    BatchStats,
    ModelCounters,
    PerfCounters,
    reset_counters,
)


class TestBatchStats:
    def test_zero_batches_mean_occupancy(self):
        stats = BatchStats()
        assert stats.batches == 0
        assert stats.tuples == 0
        assert stats.mean_occupancy == 0.0

    def test_record_accumulates(self):
        stats = BatchStats()
        stats.record(4)
        stats.record(6)
        assert stats.batches == 2
        assert stats.tuples == 10
        assert stats.mean_occupancy == 5.0

    def test_empty_batch_counts_toward_mean(self):
        stats = BatchStats()
        stats.record(0)
        assert stats.batches == 1
        assert stats.mean_occupancy == 0.0

    def test_as_dict_key_stability(self):
        stats = BatchStats()
        stats.record(3)
        d = stats.as_dict()
        assert set(d) == {"batches", "tuples", "mean_occupancy"}
        assert d["batches"] == 1
        assert d["tuples"] == 3
        assert d["mean_occupancy"] == 3.0

    def test_as_dict_zero_record(self):
        assert BatchStats().as_dict() == {
            "batches": 0,
            "tuples": 0,
            "mean_occupancy": 0.0,
        }


class TestModelCounters:
    def test_reset_zeroes_everything(self):
        counters = ModelCounters()
        counters.solver_calls = 5
        counters.fits = 7
        counters.table_builds = 2
        counters.reset()
        assert counters.as_dict() == {
            "solver_calls": 0,
            "fits": 0,
            "table_builds": 0,
        }

    def test_as_dict_key_stability(self):
        assert set(ModelCounters().as_dict()) == {
            "solver_calls",
            "fits",
            "table_builds",
        }

    def test_global_reset_counters(self):
        COUNTERS.solver_calls += 3
        COUNTERS.fits += 1
        reset_counters()
        assert COUNTERS.solver_calls == 0
        assert COUNTERS.fits == 0
        assert COUNTERS.table_builds == 0

    def test_autouse_fixture_isolates(self):
        # The suite-wide fixture resets the process-global tallies, so
        # leakage from any earlier test is invisible here.
        assert COUNTERS.as_dict() == {
            "solver_calls": 0,
            "fits": 0,
            "table_builds": 0,
        }
        COUNTERS.fits += 99  # deliberately dirty; fixture cleans up


class TestPerfCounters:
    def _snap(self, **overrides):
        base = dict(
            events_processed=100,
            events_scheduled=120,
            events_cancelled=10,
            heap_compactions=1,
            live_events=10,
        )
        base.update(overrides)
        return PerfCounters(**base)

    def test_events_per_second(self):
        assert self._snap().events_per_second(2.0) == 50.0

    def test_events_per_second_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            self._snap().events_per_second(0.0)
        with pytest.raises(ValueError):
            self._snap().events_per_second(-1.0)

    def test_as_dict_key_stability(self):
        assert set(self._snap().as_dict()) == {
            "events_processed",
            "events_scheduled",
            "events_cancelled",
            "heap_compactions",
            "live_events",
            "events_coalesced",
        }
