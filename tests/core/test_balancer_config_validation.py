"""Construction-time validation of BalancerConfig and LoadBalancer.

Every bad tunable must fail loudly at construction, not rounds later as
a solver crash or a silently skewed allocation.
"""

import pytest

from repro.core.balancer import BalancerConfig, LoadBalancer


class TestAlphaValidation:
    @pytest.mark.parametrize("value", [0.0, -0.5, 1.5])
    def test_rate_alpha_must_be_positive_fraction(self, value):
        with pytest.raises(ValueError):
            BalancerConfig(rate_alpha=value)

    @pytest.mark.parametrize("value", [0.0, -0.1, 2.0])
    def test_function_alpha_must_be_positive_fraction(self, value):
        with pytest.raises(ValueError):
            BalancerConfig(function_alpha=value)

    def test_boundary_one_is_legal(self):
        BalancerConfig(rate_alpha=1.0, function_alpha=1.0)


class TestMovementBounds:
    @pytest.mark.parametrize("value", [0, -10])
    def test_max_increase_must_be_positive_when_set(self, value):
        with pytest.raises(ValueError):
            BalancerConfig(max_increase=value)

    @pytest.mark.parametrize("value", [0, -1])
    def test_max_decrease_must_be_positive_when_set(self, value):
        with pytest.raises(ValueError):
            BalancerConfig(max_decrease=value)

    def test_none_means_unlimited(self):
        BalancerConfig(max_increase=None, max_decrease=None)


class TestWeightFloor:
    def test_negative_floor_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(weight_floor=-1)

    def test_floor_above_resolution_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(weight_floor=1001, resolution=1000)

    def test_infeasible_floor_across_connections_rejected(self):
        # 300 x 4 = 1200 > 1000: no allocation grants every floor.
        config = BalancerConfig(weight_floor=300, resolution=1000)
        with pytest.raises(ValueError):
            LoadBalancer(4, config)

    def test_feasible_floor_accepted(self):
        LoadBalancer(3, BalancerConfig(weight_floor=300, resolution=1000))


class TestClusteringKnobs:
    def test_cluster_threshold_zero_is_legal(self):
        BalancerConfig(cluster_threshold=0.0)

    def test_negative_cluster_threshold_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(cluster_threshold=-0.1)

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            BalancerConfig(delta=0.0)


class TestSafeModeKnobs:
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_safe_saturation_must_be_fraction(self, value):
        with pytest.raises(ValueError):
            BalancerConfig(safe_saturation=value)

    def test_safe_recover_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            BalancerConfig(safe_recover_rounds=0)

    def test_max_churn_must_be_positive_when_set(self):
        with pytest.raises(ValueError):
            BalancerConfig(max_churn=0)

    def test_safe_flip_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BalancerConfig(safe_flip_limit=0)

    def test_safe_mode_defaults_off(self):
        assert not BalancerConfig().safe_mode
