"""Safe-mode guardrails: degenerate inputs hold the last-good weights.

Dataplane-free, like the rest of the balancer tests: counters are
synthetic, and each test checks one guardrail in isolation.
"""

import math

import pytest

from repro.core.balancer import (
    BalancerConfig,
    LoadBalancer,
    limit_weight_churn,
)


def safe_balancer(n=2, **overrides):
    overrides.setdefault("safe_mode", True)
    return LoadBalancer(n, BalancerConfig(**overrides))


def feed_healthy(lb, now, *, rate=0.1, rounds=1, dt=1.0):
    """Feed ``rounds`` sane samples with every channel blocking ``rate``."""
    counters = list(getattr(lb, "_test_counters", [0.0] * lb.n_connections))
    for _ in range(rounds):
        now += dt
        counters = [c + rate * dt for c in counters]
        lb.update(now, counters)
    lb._test_counters = counters
    return now


class TestDegenerateInputHolds:
    def test_nan_counter_holds_weights(self):
        lb = safe_balancer()
        lb.update(1.0, [0.0, 0.0])  # priming
        before = lb.weights
        result = lb.update(2.0, [math.nan, 0.1])
        assert result == before
        assert lb.in_safe_hold
        assert lb.safe_rounds == 1

    def test_infinite_counter_holds_weights(self):
        lb = safe_balancer()
        lb.update(1.0, [0.0, 0.0])
        lb.update(2.0, [math.inf, 0.1])
        assert lb.in_safe_hold

    def test_non_finite_timestamp_holds_weights(self):
        lb = safe_balancer()
        lb.update(1.0, [0.0, 0.0])
        lb.update(math.nan, [0.1, 0.1])
        assert lb.in_safe_hold

    def test_stale_clock_holds_weights(self):
        lb = safe_balancer()
        lb.update(1.0, [0.0, 0.0])
        lb.update(1.0, [0.1, 0.1])  # clock did not advance
        assert lb.in_safe_hold

    def test_decreasing_counters_are_legal(self):
        # The transport layer's periodic reset produces a counter
        # sawtooth by design; safe mode must not treat it as degenerate.
        lb = safe_balancer()
        lb.update(1.0, [5.0, 5.0])
        lb.update(2.0, [0.1, 0.1])
        assert not lb.in_safe_hold

    def test_without_safe_mode_nan_crashes_the_control_round(self):
        # The contrast safe mode exists for: the plain path lets the
        # estimator's validation blow up the control loop mid-run.
        lb = LoadBalancer(2, BalancerConfig(safe_mode=False))
        lb.update(1.0, [0.0, 0.0])
        with pytest.raises(ValueError):
            lb.update(2.0, [math.nan, 0.1])


class TestAllSaturatedHold:
    def test_every_channel_saturated_holds(self):
        lb = safe_balancer(safe_saturation=0.9)
        lb.update(1.0, [0.0, 0.0])
        before = lb.weights
        # Both channels blocked ~100% of the interval: no relative signal.
        assert lb.update(2.0, [1.0, 1.0]) == before
        assert lb.in_safe_hold

    def test_one_healthy_channel_is_signal_not_overload(self):
        lb = safe_balancer(safe_saturation=0.9)
        lb.update(1.0, [0.0, 0.0])
        lb.update(2.0, [1.0, 0.05])
        assert not lb.in_safe_hold


class TestRecovery:
    def test_hold_releases_after_recover_streak(self):
        lb = safe_balancer(safe_recover_rounds=3)
        lb.update(1.0, [0.0, 0.0])
        lb.update(2.0, [math.nan, 0.0])
        assert lb.in_safe_hold
        now = 2.0
        lb._test_counters = [0.0, 0.0]
        now = feed_healthy(lb, now, rounds=2)
        assert lb.in_safe_hold  # streak of 2 < 3: still held
        feed_healthy(lb, now, rounds=1)
        assert not lb.in_safe_hold

    def test_degenerate_sample_mid_recovery_restarts_the_streak(self):
        lb = safe_balancer(safe_recover_rounds=2)
        lb.update(1.0, [0.0, 0.0])
        lb.update(2.0, [math.nan, 0.0])
        lb._test_counters = [0.0, 0.0]
        feed_healthy(lb, 2.0, rounds=1)
        lb.update(10.0, [math.nan, 0.0])  # relapse
        lb._test_counters = [0.0, 0.0]
        feed_healthy(lb, 10.0, rounds=1)
        assert lb.in_safe_hold

    def test_weights_move_again_after_recovery(self):
        lb = safe_balancer(safe_recover_rounds=1, max_churn=None)
        lb.update(1.0, [0.0, 0.0])
        lb.update(2.0, [math.nan, 0.0])
        # Channel 0 blocks hard, channel 1 not at all: once recovered,
        # the optimizer should shift weight away from channel 0.
        now, counters = 2.0, [0.0, 0.0]
        for _ in range(20):
            now += 1.0
            counters = [counters[0] + 0.8, counters[1]]
            lb.update(now, counters)
        assert lb.weights[0] < lb.weights[1]


class TestOscillationGuard:
    def test_flip_streak_trips_and_holds(self):
        lb = safe_balancer(safe_flip_limit=2)
        lb._prev_weights = [600, 400]
        first = lb._guard_adoption([600, 400])
        assert first == [600, 400]
        assert lb.oscillation_trips == 0
        held = lb._guard_adoption([600, 400])
        assert held == lb.weights
        assert lb.oscillation_trips == 1
        assert lb.in_safe_hold

    def test_distinct_adoptions_reset_the_streak(self):
        lb = safe_balancer(safe_flip_limit=2)
        lb._prev_weights = [600, 400]
        lb._guard_adoption([600, 400])
        lb._guard_adoption([550, 450])  # different: streak resets
        lb._guard_adoption([600, 400])
        assert lb.oscillation_trips == 0


class TestChurnLimiter:
    def test_under_cap_returns_candidate(self):
        assert limit_weight_churn([500, 500], [450, 550], 100) == [450, 550]

    def test_capped_movement_is_exactly_max_churn(self):
        result = limit_weight_churn([500, 500, 0], [0, 500, 500], 100)
        assert result == [400, 500, 100]

    def test_sum_and_bounds_preserved(self):
        cases = [
            ([700, 200, 100], [100, 450, 450], 50),
            ([250, 250, 250, 250], [1000, 0, 0, 0], 120),
            ([0, 1000], [1000, 0], 3),
        ]
        for current, candidate, cap in cases:
            result = limit_weight_churn(current, candidate, cap)
            assert sum(result) == sum(current)
            moved = sum(r - w for r, w in zip(result, current) if r > w)
            assert moved == cap
            for w, c, r in zip(current, candidate, result):
                assert min(w, c) <= r <= max(w, c)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            limit_weight_churn([500, 500], [400, 600], 0)

    def test_update_respects_max_churn_per_round(self):
        lb = safe_balancer(max_churn=10, safe_recover_rounds=1)
        now, counters = 0.0, [0.0, 0.0]
        previous = lb.weights
        for i in range(15):
            now += 1.0
            # Channel 0 blocks 90% of every interval, channel 1 idles:
            # the optimizer wants a big move; safe mode meters it out.
            counters = [counters[0] + 0.9, counters[1]]
            lb.update(now, counters)
            moved = sum(
                w - p for w, p in zip(lb.weights, previous) if w > p
            )
            assert moved <= 10
            previous = lb.weights
