"""Unit tests for the load-balancing controller.

Dataplane-free: the controller sees only counter values, so tests feed it
synthetic counters (or drive it against the fluid model) and inspect the
weights it emits.
"""

import pytest

from repro.core.balancer import (
    BalancerConfig,
    LoadBalancer,
    distribute_evenly,
    even_split,
)
from repro.sim.fluid import FluidRegion


class TestHelpers:
    def test_even_split_sums_to_resolution(self):
        assert even_split(1000, 3) == [334, 333, 333]
        assert sum(even_split(1000, 7)) == 1000

    def test_even_split_requires_connections(self):
        with pytest.raises(ValueError):
            even_split(1000, 0)

    def test_distribute_evenly_balanced(self):
        assert distribute_evenly(10, [0, 0, 0], [10, 10, 10]) == [4, 3, 3]

    def test_distribute_evenly_respects_maxima(self):
        assert distribute_evenly(10, [0, 0], [2, 10]) == [2, 8]

    def test_distribute_evenly_starts_at_minima(self):
        assert distribute_evenly(10, [5, 0], [10, 10]) == [5, 5]

    def test_distribute_evenly_infeasible_total(self):
        with pytest.raises(ValueError):
            distribute_evenly(10, [0], [5])
        with pytest.raises(ValueError):
            distribute_evenly(3, [2, 2], [5, 5])


class TestConfig:
    def test_lb_static_has_no_decay(self):
        assert BalancerConfig.lb_static().decay == 0.0

    def test_lb_adaptive_uses_paper_decay(self):
        assert BalancerConfig.lb_adaptive().decay == 0.1

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(decay=1.0)

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(solver="magic")

    def test_invalid_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            BalancerConfig(hysteresis=1.0)


class TestControlLoop:
    def test_starts_with_even_split(self):
        balancer = LoadBalancer(4)
        assert balancer.weights == [250, 250, 250, 250]

    def test_priming_sample_returns_none(self):
        balancer = LoadBalancer(2)
        assert balancer.update(0.0, [0.0, 0.0]) is None
        assert balancer.rounds == 0

    def test_weights_always_sum_to_resolution(self):
        balancer = LoadBalancer(3, BalancerConfig(max_increase=50))
        counters = [0.0, 0.0, 0.0]
        for step in range(1, 20):
            counters[step % 3] += 0.3
            weights = balancer.update(float(step), list(counters))
            if weights is not None:
                assert sum(weights) == 1000
                assert all(w >= 0 for w in weights)

    def test_blocked_connection_loses_weight(self):
        balancer = LoadBalancer(2)
        balancer.update(0.0, [0.0, 0.0])
        weights = balancer.update(1.0, [0.9, 0.0])
        assert weights[0] < 500
        assert weights[1] > 500

    def test_no_signal_means_no_movement(self):
        # The hysteresis gate: with all-zero rates the functions cannot
        # distinguish allocations, so the weights must not drift.
        balancer = LoadBalancer(3)
        for step in range(5):
            balancer.update(float(step), [0.0, 0.0, 0.0])
        assert balancer.weights == even_split(1000, 3)

    def test_static_config_never_decays(self):
        balancer = LoadBalancer(2, BalancerConfig.lb_static())
        balancer.update(0.0, [0.0, 0.0])
        balancer.update(1.0, [0.8, 0.0])
        frozen = balancer.functions[0].raw_value(500)
        for step in range(2, 30):
            balancer.update(float(step), [0.8 * step, 0.0])
        # The raw point at the old weight is never decayed.
        assert balancer.functions[0].raw_value(500) == frozen

    def test_movement_bounds_respected(self):
        balancer = LoadBalancer(
            2, BalancerConfig(max_increase=50, max_decrease=50, hysteresis=0.0)
        )
        balancer.update(0.0, [0.0, 0.0])
        weights = balancer.update(1.0, [0.9, 0.0])
        assert weights == [450, 550]

    def test_counter_length_checked(self):
        balancer = LoadBalancer(2)
        with pytest.raises(ValueError):
            balancer.update(0.0, [0.0])


class TestAgainstFluidModel:
    def run_loop(self, balancer, region, rounds):
        for _ in range(rounds):
            region.advance(1.0)
            counters = [c.read() for c in region.blocking_counters]
            weights = balancer.update(region.time, counters)
            if weights is not None:
                region.set_weights(weights)

    def test_capacity_imbalance_detected(self):
        # Worker 0 can do 10/s, worker 1 can do 90/s; splitter 120/s.
        region = FluidRegion([10.0, 90.0], splitter_rate=120.0)
        balancer = LoadBalancer(2)
        self.run_loop(balancer, region, 120)
        weights = balancer.weights
        assert weights[0] < 250, weights
        assert region.throughput() > 80.0

    def test_equal_capacity_stays_near_even(self):
        region = FluidRegion([50.0, 50.0, 50.0], splitter_rate=180.0)
        balancer = LoadBalancer(3)
        self.run_loop(balancer, region, 150)
        assert max(balancer.weights) - min(balancer.weights) < 350

    def test_adapts_when_capacity_returns(self):
        region = FluidRegion([5.0, 50.0], splitter_rate=70.0)
        balancer = LoadBalancer(2)
        self.run_loop(balancer, region, 80)
        assert balancer.weights[0] < 200
        throughput_before = region.throughput()
        region.set_service_rate(0, 50.0)
        self.run_loop(balancer, region, 300)
        # LB-adaptive re-explores and rediscovers worker 0's capacity;
        # the climb stops once blocking vanishes, so assert the recovered
        # share and throughput rather than a full return to even.
        assert balancer.weights[0] > 150, balancer.weights
        assert region.throughput() > throughput_before

    def test_static_never_rediscovers(self):
        region = FluidRegion([5.0, 50.0], splitter_rate=70.0)
        balancer = LoadBalancer(2, BalancerConfig.lb_static())
        self.run_loop(balancer, region, 80)
        stuck = balancer.weights[0]
        region.set_service_rate(0, 50.0)
        self.run_loop(balancer, region, 300)
        assert balancer.weights[0] <= stuck + 50


class TestClusteredSolve:
    def test_cluster_snapshot_recorded(self):
        balancer = LoadBalancer(4, BalancerConfig(clustering=True))
        balancer.update(0.0, [0.0] * 4)
        balancer.update(1.0, [0.5, 0.5, 0.0, 0.0])
        assert sorted(j for c in balancer.last_clusters for j in c) == [0, 1, 2, 3]

    def test_clustered_weights_sum_to_resolution(self):
        balancer = LoadBalancer(8, BalancerConfig(clustering=True))
        counters = [0.0] * 8
        for step in range(1, 15):
            for j in range(4):
                counters[j] += 0.2
            weights = balancer.update(float(step), list(counters))
            if weights is not None:
                assert sum(weights) == 1000

    def test_similar_channels_grouped(self):
        balancer = LoadBalancer(4, BalancerConfig(clustering=True))
        balancer.update(0.0, [0.0] * 4)
        counters = [0.0] * 4
        for step in range(1, 25):
            counters[0] += 0.8
            counters[1] += 0.8
            balancer.update(float(step), list(counters))
        clusters = balancer.last_clusters
        cluster_of = {j: tuple(c) for c in clusters for j in c}
        assert cluster_of[0] == cluster_of[1]
