"""Unit tests for the minimax separable RAP solvers."""

import pytest

from repro.core.constraints import WeightConstraints
from repro.core.rap import (
    InfeasibleError,
    objective,
    solve_minimax_binary_search,
    solve_minimax_bruteforce,
    solve_minimax_fox,
)

SOLVERS = [solve_minimax_fox, solve_minimax_binary_search]


def linear(slope):
    return lambda w: slope * w


@pytest.mark.parametrize("solve", SOLVERS)
class TestExactness:
    def test_identical_linear_functions_split_evenly(self, solve):
        weights = solve([linear(1.0)] * 4, 100)
        assert sum(weights) == 100
        assert objective([linear(1.0)] * 4, weights) == pytest.approx(25.0)

    def test_capacity_proportional_split(self, solve):
        # F_j(w) = w / capacity_j: minimax puts weight proportional to
        # capacity.
        functions = [lambda w: w / 3.0, lambda w: w / 1.0]
        weights = solve(functions, 100)
        assert weights == [75, 25]

    def test_matches_bruteforce_on_small_instances(self, solve):
        functions = [
            lambda w: max(0.0, w - 5) ** 2,
            lambda w: 0.5 * w,
            lambda w: 2.0 * w,
        ]
        for total in (6, 10, 15):
            got = solve(functions, total)
            best = solve_minimax_bruteforce(functions, total)
            assert sum(got) == total
            assert objective(functions, got) == pytest.approx(
                objective(functions, best)
            )

    def test_respects_bounds(self, solve):
        constraints = WeightConstraints(minima=(2, 0), maxima=(5, 10))
        weights = solve([linear(1.0), linear(1.0)], 10, constraints)
        assert weights[0] >= 2 and weights[0] <= 5
        assert sum(weights) == 10

    def test_forced_minimum_dominates_objective(self, solve):
        # Connection 0 is forced to at least 8 on a steep function.
        constraints = WeightConstraints(minima=(8, 0), maxima=(10, 10))
        functions = [linear(10.0), linear(0.1)]
        weights = solve(functions, 10, constraints)
        assert weights[0] == 8
        assert weights[1] == 2

    def test_flat_zero_functions_fill_feasibly(self, solve):
        weights = solve([lambda w: 0.0] * 3, 9)
        assert sum(weights) == 9

    def test_infeasible_minima(self, solve):
        constraints = WeightConstraints(minima=(6, 6), maxima=(10, 10))
        with pytest.raises(InfeasibleError):
            solve([linear(1.0)] * 2, 10, constraints)

    def test_infeasible_maxima(self, solve):
        constraints = WeightConstraints(minima=(0, 0), maxima=(3, 3))
        with pytest.raises(InfeasibleError):
            solve([linear(1.0)] * 2, 10, constraints)

    def test_mismatched_constraints_rejected(self, solve):
        constraints = WeightConstraints(minima=(0,), maxima=(5,))
        with pytest.raises(ValueError):
            solve([linear(1.0)] * 2, 5, constraints)


class TestSolverAgreement:
    def test_fox_and_binary_search_agree_on_objective(self):
        functions = [
            lambda w: max(0.0, (w - 10)) * 0.3,
            lambda w: 0.05 * w * w / 10.0,
            lambda w: 0.0 if w < 20 else (w - 20) * 1.0,
            lambda w: 0.6 * w,
        ]
        constraints = WeightConstraints(minima=(0, 5, 0, 0), maxima=(40, 40, 25, 40))
        fox = solve_minimax_fox(functions, 60, constraints)
        binary = solve_minimax_binary_search(functions, 60, constraints)
        assert sum(fox) == sum(binary) == 60
        assert objective(functions, fox) == pytest.approx(
            objective(functions, binary)
        )


class TestObjectiveHelper:
    def test_objective(self):
        assert objective([linear(1.0), linear(2.0)], [3, 4]) == 8.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            objective([linear(1.0)], [1, 2])


class TestValidation:
    def test_empty_functions_rejected(self):
        with pytest.raises(ValueError):
            solve_minimax_fox([], 10)

    def test_non_positive_resolution_rejected(self):
        with pytest.raises(ValueError):
            solve_minimax_fox([linear(1.0)], 0)

    def test_maxima_above_resolution_rejected(self):
        constraints = WeightConstraints(minima=(0,), maxima=(20,))
        with pytest.raises(ValueError):
            solve_minimax_fox([linear(1.0)], 10, constraints)
