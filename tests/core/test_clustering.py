"""Unit tests for function clustering (Section 5.3)."""

import math

import pytest

from repro.core.clustering import (
    agglomerative_cluster,
    cluster_functions,
    distance_alpha,
    extract_features,
    function_distance,
)
from repro.core.rate_function import BlockingRateFunction


def fn_with(points, resolution=1000):
    fn = BlockingRateFunction(resolution)
    for weight, rate in points:
        fn.observe(weight, rate)
    return fn


class TestFeatures:
    def test_no_data_function(self):
        features = extract_features(BlockingRateFunction())
        assert features.knee_weight == 1000
        assert features.knee_value == pytest.approx(1e-6)
        assert features.full_value == pytest.approx(1e-6)

    def test_knee_and_values_floored(self):
        features = extract_features(fn_with([(500, 1.0)]))
        assert features.knee_weight >= 1
        assert features.knee_value > 0
        assert features.full_value >= features.knee_value


class TestDistance:
    def test_identical_functions_distance_zero(self):
        a = fn_with([(500, 1.0)])
        b = fn_with([(500, 1.0)])
        assert function_distance(a, b) == pytest.approx(0.0)

    def test_symmetry(self):
        a = fn_with([(500, 1.0)])
        b = fn_with([(100, 2.0)])
        assert function_distance(a, b) == pytest.approx(function_distance(b, a))

    def test_different_capacity_classes_far_apart(self):
        healthy = fn_with([(600, 0.05)])
        overloaded = fn_with([(5, 0.9)])
        similar = fn_with([(580, 0.06)])
        assert function_distance(healthy, overloaded) > function_distance(
            healthy, similar
        )

    def test_alpha_formula(self):
        # alpha = log R / |log(R * delta)|
        assert distance_alpha(1000, 1e-6) == pytest.approx(
            math.log(1000) / abs(math.log(1000 * 1e-6))
        )

    def test_resolution_mismatch_rejected(self):
        with pytest.raises(ValueError):
            function_distance(
                BlockingRateFunction(100), BlockingRateFunction(200)
            )


class TestAgglomerative:
    def test_empty(self):
        assert agglomerative_cluster([], 1.0) == []

    def test_threshold_zero_keeps_singletons(self):
        matrix = [[0.0, 5.0], [5.0, 0.0]]
        assert agglomerative_cluster(matrix, 0.0) == [[0], [1]]

    def test_close_pair_merges(self):
        matrix = [
            [0.0, 0.1, 9.0],
            [0.1, 0.0, 9.0],
            [9.0, 9.0, 0.0],
        ]
        assert agglomerative_cluster(matrix, 1.0) == [[0, 1], [2]]

    def test_complete_linkage_blocks_chaining(self):
        # 0-1 close, 1-2 close, but 0-2 far: complete linkage refuses to
        # chain all three into one cluster.
        matrix = [
            [0.0, 1.0, 3.0],
            [1.0, 0.0, 1.0],
            [3.0, 1.0, 0.0],
        ]
        clusters = agglomerative_cluster(matrix, 1.5)
        assert len(clusters) == 2

    def test_everything_merges_under_huge_threshold(self):
        matrix = [[0.0, 2.0], [2.0, 0.0]]
        assert agglomerative_cluster(matrix, 10.0) == [[0, 1]]

    def test_square_matrix_required(self):
        with pytest.raises(ValueError):
            agglomerative_cluster([[0.0, 1.0]], 1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            agglomerative_cluster([[0.0]], -1.0)

    def test_deterministic_output_order(self):
        matrix = [
            [0.0, 0.1, 9.0, 9.0],
            [0.1, 0.0, 9.0, 9.0],
            [9.0, 9.0, 0.0, 0.1],
            [9.0, 9.0, 0.1, 0.0],
        ]
        assert agglomerative_cluster(matrix, 1.0) == [[0, 1], [2, 3]]


class TestClusterFunctions:
    def test_capacity_classes_separate(self):
        # Two overloaded channels (blocking at tiny weights), two healthy.
        functions = [
            fn_with([(5, 0.9), (8, 1.1)]),
            fn_with([(6, 1.0)]),
            fn_with([(600, 0.05)]),
            fn_with([(580, 0.06)]),
        ]
        clusters = cluster_functions(functions, threshold=1.0)
        assert [0, 1] in clusters
        assert [2, 3] in clusters

    def test_partition_covers_all(self):
        functions = [fn_with([(100 * (j + 1), 0.1 * (j + 1))]) for j in range(5)]
        clusters = cluster_functions(functions, threshold=0.5)
        members = sorted(j for cluster in clusters for j in cluster)
        assert members == [0, 1, 2, 3, 4]
