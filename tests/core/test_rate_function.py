"""Unit tests for the blocking rate function F_j."""

import pytest

from repro.core.rate_function import BlockingRateFunction


def fn_with(points, resolution=1000, **kwargs):
    fn = BlockingRateFunction(resolution, **kwargs)
    for weight, rate in points:
        fn.observe(weight, rate)
    return fn


class TestConstruction:
    def test_origin_assumed(self):
        fn = BlockingRateFunction()
        assert fn.observed_weights() == [0]
        assert fn.value(0) == 0.0
        assert fn.value(1000) == 0.0

    def test_single_observation_interpolates_from_origin(self):
        fn = fn_with([(500, 1.0)])
        assert fn.value(250) == pytest.approx(0.5)
        assert fn.value(500) == pytest.approx(1.0)

    def test_extrapolation_continues_last_slope(self):
        fn = fn_with([(400, 0.4), (500, 0.9)])
        # slope 0.005/unit beyond 500
        assert fn.value(700) == pytest.approx(0.9 + 200 * 0.005)

    def test_extrapolation_never_decreases(self):
        fn = fn_with([(300, 0.5), (500, 0.5)])
        assert fn.value(1000) == pytest.approx(0.5)

    def test_fractional_weight_interpolation(self):
        fn = fn_with([(10, 1.0)])
        assert fn.value(5.0) == pytest.approx(0.5)
        assert fn.value(2.5) == pytest.approx(0.25)

    def test_values_table_length(self):
        fn = fn_with([(10, 1.0)], resolution=100)
        assert len(fn.values()) == 101


class TestObservation:
    def test_smoothing_folds_new_data(self):
        fn = fn_with([(100, 1.0)], smoothing_alpha=0.5)
        fn.observe(100, 0.0)
        assert fn.raw_value(100) == pytest.approx(0.5)

    def test_weight_zero_observations_ignored(self):
        fn = BlockingRateFunction()
        fn.observe(0, 5.0)
        assert fn.value(0) == 0.0

    def test_weight_bounds_checked(self):
        fn = BlockingRateFunction(resolution=100)
        with pytest.raises(ValueError):
            fn.observe(101, 1.0)
        with pytest.raises(TypeError):
            fn.observe(1.5, 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            BlockingRateFunction().observe(10, -1.0)

    def test_monotone_regression_repairs_inversions(self):
        # A noisy sample below an established point gets pooled.
        fn = fn_with([(100, 1.0), (200, 0.2)])
        assert fn.value(100) <= fn.value(200)

    def test_forget_drops_everything(self):
        fn = fn_with([(100, 1.0)])
        fn.forget()
        assert fn.observed_weights() == [0]
        assert fn.value(1000) == 0.0


class TestDecay:
    def test_decay_above_reduces_higher_weights_only(self):
        fn = fn_with([(100, 1.0), (200, 2.0)])
        fn.decay_above(100, 0.1)
        assert fn.raw_value(100) == pytest.approx(1.0)
        assert fn.raw_value(200) == pytest.approx(1.8)

    def test_repeated_decay_is_geometric(self):
        fn = fn_with([(200, 1.0)])
        for _ in range(10):
            fn.decay_above(100, 0.1)
        assert fn.raw_value(200) == pytest.approx(0.9**10)

    def test_zero_fraction_is_noop(self):
        fn = fn_with([(200, 1.0)])
        fn.decay_above(100, 0.0)
        assert fn.raw_value(200) == 1.0

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            fn_with([(200, 1.0)]).decay_above(100, 1.5)


class TestKnee:
    def test_knee_at_resolution_when_no_blocking(self):
        assert BlockingRateFunction().knee_weight() == 1000

    def test_knee_before_first_blocking(self):
        fn = fn_with([(500, 1.0)])
        # Linear ramp from (0,0): knee at threshold 0.1 is w=50.
        assert fn.knee_weight(threshold=0.1) == 50

    def test_knee_with_flat_zero_region(self):
        fn = BlockingRateFunction()
        fn.observe(400, 0.0)
        fn.observe(500, 1.0)
        assert 395 <= fn.knee_weight(threshold=1e-9) <= 405

    def test_knee_zero_when_blocked_everywhere(self):
        fn = fn_with([(1, 5.0)])
        assert fn.knee_weight(threshold=0.1) <= 1


class TestPooled:
    def test_pooled_combines_raw_points(self):
        a = fn_with([(100, 1.0)])
        b = fn_with([(200, 2.0)])
        pooled = BlockingRateFunction.pooled([a, b])
        assert pooled.raw_value(100) == pytest.approx(1.0)
        assert pooled.raw_value(200) == pytest.approx(2.0)

    def test_pooled_averages_shared_weights_by_count(self):
        a = fn_with([(100, 1.0), (100, 1.0)])  # count 2, value 1.0
        b = fn_with([(100, 4.0)])  # count 1, value 4.0
        pooled = BlockingRateFunction.pooled([a, b])
        assert pooled.raw_value(100) == pytest.approx(2.0)

    def test_pooled_requires_members(self):
        with pytest.raises(ValueError):
            BlockingRateFunction.pooled([])

    def test_pooled_requires_matching_resolution(self):
        with pytest.raises(ValueError):
            BlockingRateFunction.pooled(
                [BlockingRateFunction(100), BlockingRateFunction(200)]
            )

    def test_pooling_does_not_mutate_members(self):
        a = fn_with([(100, 1.0)])
        BlockingRateFunction.pooled([a, fn_with([(100, 3.0)])])
        assert a.raw_value(100) == 1.0

    def test_pooled_copies_tunables_from_first_member(self):
        a = fn_with([(100, 1.0)], smoothing_alpha=0.25, max_count=7)
        b = fn_with([(200, 2.0)], smoothing_alpha=0.9, max_count=99)
        pooled = BlockingRateFunction.pooled([a, b])
        assert pooled.smoothing_alpha == 0.25
        assert pooled.max_count == 7

    def test_pooling_two_functions_is_order_independent(self):
        a = fn_with([(100, 1.0), (100, 0.5), (300, 2.0)])
        b = fn_with([(100, 4.0), (200, 1.5)])
        ab = BlockingRateFunction.pooled([a, b])
        ba = BlockingRateFunction.pooled([b, a])
        assert ab.observed_weights() == ba.observed_weights()
        for w in ab.observed_weights():
            assert ab.raw_value(w) == ba.raw_value(w)
        assert ab.values() == ba.values()


class TestTableCache:
    def test_table_matches_pointwise_values(self):
        fn = fn_with([(100, 0.5), (400, 2.0), (700, 2.5)])
        table = fn.table()
        assert len(table) == 1001
        assert table == [fn.value(w) for w in range(1001)]

    def test_table_is_cached_between_reads(self):
        fn = fn_with([(100, 0.5)])
        assert fn.table() is fn.table()

    def test_values_returns_a_copy(self):
        fn = fn_with([(100, 0.5)])
        values = fn.values()
        values[0] = 123.0
        assert fn.table()[0] == 0.0

    def test_observe_invalidates_table(self):
        fn = fn_with([(100, 0.5)])
        before = fn.table()
        fn.observe(200, 3.0)
        after = fn.table()
        assert after is not before
        assert after[200] == pytest.approx(3.0)

    def test_decay_above_invalidates_table(self):
        fn = fn_with([(100, 0.5), (400, 2.0)])
        before = fn.table()
        fn.decay_above(100, 0.1)
        after = fn.table()
        assert after is not before
        assert after[400] == pytest.approx(1.8)

    def test_forget_invalidates_table(self):
        fn = fn_with([(100, 0.5)])
        fn.table()
        fn.forget()
        assert fn.table() == [0.0] * 1001

    def test_knee_weight_reads_from_table(self):
        fn = fn_with([(100, 0.0), (200, 1.0)])
        # Knee via the table must agree with a linear scan of values().
        values = fn.values()
        expected = max(w for w, v in enumerate(values) if v <= 0.5)
        assert fn.knee_weight(threshold=0.5) == expected

    def test_solvers_accept_raw_tables(self):
        from repro.core.rap import solve_minimax_fox

        fns = [
            fn_with([(100, 0.0), (900, 5.0)]),
            fn_with([(100, 0.0), (900, 1.0)]),
        ]
        via_tables = solve_minimax_fox([fn.table() for fn in fns], 1000)
        via_callables = solve_minimax_fox([fn.value for fn in fns], 1000)
        assert via_tables == via_callables
