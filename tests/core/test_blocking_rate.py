"""Unit tests for the blocking-rate estimator."""

import pytest

from repro.core.blocking_rate import BlockingRateEstimator


class TestSampling:
    def test_first_sample_primes(self):
        estimator = BlockingRateEstimator(2)
        assert estimator.sample(0.0, [0.0, 0.0]) is None
        assert not estimator.ready

    def test_rates_after_two_samples(self):
        estimator = BlockingRateEstimator(2, alpha=1.0)
        estimator.sample(0.0, [0.0, 0.0])
        rates = estimator.sample(1.0, [0.5, 0.0])
        assert rates == pytest.approx([0.5, 0.0])
        assert estimator.ready

    def test_counter_reset_handled(self):
        estimator = BlockingRateEstimator(1, alpha=1.0)
        estimator.sample(0.0, [10.0])
        rates = estimator.sample(1.0, [0.25])
        assert rates == pytest.approx([0.25])

    def test_counter_count_checked(self):
        estimator = BlockingRateEstimator(2)
        with pytest.raises(ValueError):
            estimator.sample(0.0, [1.0])

    def test_rates_default_zero(self):
        estimator = BlockingRateEstimator(3)
        assert estimator.rates == [0.0, 0.0, 0.0]

    def test_reset(self):
        estimator = BlockingRateEstimator(1)
        estimator.sample(0.0, [0.0])
        estimator.sample(1.0, [1.0])
        estimator.reset()
        assert not estimator.ready
        assert estimator.sample(2.0, [5.0]) is None

    def test_requires_connections(self):
        with pytest.raises(ValueError):
            BlockingRateEstimator(0)

    def test_smoothing(self):
        estimator = BlockingRateEstimator(1, alpha=0.5)
        estimator.sample(0.0, [0.0])
        estimator.sample(1.0, [1.0])  # raw 1.0 -> 1.0
        rates = estimator.sample(2.0, [1.0])  # raw 0.0 -> 0.5
        assert rates == pytest.approx([0.5])
