"""Unit tests for pool-adjacent-violators monotone regression."""

import pytest

from repro.core.monotone import is_non_decreasing, monotone_regression


class TestBasics:
    def test_empty(self):
        assert monotone_regression([]) == []

    def test_already_monotone_unchanged(self):
        values = [0.0, 1.0, 1.0, 3.0]
        assert monotone_regression(values) == values

    def test_single_violation_pooled(self):
        assert monotone_regression([1.0, 3.0, 2.0]) == [1.0, 2.5, 2.5]

    def test_fully_decreasing_pools_to_mean(self):
        fitted = monotone_regression([3.0, 2.0, 1.0])
        assert fitted == [2.0, 2.0, 2.0]

    def test_output_is_non_decreasing(self):
        fitted = monotone_regression([5.0, 1.0, 4.0, 2.0, 8.0, 0.0])
        assert is_non_decreasing(fitted)

    def test_inputs_not_modified(self):
        values = [3.0, 1.0]
        monotone_regression(values)
        assert values == [3.0, 1.0]


class TestWeights:
    def test_heavier_point_dominates_pool(self):
        # Pooling (3.0, w=3) with (1.0, w=1) -> weighted mean 2.5.
        fitted = monotone_regression([3.0, 1.0], [3.0, 1.0])
        assert fitted == [2.5, 2.5]

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            monotone_regression([1.0, 2.0], [1.0])

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            monotone_regression([1.0], [0.0])

    def test_weighted_mean_preserved(self):
        values = [4.0, 1.0, 3.0, 2.0]
        weights = [1.0, 2.0, 1.0, 2.0]
        fitted = monotone_regression(values, weights)
        raw_mean = sum(v * w for v, w in zip(values, weights))
        fit_mean = sum(v * w for v, w in zip(fitted, weights))
        assert fit_mean == pytest.approx(raw_mean)


class TestIsNonDecreasing:
    def test_detects_violation(self):
        assert not is_non_decreasing([1.0, 0.5])

    def test_tolerance(self):
        assert is_non_decreasing([1.0, 0.999], tol=0.01)
