"""Unit tests for routing policies."""

from collections import Counter

import pytest

from repro.core.policies import (
    OraclePolicy,
    ReroutingPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
)


def picks(policy, n):
    return [policy.next_connection() for _ in range(n)]


class TestRoundRobin:
    def test_cycles(self):
        policy = RoundRobinPolicy(3)
        assert picks(policy, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_never_reroutes(self):
        policy = RoundRobinPolicy(3)
        assert not policy.allows_reroute
        assert list(policy.reroute_candidates(1)) == []

    def test_requires_connections(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(0)


class TestWeightedPolicy:
    def test_counts_match_weights_over_a_cycle(self):
        policy = WeightedPolicy([5, 3, 2])
        counts = Counter(picks(policy, 10))
        assert counts == {0: 5, 1: 3, 2: 2}

    def test_interleaving_is_smooth(self):
        # Smooth WRR spreads picks: with weights 4/2 the heavier
        # connection never gets more than 2 consecutive picks.
        policy = WeightedPolicy([4, 2])
        sequence = picks(policy, 12)
        longest_run = max(
            len(run)
            for run in "".join(map(str, sequence)).replace("1", " ").split()
        )
        assert longest_run <= 3

    def test_zero_weight_connection_never_picked(self):
        policy = WeightedPolicy([500, 0, 500])
        assert 1 not in picks(policy, 100)

    def test_set_weights_changes_distribution(self):
        policy = WeightedPolicy([500, 500])
        policy.set_weights([1000, 0])
        assert picks(policy, 10) == [0] * 10

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedPolicy([0, 0])
        policy = WeightedPolicy([1, 1])
        with pytest.raises(ValueError):
            policy.set_weights([0, 0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedPolicy([-1, 2])

    def test_wrong_length_rejected(self):
        policy = WeightedPolicy([1, 1])
        with pytest.raises(ValueError):
            policy.set_weights([1, 1, 1])


class TestReroutingPolicy:
    def test_primary_route_is_round_robin(self):
        policy = ReroutingPolicy(3)
        assert picks(policy, 3) == [0, 1, 2]

    def test_reroute_candidates_cycle_after_blocked(self):
        policy = ReroutingPolicy(4)
        assert list(policy.reroute_candidates(1)) == [2, 3, 0]

    def test_allows_reroute(self):
        assert ReroutingPolicy(2).allows_reroute


class TestOraclePolicy:
    def test_initial_weights_from_earliest_entry(self):
        policy = OraclePolicy({0.0: [800, 200], 50.0: [500, 500]})
        assert policy.weights == [800, 200]

    def test_changes_after(self):
        policy = OraclePolicy({0.0: [800, 200], 50.0: [500, 500], 10.0: [700, 300]})
        changes = policy.changes_after(0.0)
        assert [t for t, _ in changes] == [10.0, 50.0]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            OraclePolicy({})
