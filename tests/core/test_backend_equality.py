"""Pin the numpy and pure-python backends to bit-identical results.

The vectorized code paths (batch apportionment, PAVA's monotone check,
the rate-function table build, block column accounting) all promise
**bit-identical** output to their stdlib fallbacks — that is what lets
the golden traces and recorded experiment numbers stay valid whether or
not the optional ``[perf]`` extra is installed. These tests drive both
implementations in one process and compare exact floats, so a drift in
either backend fails immediately (the CI numpy-absent leg then covers
the import-time selection itself).
"""

import random
from array import array

import pytest

from repro.core import monotone, rate_function
from repro.core.monotone import monotone_regression
from repro.core.policies import VECTOR_MIN_CONNECTIONS, WeightedPolicy
from repro.core.rate_function import BlockingRateFunction
from repro.sim.engine import Simulator
from repro.streams.merger import OrderedMerger
from repro.streams.tuples import TupleBlock
from repro.util.arrays import HAVE_NUMPY, numpy


# ------------------------------------------------------------ apportionment


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy for the vector path")
def test_vector_apportionment_matches_scalar_exactly():
    # Wide enough that allocate_batch dispatches to the vector path; the
    # twin is forced down the scalar reference loop directly. Realized
    # allocations AND carried credits must match to the last bit across
    # a long random count sequence with weight changes mixed in.
    rng = random.Random(20160401)
    n = VECTOR_MIN_CONNECTIONS + 5
    weights = [rng.randint(1, 9) for _ in range(n)]
    vector_policy = WeightedPolicy(weights)
    scalar_policy = WeightedPolicy(weights)
    assert vector_policy._active_weights is not None
    for round_no in range(200):
        count = rng.randint(0, 500)
        via_vector = vector_policy.allocate_batch(count)
        via_scalar = scalar_policy._allocate_batch_scalar(count, [0] * n)
        assert via_vector == via_scalar, f"round {round_no}, count {count}"
        assert (
            vector_policy._batch_credits == scalar_policy._batch_credits
        ), f"credits diverged at round {round_no}"
        if round_no % 37 == 36:
            weights = [rng.randint(1, 9) for _ in range(n)]
            vector_policy.set_weights(weights)
            scalar_policy.set_weights(weights)


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy for the vector path")
def test_vector_apportionment_with_zero_weights_agrees():
    # Zero-weight connections (skipped by both loops) plus counts around
    # the active width exercise the floor clamp and the leftover hand-out;
    # enough nonzero weights remain to keep the vector path selected.
    rng = random.Random(7)
    for trial in range(30):
        weights = [rng.choice([1, 3, 9]) for _ in range(VECTOR_MIN_CONNECTIONS)]
        weights += [0] * 8
        rng.shuffle(weights)
        n = len(weights)
        vector_policy = WeightedPolicy(weights)
        scalar_policy = WeightedPolicy(weights)
        for count in [0, 1, 2, 3, n - 1, n, n + 1, 10 * n]:
            via_vector = vector_policy.allocate_batch(count)
            via_scalar = scalar_policy._allocate_batch_scalar(count, [0] * n)
            assert via_vector == via_scalar, f"trial {trial}, count {count}"
            assert (
                vector_policy._batch_credits == scalar_policy._batch_credits
            ), f"trial {trial}, count {count}"


# -------------------------------------------------------------------- PAVA


def test_pava_monotone_precheck_is_identity():
    # Already-sorted input is its own isotonic regression, so the
    # vectorized precheck must hand back exactly the input values — the
    # same thing the block-merge loop would produce.
    rng = random.Random(99)
    for _ in range(50):
        # Straddle VECTOR_MIN_POINTS so both the vectorized and the
        # scalar precheck take the fast path here.
        n = rng.randint(1, 150)
        values = sorted(rng.random() * 10 for _ in range(n))
        weights = [float(rng.randint(1, 5)) for _ in range(n)]
        assert monotone_regression(values, weights) == values


def test_pava_backends_agree(monkeypatch):
    rng = random.Random(123)
    cases = []
    for _ in range(60):
        n = rng.randint(1, 150)
        values = [rng.random() * 10 for _ in range(n)]
        weights = [float(rng.randint(1, 6)) for _ in range(n)]
        cases.append((values, weights))
    with_backend = [monotone_regression(v, w) for v, w in cases]
    monkeypatch.setattr(monotone, "HAVE_NUMPY", False)
    without_backend = [monotone_regression(v, w) for v, w in cases]
    assert with_backend == without_backend


# ------------------------------------------------------------- rate tables


def test_rate_function_tables_agree_across_backends(monkeypatch):
    def build(seed):
        rng = random.Random(seed)
        fn = BlockingRateFunction(resolution=400)
        for _ in range(150):
            fn.observe(rng.randint(1, 400), rng.random() * 20)
            if rng.random() < 0.25:
                fn.decay_above(rng.randint(0, 400), 0.1)
        return fn.table()

    vector_tables = [build(seed) for seed in range(5)]
    monkeypatch.setattr(rate_function, "HAVE_NUMPY", False)
    monkeypatch.setattr(monotone, "HAVE_NUMPY", False)
    scalar_tables = [build(seed) for seed in range(5)]
    assert vector_tables == scalar_tables


# ---------------------------------------------------------- merge ordering


@pytest.mark.skipif(not HAVE_NUMPY, reason="compares numpy vs stdlib columns")
def test_merge_latency_accounting_identical_for_both_column_backends():
    # A block's borns column may be a numpy array or a stdlib array('d');
    # the merger converts via .tolist() before accumulating, so the
    # latency sums are bit-identical either way. Runs arrive out of
    # order so both the in-order fast path and the parked-run drain see
    # each column type.
    rng = random.Random(5)
    borns = [rng.random() for _ in range(64)]

    def run(column_factory):
        sim = Simulator()
        merger = OrderedMerger(sim)
        blocks = []
        start = 0
        for size in (16, 16, 16, 16):
            block = TupleBlock.uniform(start, size, 100.0)
            block.borns = column_factory(borns[start : start + size])
            blocks.append(block)
            start += size
        sim.call_at(1.0, lambda: merger.accept_runs(1, [blocks[1]]))
        sim.call_at(1.0, lambda: merger.accept_runs(0, [blocks[0]]))
        sim.call_at(2.0, lambda: merger.accept_runs(1, [blocks[3]]))
        sim.call_at(2.0, lambda: merger.accept_runs(0, [blocks[2]]))
        sim.run_until(3.0)
        assert merger.emitted == 64
        assert merger.next_seq == 64
        return merger.latency_seconds, merger.latency_count

    via_numpy = run(lambda xs: numpy.asarray(xs, dtype=numpy.float64))
    via_stdlib = run(lambda xs: array("d", xs))
    assert via_numpy == via_stdlib
