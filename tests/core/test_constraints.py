"""Unit tests for weight constraints."""

import pytest

from repro.core.constraints import WeightConstraints


class TestConstruction:
    def test_lengths_must_match(self):
        with pytest.raises(ValueError):
            WeightConstraints(minima=(0, 0), maxima=(5,))

    def test_negative_minimum_rejected(self):
        with pytest.raises(ValueError):
            WeightConstraints(minima=(-1,), maxima=(5,))

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError):
            WeightConstraints(minima=(6,), maxima=(5,))

    def test_len(self):
        assert len(WeightConstraints(minima=(0, 0), maxima=(1, 1))) == 2


class TestFactories:
    def test_unbounded(self):
        constraints = WeightConstraints.unbounded(3, 1000)
        assert constraints.minima == (0, 0, 0)
        assert constraints.maxima == (1000, 1000, 1000)

    def test_incremental_limits_movement(self):
        constraints = WeightConstraints.incremental(
            [300, 700], 1000, max_decrease=100, max_increase=50
        )
        assert constraints.minima == (200, 600)
        assert constraints.maxima == (350, 750)

    def test_incremental_unlimited_directions(self):
        constraints = WeightConstraints.incremental([300, 700], 1000)
        assert constraints.minima == (0, 0)
        assert constraints.maxima == (1000, 1000)

    def test_incremental_clamps_to_range(self):
        constraints = WeightConstraints.incremental(
            [10, 990], 1000, max_decrease=50, max_increase=50
        )
        assert constraints.minima == (0, 940)
        assert constraints.maxima == (60, 1000)

    def test_floor_applied(self):
        constraints = WeightConstraints.incremental(
            [300], 1000, max_decrease=1000, floor=5
        )
        assert constraints.minima == (5,)

    def test_floor_above_max_keeps_consistency(self):
        # A weight already below the floor with a tight increase bound:
        # minima must never exceed maxima.
        constraints = WeightConstraints.incremental(
            [2], 1000, max_increase=1, floor=10
        )
        assert constraints.minima[0] <= constraints.maxima[0]


class TestQueries:
    def test_feasible(self):
        constraints = WeightConstraints(minima=(0, 0), maxima=(6, 6))
        assert constraints.feasible(10)
        assert not constraints.feasible(13)
        assert WeightConstraints(minima=(6, 6), maxima=(9, 9)).feasible(12)
        assert not WeightConstraints(minima=(6, 6), maxima=(9, 9)).feasible(11)

    def test_clamp(self):
        constraints = WeightConstraints(minima=(2, 2), maxima=(5, 5))
        assert constraints.clamp([0, 9]) == [2, 5]
