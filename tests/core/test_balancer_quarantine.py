"""Unit tests for the balancer's quarantine/reintegration path."""

import pytest

from repro.core.balancer import BalancerConfig, LoadBalancer
from repro.core.rate_function import BlockingRateFunction


def primed_balancer(n=4, **config_kwargs):
    """A balancer with enough observations that solves are meaningful."""
    balancer = LoadBalancer(n, BalancerConfig(**config_kwargs))
    for j, fn in enumerate(balancer.functions):
        for w in (100, 250, 400):
            fn.observe(w, 0.001 * w * (j + 1))
    return balancer


class TestQuarantine:
    def test_quarantine_zeroes_the_channel(self):
        balancer = primed_balancer()
        weights = balancer.quarantine(2)
        assert weights[2] == 0
        assert sum(weights) == balancer.config.resolution
        assert balancer.quarantined == {2}

    def test_quarantine_bypasses_hysteresis(self):
        # Even with an extreme hysteresis gate the emergency re-solve moves.
        balancer = primed_balancer(hysteresis=0.99)
        weights = balancer.quarantine(0)
        assert weights[0] == 0

    def test_update_freezes_quarantined_channel(self):
        balancer = primed_balancer()
        balancer.quarantine(1)
        before = balancer.functions[1].table()
        balancer.update(1.0, [0.0, 0.0, 0.0, 0.0])
        weights = balancer.update(2.0, [0.5, 0.7, 0.2, 0.1])
        assert weights[1] == 0
        assert balancer.functions[1].table() == before

    def test_invalid_channel_rejected(self):
        balancer = primed_balancer()
        with pytest.raises(ValueError):
            balancer.quarantine(7)

    def test_last_channel_raises_but_is_recorded(self):
        balancer = primed_balancer(n=2)
        balancer.quarantine(0)
        with pytest.raises(RuntimeError, match="no capacity"):
            balancer.quarantine(1)
        assert balancer.quarantined == {0, 1}
        # Regular rounds must not explode while everything is out.
        assert balancer.update(1.0, [0.0, 0.0]) is None
        assert balancer.update(2.0, [0.0, 0.0]) is None
        # Reintegration recovers both.
        balancer.reintegrate(0)
        balancer.reintegrate(1)
        assert balancer.quarantined == set()


class TestReintegration:
    def test_reintegrate_lifts_quarantine_gradually(self):
        balancer = primed_balancer()
        balancer.quarantine(3)
        balancer.reintegrate(3)
        assert balancer.quarantined == set()
        # Reintegration itself moves no weight; later rounds ramp it.
        assert balancer.weights[3] == 0

    def test_reintegrate_decays_rate_function(self):
        balancer = primed_balancer()
        value_before = balancer.functions[0].value(250)
        balancer.quarantine(0)
        balancer.reintegrate(0, decay=0.5)
        assert balancer.functions[0].value(250) == pytest.approx(
            0.5 * value_before
        )

    def test_reintegrate_forget_drops_the_function(self):
        balancer = primed_balancer()
        balancer.quarantine(0)
        balancer.reintegrate(0, forget=True)
        # Only the zero-weight anchor point survives a forget.
        assert balancer.functions[0].observed_weights() == [0]

    def test_reintegrate_not_quarantined_is_a_noop(self):
        balancer = primed_balancer()
        value = balancer.functions[2].value(250)
        balancer.reintegrate(2)
        assert balancer.functions[2].value(250) == pytest.approx(value)


class TestDecayAll:
    def test_decay_all_scales_every_point(self):
        fn = BlockingRateFunction()
        fn.observe(100, 0.4)
        fn.observe(300, 0.8)
        fn.decay_all(0.25)
        assert fn.value(100) == pytest.approx(0.3)
        assert fn.value(300) == pytest.approx(0.6)

    def test_decay_all_keeps_observed_points(self):
        fn = BlockingRateFunction()
        fn.observe(100, 0.4)
        fn.decay_all(0.5)
        assert fn.observed_weights() == [0, 100]

    def test_decay_all_rejects_bad_fraction(self):
        fn = BlockingRateFunction()
        with pytest.raises(ValueError):
            fn.decay_all(1.5)

    def test_full_decay_zeroes_values(self):
        fn = BlockingRateFunction()
        fn.observe(200, 0.9)
        fn.decay_all(1.0)
        assert fn.value(200) == pytest.approx(0.0)
