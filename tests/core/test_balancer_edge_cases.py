"""Edge-case tests for the controller: solvers, bounds, clustering paths."""

import pytest

from repro.core.balancer import BalancerConfig, LoadBalancer


class TestSolverSelection:
    def test_binary_search_solver_produces_valid_weights(self):
        balancer = LoadBalancer(3, BalancerConfig(solver="binary-search"))
        balancer.update(0.0, [0.0, 0.0, 0.0])
        weights = balancer.update(1.0, [0.9, 0.1, 0.0])
        assert sum(weights) == 1000
        assert weights[0] < weights[2]

    def test_solvers_agree_on_identical_histories(self):
        counters = [
            [0.0, 0.0],
            [0.8, 0.0],
            [1.5, 0.1],
            [2.0, 0.4],
        ]
        results = {}
        for solver in ("fox", "binary-search"):
            balancer = LoadBalancer(2, BalancerConfig(solver=solver))
            for step, values in enumerate(counters):
                weights = balancer.update(float(step), list(values))
            results[solver] = weights
        # Identical inputs, exact solvers: the adopted weights agree in
        # the minimax objective (ties may pick different vectors).
        fox, binary = results["fox"], results["binary-search"]
        assert sum(fox) == sum(binary) == 1000


class TestBoundsInteraction:
    def test_weight_floor_keeps_everyone_probed(self):
        balancer = LoadBalancer(4, BalancerConfig(weight_floor=20))
        balancer.update(0.0, [0.0] * 4)
        counters = [0.0] * 4
        for step in range(1, 30):
            counters[0] += 0.9
            weights = balancer.update(float(step), list(counters))
        assert min(weights) >= 20

    def test_single_connection_degenerate(self):
        balancer = LoadBalancer(1)
        balancer.update(0.0, [0.0])
        weights = balancer.update(1.0, [0.7])
        assert weights == [1000]

    def test_symmetric_decrease_bound(self):
        balancer = LoadBalancer(
            2, BalancerConfig(max_decrease=30, max_increase=30, hysteresis=0.0)
        )
        balancer.update(0.0, [0.0, 0.0])
        weights = balancer.update(1.0, [0.9, 0.0])
        assert weights == [470, 530]


class TestClusteredEdgeCases:
    def test_clustering_single_connection(self):
        balancer = LoadBalancer(1, BalancerConfig(clustering=True))
        balancer.update(0.0, [0.0])
        assert balancer.update(1.0, [0.3]) == [1000]

    def test_clustered_with_movement_bounds(self):
        balancer = LoadBalancer(
            6,
            BalancerConfig(
                clustering=True, max_increase=40, max_decrease=40,
                hysteresis=0.0,
            ),
        )
        balancer.update(0.0, [0.0] * 6)
        counters = [0.0] * 6
        previous = balancer.weights
        for step in range(1, 12):
            counters[step % 3] += 0.4
            weights = balancer.update(float(step), list(counters))
            assert sum(weights) == 1000
            for old, new in zip(previous, weights):
                assert old - 40 <= new <= old + 40
            previous = weights

    def test_cluster_threshold_zero_keeps_singletons(self):
        balancer = LoadBalancer(
            3, BalancerConfig(clustering=True, cluster_threshold=0.0)
        )
        balancer.update(0.0, [0.0] * 3)
        balancer.update(1.0, [0.5, 0.5, 0.0])
        assert all(len(c) == 1 for c in balancer.last_clusters)


class TestHysteresisBehaviour:
    def test_zero_hysteresis_adopts_any_improvement(self):
        balancer = LoadBalancer(2, BalancerConfig(hysteresis=0.0))
        balancer.update(0.0, [0.0, 0.0])
        first = balancer.update(1.0, [0.2, 0.0])
        assert first != [500, 500]

    def test_rounds_counted(self):
        balancer = LoadBalancer(2)
        balancer.update(0.0, [0.0, 0.0])
        balancer.update(1.0, [0.1, 0.0])
        balancer.update(2.0, [0.2, 0.0])
        assert balancer.rounds == 2

    def test_last_rates_exposed(self):
        balancer = LoadBalancer(2, BalancerConfig(rate_alpha=1.0))
        balancer.update(0.0, [0.0, 0.0])
        balancer.update(1.0, [0.25, 0.0])
        assert balancer.last_rates == pytest.approx([0.25, 0.0])
