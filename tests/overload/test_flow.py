"""Unit tests for the merger->splitter flow-control gate."""

import pytest

from repro.overload.flow import FlowControlGate


class TestValidation:
    def test_high_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowControlGate(0, 0)

    def test_low_must_be_below_high(self):
        with pytest.raises(ValueError):
            FlowControlGate(10, 10)
        with pytest.raises(ValueError):
            FlowControlGate(10, -1)


class TestHysteresis:
    def test_pauses_at_high_resumes_at_low(self):
        gate = FlowControlGate(10, 3)
        gate.update(9)
        assert not gate.paused
        gate.update(10)
        assert gate.paused
        gate.update(4)  # above low: still paused
        assert gate.paused
        gate.update(3)
        assert not gate.paused
        assert gate.pauses == 1

    def test_edge_callbacks_fire_once_per_transition(self):
        gate = FlowControlGate(10, 3)
        events = []
        gate.on_pause = lambda: events.append("pause")
        gate.on_resume = lambda: events.append("resume")
        gate.update(15)
        gate.update(20)  # already paused: no second edge
        gate.update(2)
        gate.update(1)  # already resumed: no second edge
        assert events == ["pause", "resume"]

    def test_repeated_cycles_counted(self):
        gate = FlowControlGate(5, 1)
        for _ in range(3):
            gate.update(5)
            gate.update(0)
        assert gate.pauses == 3
        assert not gate.paused

    def test_no_callbacks_is_fine(self):
        gate = FlowControlGate(5, 1)
        gate.update(5)
        gate.update(0)
        assert gate.pauses == 1
