"""Unit tests for the overload manager's wiring and lifecycle."""

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.overload import OverloadConfig, OverloadManager
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import RatedSource, constant_cost


def make_region(sim, *, protection=True, n=2):
    host = Host("h", cores=8, thread_speed=1000.0)
    source = RatedSource(10.0, constant_cost(100.0))
    region = ParallelRegion(
        sim,
        source,
        RoundRobinPolicy(n),
        Placement.single_host(n, host),
        params=RegionParams(overload_protection=protection),
    )
    return region, source


class TestConstruction:
    def test_requires_overload_protection(self):
        sim = Simulator()
        region, source = make_region(sim, protection=False)
        with pytest.raises(ValueError):
            OverloadManager(sim, region, source=source)

    def test_gate_wired_to_merger_and_splitter(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        assert region.merger._flow_gate is mgr.gate
        assert region.splitter._flow_gate is mgr.gate
        assert mgr.gate.high == mgr.config.pending_high
        assert mgr.gate.low == mgr.config.pending_low

    def test_admission_installed_on_source(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        assert source.admission is mgr.admission
        assert mgr.admission is not None
        assert mgr.admission.detector is mgr.detector

    def test_shedding_none_installs_no_admission(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(
            sim, region, source=source, config=OverloadConfig(shedding="none")
        )
        assert mgr.admission is None
        assert source.admission is None

    def test_no_source_means_flow_control_only(self):
        sim = Simulator()
        region, _ = make_region(sim)
        mgr = OverloadManager(sim, region)
        assert mgr.admission is None
        assert mgr.tuples_offered == 0
        assert mgr.tuples_shed == 0
        assert mgr.shed_ratio() == 0.0


class TestLifecycle:
    def test_start_twice_raises(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        mgr.start()
        with pytest.raises(RuntimeError):
            mgr.start()

    def test_stop_then_restart(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        mgr.start()
        mgr.stop()
        mgr.start()

    def test_periodic_check_feeds_detector(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        source.arm(sim)  # arrivals queue up; nothing consumes them
        mgr.start()
        sim.run_until(2.0)
        # 10 tuples/s for 2 s with nobody pulling: the detector saw them.
        assert mgr.detector.last_backlog > 0

    def test_stop_cancels_checks(self):
        sim = Simulator()
        region, source = make_region(sim)
        mgr = OverloadManager(sim, region, source=source)
        source.arm(sim)
        mgr.start()
        sim.run_until(1.0)
        mgr.stop()
        seen = mgr.detector.last_backlog
        sim.run_until(3.0)
        assert mgr.detector.last_backlog == seen
