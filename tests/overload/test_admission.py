"""Unit tests for the shedding policies and the admission controller."""

import pytest

from repro.overload.admission import (
    AdmissionController,
    DropTailShedding,
    PriorityShedding,
    ProbabilisticShedding,
    SheddingPolicy,
    build_shedding_policy,
)
from repro.overload.detector import OverloadConfig, OverloadDetector


class TestDropTail:
    def test_admits_below_cap_sheds_at_cap(self):
        policy = DropTailShedding(4)
        assert policy.admit(0, backlog=3, pressure=1.0)
        assert not policy.admit(1, backlog=4, pressure=0.0)

    def test_ignores_pressure(self):
        policy = DropTailShedding(10)
        assert policy.admit(0, backlog=0, pressure=1.0)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailShedding(0)


class TestProbabilistic:
    def test_zero_pressure_admits_everything(self):
        policy = ProbabilisticShedding(seed=1)
        assert all(policy.admit(i, 0, 0.0) for i in range(100))

    def test_full_pressure_sheds_everything(self):
        policy = ProbabilisticShedding(seed=1)
        assert not any(policy.admit(i, 0, 1.0) for i in range(100))

    def test_sheds_roughly_the_pressure_fraction(self):
        policy = ProbabilisticShedding(seed=7)
        n = 5000
        admitted = sum(policy.admit(i, 0, 0.3) for i in range(n))
        assert 0.65 * n < admitted < 0.75 * n

    def test_same_seed_same_decisions(self):
        a = ProbabilisticShedding(seed=42)
        b = ProbabilisticShedding(seed=42)
        decisions_a = [a.admit(i, 0, 0.5) for i in range(200)]
        decisions_b = [b.admit(i, 0, 0.5) for i in range(200)]
        assert decisions_a == decisions_b


class TestPriority:
    def test_zero_pressure_admits_everything(self):
        policy = PriorityShedding()
        assert all(policy.admit(i, 0, 0.0) for i in range(100))

    def test_deterministic_per_index(self):
        policy = PriorityShedding()
        first = [policy.admit(i, 0, 0.4) for i in range(100)]
        second = [policy.admit(i, 0, 0.4) for i in range(100)]
        assert first == second

    def test_admits_the_top_band(self):
        policy = PriorityShedding()
        n = 5000
        admitted = sum(policy.admit(i, 0, 0.7) for i in range(n))
        # Hashed priorities are ~uniform: ~30% should survive p=0.7.
        assert 0.25 * n < admitted < 0.35 * n

    def test_custom_priority_fn(self):
        # Even indices are critical, odd ones are best-effort.
        policy = PriorityShedding(lambda i: 1.0 if i % 2 == 0 else 0.0)
        assert policy.admit(0, 0, 0.9)
        assert not policy.admit(1, 0, 0.9)


class TestAdmissionController:
    def test_tallies_and_ratio(self):
        ctl = AdmissionController(DropTailShedding(2))
        assert ctl.offer(0, backlog=0)
        assert ctl.offer(1, backlog=1)
        assert not ctl.offer(2, backlog=2)
        assert (ctl.offered, ctl.admitted, ctl.shed) == (3, 2, 1)
        assert ctl.shed_ratio() == pytest.approx(1 / 3)

    def test_ratio_zero_before_any_offer(self):
        ctl = AdmissionController(DropTailShedding(2))
        assert ctl.shed_ratio() == 0.0

    def test_without_detector_pressure_is_zero(self):
        ctl = AdmissionController(ProbabilisticShedding(seed=0))
        assert all(ctl.offer(i, backlog=10**6) for i in range(50))

    def test_detector_pressure_drives_shedding(self):
        det = OverloadDetector(OverloadConfig(trip_confirmations=1))
        det.observe(1.0, backlog=det.config.queue_high, pending=0)
        assert det.overloaded
        ctl = AdmissionController(ProbabilisticShedding(seed=0), det)
        huge = det.config.queue_high * 10  # pressure 1.0
        assert not ctl.offer(0, backlog=huge)
        assert ctl.shed == 1


class TestBuildPolicy:
    def test_none_disables_shedding(self):
        assert build_shedding_policy(OverloadConfig(shedding="none")) is None

    @pytest.mark.parametrize(
        "kind, cls",
        [
            ("drop-tail", DropTailShedding),
            ("probabilistic", ProbabilisticShedding),
            ("priority", PriorityShedding),
        ],
    )
    def test_kind_maps_to_class(self, kind, cls):
        policy = build_shedding_policy(OverloadConfig(shedding=kind))
        assert isinstance(policy, cls)
        assert isinstance(policy, SheddingPolicy)

    def test_drop_tail_inherits_queue_limit(self):
        policy = build_shedding_policy(
            OverloadConfig(shedding="drop-tail", queue_limit=77)
        )
        assert policy.queue_limit == 77
