"""Integration: the overload scenario's acceptance criteria.

A region offered 2x its capacity must, with protection on, keep the
input queue and the merger's reordering buffer bounded near their
watermarks, report the shed ratio, and keep admitted-tuple latency
bounded — while the unprotected twin's input queue (and with it the
latency of everything in it) grows without bound for the whole run.
"""

import pytest

from repro.experiments.config import overload_scenario
from repro.experiments.runner import run_experiment


@pytest.fixture(scope="module")
def protected():
    return run_experiment(
        overload_scenario(duration=60.0), "lb-adaptive"
    )


@pytest.fixture(scope="module")
def unprotected():
    return run_experiment(
        overload_scenario(duration=60.0, protection=False), "lb-adaptive"
    )


class TestProtectedRun:
    def test_sheds_about_the_excess(self, protected):
        # 2x overload: roughly half the offered load must go.
        assert 0.3 < protected.shed_ratio() < 0.7
        assert protected.tuples_shed > 0
        assert protected.tuples_offered > 0

    def test_input_queue_bounded_near_watermark(self, protected):
        cfg = overload_scenario(duration=60.0)
        assert protected.max_input_queue < 2 * cfg.overload.queue_high

    def test_merger_pending_bounded_by_flow_control(self, protected):
        cfg = overload_scenario(duration=60.0)
        # The gate pauses at pending_high; in-flight tuples already past
        # the splitter can still land, hence the slack.
        assert protected.max_merger_pending <= cfg.overload.pending_high + 64

    def test_detector_tripped_and_stayed_tripped(self, protected):
        assert protected.overload_trips >= 1
        assert protected.overload_seconds > 30.0

    def test_p99_latency_bounded(self, protected):
        values = [v for _, v in protected.p99_latency_series]
        assert values, "expected p99 samples under overload protection"
        assert max(values) < 15.0

    def test_flow_control_engaged(self, protected):
        assert protected.flow_pauses >= 1
        assert protected.flow_paused_seconds > 0.0


class TestUnprotectedRun:
    def test_nothing_shed(self, unprotected):
        assert unprotected.tuples_shed == 0
        assert unprotected.shed_ratio() == 0.0

    def test_input_queue_grows_without_bound(self, unprotected):
        cfg = overload_scenario(duration=60.0)
        assert unprotected.max_input_queue > 4 * cfg.overload.queue_high
        tail = [v for _, v in unprotected.queue_series][-10:]
        assert tail == sorted(tail), "backlog should grow monotonically"

    def test_protection_wins_on_memory(self, protected, unprotected):
        assert protected.max_input_queue < unprotected.max_input_queue / 4


class TestDeterminism:
    def test_same_config_same_shed_count(self):
        a = run_experiment(overload_scenario(duration=20.0), "lb-adaptive")
        b = run_experiment(overload_scenario(duration=20.0), "lb-adaptive")
        assert a.tuples_shed == b.tuples_shed
        assert a.tuples_offered == b.tuples_offered
        assert a.emitted == b.emitted


class TestSheddingVariants:
    @pytest.mark.parametrize("shedding", ["drop-tail", "priority"])
    def test_other_policies_also_bound_the_queue(self, shedding):
        cfg = overload_scenario(duration=40.0, shedding=shedding)
        result = run_experiment(cfg, "lb-adaptive")
        assert result.tuples_shed > 0
        limit = max(2 * cfg.overload.queue_high, cfg.overload.queue_limit + 8)
        assert result.max_input_queue <= limit


class TestOverloadBurst:
    def test_burst_scales_offered_rate_then_restores(self):
        cfg = overload_scenario(
            duration=60.0,
            overload_factor=0.5,  # half capacity at baseline
            burst=(20.0, 4.0, 20.0),  # 2x capacity for the middle third
        )
        result = run_experiment(cfg, "lb-adaptive")
        # Shedding happens only during the burst window.
        assert result.tuples_shed > 0
        assert result.overload_trips >= 1
        values = dict(result.queue_series)
        calm = [v for t, v in values.items() if t < 15.0]
        assert max(calm, default=0.0) < cfg.overload.queue_high
