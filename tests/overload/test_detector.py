"""Unit tests for the overload detector and its config."""

import pytest

from repro.overload.detector import OverloadConfig, OverloadDetector


def small_config(**overrides):
    """A config with tiny confirmation streaks for terse tests."""
    overrides.setdefault("trip_confirmations", 2)
    overrides.setdefault("clear_confirmations", 2)
    return OverloadConfig(**overrides)


class TestOverloadConfig:
    def test_defaults_valid(self):
        OverloadConfig()

    def test_unknown_shedding_rejected(self):
        with pytest.raises(ValueError):
            OverloadConfig(shedding="random-early")

    def test_queue_watermarks_ordered(self):
        with pytest.raises(ValueError):
            OverloadConfig(queue_high=64, queue_low=64)

    def test_pending_watermarks_ordered(self):
        with pytest.raises(ValueError):
            OverloadConfig(pending_high=10, pending_low=20)

    def test_check_interval_positive(self):
        with pytest.raises(ValueError):
            OverloadConfig(check_interval=0.0)

    def test_saturation_threshold_is_fraction(self):
        with pytest.raises(ValueError):
            OverloadConfig(saturation_threshold=1.5)

    def test_confirmations_positive(self):
        with pytest.raises(ValueError):
            OverloadConfig(trip_confirmations=0)
        with pytest.raises(ValueError):
            OverloadConfig(clear_confirmations=0)


class TestTripHysteresis:
    def test_trips_only_after_confirmation_streak(self):
        det = OverloadDetector(small_config(trip_confirmations=3))
        high = det.config.pending_high
        assert not det.observe(1.0, backlog=0, pending=high)
        assert not det.observe(2.0, backlog=0, pending=high)
        assert det.observe(3.0, backlog=0, pending=high)
        assert det.trips == 1

    def test_single_healthy_check_resets_trip_streak(self):
        det = OverloadDetector(small_config(trip_confirmations=2))
        high = det.config.pending_high
        assert not det.observe(1.0, backlog=0, pending=high)
        assert not det.observe(2.0, backlog=0, pending=0)
        assert not det.observe(3.0, backlog=0, pending=high)
        # The streak restarted at the third check; one more trips.
        assert det.observe(4.0, backlog=0, pending=high)

    def test_growing_backlog_above_watermark_trips(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        assert det.observe(1.0, backlog=det.config.queue_high + 100, pending=0)

    def test_high_but_shrinking_backlog_does_not_trip(self):
        # A shrinking backlog above the watermark is draining, not growing.
        det = OverloadDetector(small_config(trip_confirmations=1))
        q = det.config.queue_high
        det.last_backlog = q + 200
        assert not det.observe(1.0, backlog=q + 100, pending=0)

    def test_all_channels_saturated_trips(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        # Counters advancing at ~1 s blocked per second on every channel.
        det.observe(1.0, backlog=0, pending=0, counters=[0.0, 0.0])
        assert det.observe(2.0, backlog=0, pending=0, counters=[0.95, 0.99])

    def test_one_unsaturated_channel_is_imbalance_not_overload(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        det.observe(1.0, backlog=0, pending=0, counters=[0.0, 0.0])
        assert not det.observe(
            2.0, backlog=0, pending=0, counters=[0.99, 0.01]
        )


class TestClearHysteresis:
    def tripped(self, **overrides):
        det = OverloadDetector(small_config(**overrides))
        high = det.config.pending_high
        for i in range(det.config.trip_confirmations):
            det.observe(float(i + 1), backlog=0, pending=high)
        assert det.overloaded
        return det

    def test_clears_only_after_healthy_streak(self):
        det = self.tripped(clear_confirmations=3)
        t = 10.0
        assert det.observe(t, backlog=0, pending=0)
        assert det.observe(t + 1, backlog=0, pending=0)
        assert not det.observe(t + 2, backlog=0, pending=0)

    def test_middle_zone_resets_clear_streak(self):
        det = self.tripped(clear_confirmations=2)
        mid = det.config.queue_low + 1  # above low, below high: not healthy
        assert det.observe(10.0, backlog=0, pending=0)
        assert det.observe(11.0, backlog=mid, pending=0)
        assert det.observe(12.0, backlog=0, pending=0)
        assert not det.observe(13.0, backlog=0, pending=0)

    def test_overloaded_seconds_accumulate_while_tripped(self):
        det = self.tripped(clear_confirmations=2)
        start = det.overloaded_seconds
        high = det.config.pending_high
        base = 10.0
        for i in range(4):
            det.observe(base + i, backlog=0, pending=high)
        assert det.overloaded_seconds == pytest.approx(start + 3.0 + 8.0)
        # (8.0 covers the gap between the trip at t=2 and t=10.)


class TestPressure:
    def test_zero_while_healthy(self):
        det = OverloadDetector(small_config())
        det.observe(1.0, backlog=10_000, pending=0)
        assert det.pressure() == 0.0

    def test_tracks_worst_fraction_when_overloaded(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        cfg = det.config
        det.observe(1.0, backlog=cfg.queue_high, pending=cfg.pending_high)
        assert det.overloaded
        det.observe(2.0, backlog=cfg.queue_high // 2, pending=0)
        assert det.pressure() == pytest.approx(0.5)

    def test_explicit_backlog_overrides_last_sample(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        cfg = det.config
        det.observe(1.0, backlog=cfg.queue_high, pending=0)
        assert det.pressure(backlog=cfg.queue_high // 4) == pytest.approx(0.25)

    def test_capped_at_one(self):
        det = OverloadDetector(small_config(trip_confirmations=1))
        cfg = det.config
        det.observe(1.0, backlog=cfg.queue_high * 10, pending=0)
        assert det.pressure() == 1.0
