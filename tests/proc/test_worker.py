"""In-process tests of the worker loop against a stub parent socket.

``WorkerMain.run()`` installs a SIGTERM handler, which is only legal on
the main thread — so the worker runs on the test's main thread and the
parent side (accept, send DATA/CONTROL/EOS, collect RESULT/BYE) runs on
a helper thread.
"""

import socket
import threading

import pytest

from repro.net import framing
from repro.proc.worker import WorkerMain, build_parser

pytestmark = pytest.mark.sockets


class ParentStub:
    """Accepts one worker connection, plays a script, records replies."""

    def __init__(self):
        self.server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.server.bind(("127.0.0.1", 0))
        self.server.listen(1)
        self.port = self.server.getsockname()[1]
        self.messages = []
        self.thread = None

    def start(self, script):
        def serve():
            conn, _ = self.server.accept()
            conn.settimeout(5.0)
            try:
                script(conn)
                assembler = framing.MessageAssembler()
                while True:
                    try:
                        chunk = conn.recv(65536)
                    except OSError:
                        return
                    if not chunk:
                        return
                    for message in assembler.feed(chunk):
                        self.messages.append(message)
                        if message.type == framing.MSG_BYE:
                            return
            finally:
                conn.close()

        self.thread = threading.Thread(target=serve, daemon=True)
        self.thread.start()

    def finish(self):
        self.thread.join(timeout=5.0)
        assert not self.thread.is_alive(), "parent stub never finished"
        self.server.close()

    def of_type(self, msg_type):
        return [m for m in self.messages if m.type == msg_type]


def make_worker(port, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.05)
    return WorkerMain("127.0.0.1", port, 3, 2, **kwargs)


class TestWorkerLoop:
    def test_hello_data_results_then_bye(self):
        parent = ParentStub()

        def script(conn):
            conn.sendall(framing.encode_data(10, 0.0, b"alpha"))
            conn.sendall(framing.encode_data(11, 0.0, b"beta"))
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()

        hello = parent.of_type(framing.MSG_HELLO)
        assert [m.hello() for m in hello] == [(3, 2)]
        results = parent.of_type(framing.MSG_RESULT)
        assert [(m.result()[0], m.result()[2]) for m in results] == [
            (10, b"alpha"),
            (11, b"beta"),
        ]
        bye = parent.of_type(framing.MSG_BYE)
        assert [m.bye() for m in bye] == [2]

    def test_control_frame_updates_multiplier(self):
        parent = ParentStub()

        def script(conn):
            conn.sendall(framing.encode_control(2.5))
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()
        assert worker.control_multiplier == 2.5

    def test_exit_after_dies_with_exit_code_mid_stream(self):
        parent = ParentStub()

        def script(conn):
            for seq in range(5):
                conn.sendall(framing.encode_data(seq, 0.0, b""))
            # No EOS: the worker must die on its own after 2 tuples.

        parent.start(script)
        worker = make_worker(parent.port, exit_after=2, exit_code=17)
        assert worker.run() == 17
        parent.finish()
        assert worker.processed == 2
        assert len(parent.of_type(framing.MSG_RESULT)) == 2
        assert parent.of_type(framing.MSG_BYE) == []

    def test_parent_eof_exits_quietly(self):
        parent = ParentStub()

        def script(conn):
            # Read the HELLO then hang up without EOS: the region died.
            assembler = framing.MessageAssembler()
            while not assembler.feed(conn.recv(65536)):
                pass
            conn.shutdown(socket.SHUT_RDWR)

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()

    def test_heartbeats_carry_incarnation_and_progress(self):
        parent = ParentStub()
        release = threading.Event()

        def script(conn):
            conn.sendall(framing.encode_data(0, 0.0, b""))
            release.wait(timeout=5.0)
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port, heartbeat_interval=0.02)
        # Let the worker idle long enough to emit several heartbeats.
        timer = threading.Timer(0.2, release.set)
        timer.start()
        assert worker.run() == 0
        parent.finish()
        beats = [m.heartbeat() for m in parent.of_type(framing.MSG_HEARTBEAT)]
        assert len(beats) >= 3
        assert all(incarnation == 2 for _, incarnation in beats)
        # Later heartbeats reflect the tuple processed early on.
        assert beats[-1][0] == 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            WorkerMain("127.0.0.1", 1, 0, 0, mode="warp")

    def test_connect_socket_has_nodelay(self):
        parent = ParentStub()

        def script(conn):
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()
        assert worker.nodelay_enabled is True


class TestWorkerBatchedWire:
    """DATA_BATCH runs in, one cumulative RESULT_BATCH ack out."""

    def test_batch_acked_with_single_cumulative_result_batch(self):
        parent = ParentStub()
        entries = [(seq, 0.0, b"b%d" % seq) for seq in range(10, 22)]

        def script(conn):
            conn.sendall(framing.encode_data_batch(entries))
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()

        # No per-tuple RESULT frames at all — the run acks as one batch.
        assert parent.of_type(framing.MSG_RESULT) == []
        batches = parent.of_type(framing.MSG_RESULT_BATCH)
        assert len(batches) == 1
        acked = batches[0].result_batch()
        assert [(seq, body) for seq, _, body in acked] == [
            (seq, body) for seq, _, body in entries
        ]
        assert worker.processed == len(entries)

    def test_plain_data_still_acked_per_tuple(self):
        # A mixed stream: plain DATA keeps the old per-tuple wire while
        # batched runs ack cumulatively — B=1 compatibility in one loop.
        parent = ParentStub()

        def script(conn):
            conn.sendall(framing.encode_data(0, 0.0, b"plain"))
            conn.sendall(
                framing.encode_data_batch([(1, 0.0, b"x"), (2, 0.0, b"y")])
            )
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port)
        assert worker.run() == 0
        parent.finish()

        results = parent.of_type(framing.MSG_RESULT)
        assert [m.result()[0] for m in results] == [0]
        batches = parent.of_type(framing.MSG_RESULT_BATCH)
        assert [
            seq for b in batches for seq, _, _ in b.result_batch()
        ] == [1, 2]

    def test_heartbeats_not_starved_behind_large_batch(self):
        # 40 tuples x ~5ms against a 20ms heartbeat interval: the worker
        # must interleave beats with the run, not go silent for 200ms.
        parent = ParentStub()
        entries = [(seq, 0.005, b"") for seq in range(40)]

        def script(conn):
            conn.sendall(framing.encode_data_batch(entries))
            conn.sendall(framing.encode_eos())

        parent.start(script)
        worker = make_worker(parent.port, heartbeat_interval=0.02)
        assert worker.run() == 0
        parent.finish()

        beats = parent.of_type(framing.MSG_HEARTBEAT)
        assert len(beats) >= 3, (
            f"only {len(beats)} heartbeats during a ~200ms batched run"
        )
        # Every tuple still acked exactly once across the partial
        # flushes the heartbeat deadline forced.
        acked = [
            seq
            for b in parent.of_type(framing.MSG_RESULT_BATCH)
            for seq, _, _ in b.result_batch()
        ]
        assert sorted(acked) == list(range(40))
        assert len(parent.of_type(framing.MSG_RESULT_BATCH)) > 1

    def test_crash_mid_batch_leaves_pending_acks_unsent(self):
        # The exit_after crash stand-in dies WITHOUT flushing: the seqs
        # it serviced but never acked stay in the parent's retransmit
        # buffer — exactly what replay-on-death needs.
        parent = ParentStub()
        entries = [(seq, 0.0, b"") for seq in range(6)]

        def script(conn):
            conn.sendall(framing.encode_data_batch(entries))
            # No EOS: the worker dies on its own mid-run.

        parent.start(script)
        worker = make_worker(parent.port, exit_after=3, exit_code=9)
        assert worker.run() == 9
        parent.finish()
        assert worker.processed == 3
        assert parent.of_type(framing.MSG_RESULT_BATCH) == []
        assert parent.of_type(framing.MSG_RESULT) == []
        assert parent.of_type(framing.MSG_BYE) == []


class TestArgumentParser:
    def test_defaults(self):
        args = build_parser().parse_args(
            ["--port", "1234", "--worker-id", "0"]
        )
        assert args.host == "127.0.0.1"
        assert args.incarnation == 0
        assert args.multiplier == 1.0
        assert args.mode == "sleep"
        assert args.exit_after is None

    def test_exit_after_knob(self):
        args = build_parser().parse_args(
            ["--port", "1", "--worker-id", "2", "--exit-after", "5",
             "--exit-code", "9"]
        )
        assert args.exit_after == 5
        assert args.exit_code == 9
