"""Unit tests for the supervisor's state machine, without any dataplane.

The supervisor's process-management logic — idempotent death handling,
capped jittered backoff, the restart-budget circuit breaker, stale
incarnation rejection — is exercised against a recording listener and a
controllable clock. No sockets, no subprocesses: ``_spawn`` is stubbed
so each "process" is just an incarnation bump.
"""

import threading

import pytest

from repro.proc.supervisor import (
    DOWN,
    QUARANTINED,
    STARTING,
    UP,
    Supervisor,
    SupervisorConfig,
    WorkerSlot,
)


class RecordingListener:
    def __init__(self):
        self.downs = []
        self.ups = []
        self.quarantined = []

    def on_slot_down(self, slot, reason):
        self.downs.append((slot.index, reason))

    def on_slot_up(self, slot):
        self.ups.append(slot.index)

    def on_slot_quarantined(self, slot):
        self.quarantined.append(slot.index)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_supervisor(n=2, **config_overrides):
    settings = {
        "backoff_start": 0.1,
        "backoff_max": 1.0,
        "backoff_jitter": 0.0,  # deterministic backoff for assertions
        "restart_budget": 3,
        "restart_window": 100.0,
    }
    settings.update(config_overrides)
    config = SupervisorConfig(**settings)
    clock = FakeClock()
    listener = RecordingListener()
    slots = [WorkerSlot(index=j) for j in range(n)]
    supervisor = Supervisor(
        slots,
        port=1,
        listener=listener,
        lock=threading.RLock(),
        clock=clock,
        config=config,
    )
    # No real processes in these tests: a spawn is an incarnation bump.
    spawns = []

    def fake_spawn(slot):
        slot.incarnation += 1
        if slot.incarnation > 0:
            slot.restarts += 1
            slot.restart_times.append(clock())
        slot.process = None
        slot.state = STARTING
        slot.spawned_at = clock()
        spawns.append((slot.index, slot.incarnation))

    supervisor._spawn = fake_spawn
    supervisor.spawns = spawns
    return supervisor, clock, listener


class TestDeclareDead:
    def test_first_death_schedules_backoff_restart(self):
        supervisor, clock, listener = make_supervisor()
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        supervisor.on_connected(0, 0)
        clock.now = 5.0
        assert supervisor.declare_dead(0, "kill test")
        assert slot.state == DOWN
        assert slot.restart_at == pytest.approx(5.1)  # backoff_start
        assert listener.downs == [(0, "kill test")]
        assert len(supervisor.episodes) == 1

    def test_death_is_idempotent_per_incarnation(self):
        supervisor, clock, listener = make_supervisor()
        supervisor._spawn(supervisor.slots[0])
        supervisor.on_connected(0, 0)
        assert supervisor.declare_dead(0, "first")
        assert not supervisor.declare_dead(0, "second caller loses")
        assert len(listener.downs) == 1
        assert len(supervisor.episodes) == 1

    def test_stale_incarnation_is_rejected(self):
        supervisor, clock, listener = make_supervisor()
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        supervisor.on_connected(0, 0)
        # A receiver thread for incarnation 0 reports after incarnation 1
        # spawned: its death claim is stale and must be ignored.
        supervisor.declare_dead(0, "real death")
        supervisor._spawn(slot)
        supervisor.on_connected(0, 1)
        assert not supervisor.declare_dead(0, "ghost", incarnation=0)
        assert slot.state == UP

    def test_backoff_doubles_up_to_cap(self):
        supervisor, clock, listener = make_supervisor(restart_budget=100)
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        delays = []
        for _ in range(6):
            supervisor.on_connected(0, slot.incarnation)
            # Reconnection resets consecutive_failures; simulate a
            # crash-loop by never reconnecting between deaths instead.
            break
        supervisor.on_connected(0, slot.incarnation)
        for round_no in range(6):
            clock.now += 10.0
            # Each death is followed by a respawn but no reconnect, so
            # consecutive_failures keeps growing.
            if slot.state != UP and round_no > 0:
                slot.state = UP  # pretend the monitor saw it STARTING->UP
            supervisor.declare_dead(0, f"death {round_no}")
            delays.append(slot.restart_at - clock.now)
            supervisor._spawn(slot)
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0, 1.0])

    def test_reconnect_resets_consecutive_failures(self):
        supervisor, clock, listener = make_supervisor(restart_budget=100)
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        supervisor.on_connected(0, 0)
        supervisor.declare_dead(0, "one")
        supervisor._spawn(slot)
        supervisor.on_connected(0, slot.incarnation)
        assert slot.consecutive_failures == 0
        clock.now = 50.0
        supervisor.declare_dead(0, "two")
        # Back to the initial backoff, not the doubled one.
        assert slot.restart_at - clock.now == pytest.approx(0.1)


class TestCircuitBreaker:
    def test_budget_exhaustion_quarantines(self):
        supervisor, clock, listener = make_supervisor(restart_budget=3)
        slot = supervisor.slots[0]
        supervisor._spawn(slot)  # initial spawn: not a restart
        for i in range(10):
            supervisor.on_connected(0, slot.incarnation)
            clock.now += 1.0
            supervisor.declare_dead(0, f"crash {i}")
            if slot.state == QUARANTINED:
                break
            supervisor._spawn(slot)
        assert slot.state == QUARANTINED
        # 3 restarts spent the budget; the 4th death trips the breaker.
        assert slot.restarts == 3
        assert listener.quarantined == [0]
        assert supervisor.quarantined == [0]

    def test_old_restarts_age_out_of_the_window(self):
        supervisor, clock, listener = make_supervisor(
            restart_budget=2, restart_window=10.0
        )
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        for _ in range(2):
            supervisor.on_connected(0, slot.incarnation)
            clock.now += 1.0
            supervisor.declare_dead(0, "early crash")
            supervisor._spawn(slot)
        # Both restarts are inside the window; one more death would
        # quarantine. But far in the future they have aged out:
        clock.now += 1000.0
        supervisor.on_connected(0, slot.incarnation)
        supervisor.declare_dead(0, "much later crash")
        assert slot.state == DOWN  # restarted, not quarantined
        assert listener.quarantined == []

    def test_quarantined_slot_rejects_reconnection(self):
        supervisor, clock, listener = make_supervisor(restart_budget=1)
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        supervisor.on_connected(0, 0)
        supervisor.declare_dead(0, "crash 0")
        supervisor._spawn(slot)
        supervisor.on_connected(0, slot.incarnation)
        supervisor.declare_dead(0, "crash 1")
        assert slot.state == QUARANTINED
        assert not supervisor.on_connected(0, slot.incarnation)


class TestEpisodes:
    def test_note_fault_anchors_time_to_quarantine(self):
        supervisor, clock, listener = make_supervisor()
        supervisor._spawn(supervisor.slots[0])
        supervisor.on_connected(0, 0)
        clock.now = 10.0
        supervisor.note_fault(0)
        clock.now = 10.25
        supervisor.declare_dead(0, "injected kill")
        assert supervisor.first_time_to_quarantine() == pytest.approx(0.25)

    def test_reconnection_closes_the_episode(self):
        supervisor, clock, listener = make_supervisor()
        slot = supervisor.slots[0]
        supervisor._spawn(slot)
        supervisor.on_connected(0, 0)
        clock.now = 10.0
        supervisor.declare_dead(0, "kill")
        supervisor._spawn(slot)
        clock.now = 12.5
        supervisor.on_connected(0, slot.incarnation)
        assert supervisor.first_time_to_reconverge() == pytest.approx(2.5)
        assert listener.ups == [0, 0]

    def test_unanchored_episode_has_no_ttq(self):
        supervisor, clock, listener = make_supervisor()
        supervisor._spawn(supervisor.slots[0])
        supervisor.on_connected(0, 0)
        supervisor.declare_dead(0, "spontaneous death")
        assert supervisor.first_time_to_quarantine() is None


class TestConfigValidation:
    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            SupervisorConfig(backoff_jitter=1.5)

    def test_rejects_unknown_worker_mode(self):
        with pytest.raises(ValueError, match="worker_mode"):
            SupervisorConfig(worker_mode="warp")

    def test_rejects_empty_slots(self):
        with pytest.raises(ValueError, match="at least one"):
            Supervisor(
                [],
                port=1,
                listener=RecordingListener(),
                lock=threading.RLock(),
                clock=FakeClock(),
            )
