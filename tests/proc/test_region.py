"""Integration tests for the multi-process dataplane.

Every test here spawns real worker processes and kills some of them with
real signals. They are the acceptance tests for the process backend:

* ordered, gap-free, exactly-once output on the happy path;
* a deterministic SIGKILL mid-batch with recovery (retransmit replay,
  supervised restart, ttq/ttr episodes, detection/quarantine/restart
  spans in the observability export);
* SIGSTOP detected via missed heartbeats on the data channel;
* a crash-looping worker tripping the restart-budget circuit breaker
  while the survivors still finish the run;
* repeated SIGKILLs (the CI ``process-chaos`` job's smoke case).

Everything is bounded by internal deadlines (``drain(timeout=...)``), so
a hung dataplane fails the assertion instead of hanging pytest.
"""

import os
import signal
import time

import pytest

from repro.faults.schedule import FaultSchedule
from repro.obs.hub import ObservabilityConfig, ObservabilityHub
from repro.proc.faults import RealFaultDriver
from repro.proc.region import ProcessRegion
from repro.proc.supervisor import (
    QUARANTINED,
    STARTING,
    UP,
    SupervisorConfig,
)

pytestmark = pytest.mark.sockets

# Fast supervision for tests: tight heartbeats, quick restarts.
FAST = SupervisorConfig(
    heartbeat_interval=0.02,
    heartbeat_timeout=0.25,
    monitor_interval=0.01,
    backoff_start=0.02,
    backoff_max=0.1,
    restart_budget=5,
    restart_window=30.0,
)


def run_region(region, costs, *, bodies=None, timeout=30.0, schedule=None):
    """Run ``region`` to completion with an optional real-fault schedule."""
    driver = None
    outputs = None
    try:
        region.start()
        if schedule is not None:
            driver = RealFaultDriver(region, poll_interval=0.002)
            schedule.arm_real(driver)
            driver.start()
        stats = region.run(costs, bodies=bodies, timeout=timeout)
        outputs = list(region.outputs)
    finally:
        if driver is not None:
            driver.stop()
        region.close()
    return stats, outputs


def expect_ordered(outputs, n, make_body=None):
    """Assert gap-free, duplicate-free, ordered output of ``n`` tuples."""
    assert [seq for seq, _ in outputs] == list(range(n))
    if make_body is not None:
        assert [body for _, body in outputs] == [make_body(i) for i in range(n)]


class TestHappyPath:
    def test_ordered_gap_free_output(self):
        region = ProcessRegion(3, supervisor_config=FAST, window=16)
        n = 120
        stats, outputs = run_region(
            region,
            [0.0005] * n,
            bodies=[b"t%d" % i for i in range(n)],
        )
        expect_ordered(outputs, n, lambda i: b"t%d" % i)
        assert stats.results == n
        assert stats.restarts == 0
        assert stats.quarantined == []
        assert stats.duplicates_dropped == 0
        assert sum(stats.per_worker_results) == n

    def test_weighted_split_respects_multipliers(self):
        # Worker 0 is 8x slower; with 1/multiplier weights it should get
        # far fewer tuples than the two fast workers.
        region = ProcessRegion(
            3, multipliers=[8.0, 1.0, 1.0], supervisor_config=FAST, window=8
        )
        n = 150
        stats, outputs = run_region(region, [0.001] * n)
        expect_ordered(outputs, n)
        per_worker = stats.per_worker_results
        assert per_worker[0] < per_worker[1]
        assert per_worker[0] < per_worker[2]

    def test_close_is_idempotent(self):
        region = ProcessRegion(2, supervisor_config=FAST)
        region.start()
        region.run([0.0] * 10, timeout=20.0)
        first = region.close()
        assert region.close() == first


class TestKillRecovery:
    """The ISSUE's acceptance scenario: SIGKILL mid-batch, full recovery."""

    def test_deterministic_sigkill_mid_batch(self):
        n = 400
        region = ProcessRegion(4, supervisor_config=FAST, window=16)
        hub = ObservabilityHub(region.clock, ObservabilityConfig())
        region.attach_observability(hub)
        # Deterministic trigger: worker 1 dies the instant the merger has
        # emitted tuple #50, regardless of host speed.
        schedule = FaultSchedule.crash_after_emitted(1, 50)
        driver = RealFaultDriver(region, poll_interval=0.002)
        schedule.arm_real(driver)
        try:
            region.start()
            driver.start()
            # Submit + drain by hand (run() would close the region): the
            # region must stay open so the replacement incarnation can
            # rejoin even if the batch drains first.
            for i in range(n):
                region.submit(0.001, b"payload-%d" % i)
            region.drain(timeout=60.0)
            # Wait for the rejoin: it closes the episode (ttr) and emits
            # the "restart" span.
            deadline = time.monotonic() + 20.0
            while (
                region.supervisor.first_time_to_reconverge() is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stats = region.stats()
            outputs = list(region.outputs)
        finally:
            driver.stop()
            region.close()
        expect_ordered(outputs, n, lambda i: b"payload-%d" % i)
        assert stats.results == n
        assert stats.restarts >= 1
        assert stats.episodes >= 1
        # In-flight tuples on the dead incarnation were replayed from the
        # retransmit buffer, not lost.
        assert stats.replayed >= 1
        # Fault-to-detection (ttq) is recorded and small.
        assert stats.time_to_quarantine is not None
        assert stats.time_to_quarantine < 5.0
        # Fault-to-rejoin (ttr) is recorded once the replacement serves.
        assert stats.time_to_reconverge is not None
        hub.finalize(region.clock())
        report = hub.report()
        kinds = {span["kind"] for span in report.spans}
        assert {"detection", "quarantine", "restart"} <= kinds
        restart_spans = report.spans_of_kind("restart")
        assert restart_spans and all(
            s["end"] >= s["start"] for s in restart_spans
        )

    def test_restarted_worker_rejoins_and_serves(self):
        # A longer run so the restarted incarnation has time to reconnect
        # and take traffic again (ttr is only defined if it rejoins).
        n = 600
        region = ProcessRegion(3, supervisor_config=FAST, window=16)
        schedule = FaultSchedule.crash_after_emitted(2, 40)
        stats, outputs = run_region(
            region, [0.002] * n, timeout=90.0, schedule=schedule
        )
        expect_ordered(outputs, n)
        assert stats.restarts >= 1
        assert stats.time_to_reconverge is not None
        # The restarted worker produced results after rejoining.
        assert stats.per_worker_results[2] > 0


class TestStallDetection:
    def test_sigstop_is_detected_via_missed_heartbeats(self):
        n = 300
        region = ProcessRegion(3, supervisor_config=FAST, window=16)
        region.start()
        try:
            # Freeze worker 0 once it is serving (STARTING slots enjoy a
            # long spawn grace; the heartbeat timeout only guards UP
            # slots). The socket stays open, so only heartbeat staleness
            # can catch the freeze.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if region.slots[0].state == UP and region.supervisor.kill(
                    0, signal.SIGSTOP
                ):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("worker 0 never came up")
            stats = region.run([0.001] * n, timeout=60.0)
            outputs = list(region.outputs)
        finally:
            region.close()
        expect_ordered(outputs, n)
        assert stats.results == n
        # The stopped incarnation was declared dead without the socket
        # ever closing, and replaced.
        assert stats.episodes >= 1
        assert stats.restarts >= 1


class TestCircuitBreaker:
    def test_crash_loop_quarantines_but_run_completes(self):
        # Worker 1 is configured (via extra_args) to exit nonzero after
        # every single tuple, forever. The budget of 2 restarts in the
        # window trips the breaker; the survivors absorb its share. The
        # run is long enough (wall-clock) for three crash cycles, each
        # dominated by interpreter startup of the replacement process.
        config = SupervisorConfig(
            heartbeat_interval=0.02,
            heartbeat_timeout=0.25,
            monitor_interval=0.01,
            backoff_start=0.01,
            backoff_max=0.02,
            restart_budget=2,
            restart_window=30.0,
        )
        region = ProcessRegion(3, supervisor_config=config, window=8)
        region.slots[1].extra_args = ["--exit-after", "1", "--exit-code", "3"]
        n = 400
        stats, outputs = run_region(region, [0.008] * n, timeout=120.0)
        expect_ordered(outputs, n)
        assert stats.results == n
        assert 1 in stats.quarantined
        assert region.slots[1].state == QUARANTINED
        # Budget spent before the breaker tripped.
        assert region.slots[1].restarts == 2


class TestChaos:
    """The CI ``process-chaos`` job's case: kills in a loop, still exact."""

    def test_repeated_sigkills_preserve_exactly_once(self):
        n = 500
        region = ProcessRegion(4, supervisor_config=FAST, window=16)
        region.start()
        stop = False
        try:
            import threading

            def chaos():
                rounds = 0
                victim = 0
                while not stop and rounds < 3:
                    time.sleep(0.4)
                    if region.supervisor.kill(victim, signal.SIGKILL):
                        region.supervisor.note_fault(victim)
                        rounds += 1
                    victim = (victim + 1) % 4

            monkey = threading.Thread(target=chaos, daemon=True)
            monkey.start()
            stats = region.run([0.002] * n, timeout=120.0)
            stop = True
            monkey.join(timeout=5.0)
            outputs = list(region.outputs)
        finally:
            stop = True
            region.close()
        expect_ordered(outputs, n)
        assert stats.results == n
        # Exactly-once held: any retransmit race resolved via dedup.
        assert stats.results + stats.duplicates_dropped >= n


class TestBatchedWire:
    """The batched wire protocol: DATA_BATCH runs, cumulative acks."""

    def test_batched_happy_path_ordered_gap_free(self):
        region = ProcessRegion(
            3, supervisor_config=FAST, window=64, batch_size=8
        )
        n = 240
        stats, outputs = run_region(
            region,
            [0.0005] * n,
            bodies=[b"t%d" % i for i in range(n)],
        )
        expect_ordered(outputs, n, lambda i: b"t%d" % i)
        assert stats.results == n
        assert stats.duplicates_dropped == 0
        # The whole point: far fewer flushes (sendall calls) than tuples.
        assert stats.data_flushes < n // 2
        assert stats.mean_batch_occupancy > 1.5
        assert stats.wire_frames_received < n

    def test_batch_size_one_keeps_per_tuple_wire(self):
        region = ProcessRegion(
            2, supervisor_config=FAST, window=16, batch_size=1
        )
        n = 60
        stats, outputs = run_region(region, [0.0005] * n)
        expect_ordered(outputs, n)
        # One flush per tuple, occupancy exactly 1: B=1 is the old wire.
        assert stats.data_flushes == n
        assert stats.mean_batch_occupancy == 1.0

    def test_batched_sigkill_mid_batch_gap_free_zero_duplicates(self):
        # The acceptance scenario: a worker dies holding a partially
        # acked DATA_BATCH run; its unacked entries are re-batched to
        # survivors, and the merged output has no gap and no duplicate.
        n = 400
        region = ProcessRegion(
            4, supervisor_config=FAST, window=64, batch_size=16
        )
        schedule = FaultSchedule.crash_after_emitted(1, 50)
        stats, outputs = run_region(
            region,
            [0.001] * n,
            bodies=[b"payload-%d" % i for i in range(n)],
            timeout=90.0,
            schedule=schedule,
        )
        expect_ordered(outputs, n, lambda i: b"payload-%d" % i)
        assert stats.results == n
        assert stats.restarts >= 1
        assert stats.episodes >= 1
        assert stats.replayed >= 1

    def test_result_batch_overlapping_replay_dedups(self):
        # Unit-level: a replayed RESULT_BATCH overlapping already-acked
        # seqs must count duplicates, not double-emit. No processes —
        # results are injected through _handle_message directly.
        from repro.net import framing

        region = ProcessRegion(
            2, supervisor_config=FAST, window=16, batch_size=4
        )
        try:
            slot = region.slots[0]
            entries = [(seq, 0.0, b"x%d" % seq) for seq in range(4)]
            with region._cv:
                for seq, cost, body in entries:
                    region._owner[seq] = 0
                    slot.unacked[seq] = (cost, body)
            [batch] = framing.MessageAssembler().feed(
                framing.encode_result_batch(entries)
            )
            region._handle_message(slot, slot.incarnation, batch)
            assert region.results == 4
            assert region.outputs == [
                (seq, b"x%d" % seq) for seq in range(4)
            ]
            # The replayed copy overlaps all four: every entry dedups.
            region._handle_message(slot, slot.incarnation, batch)
            assert region.results == 4
            assert region.stats().duplicates_dropped == 4
            assert len(region.outputs) == 4
            assert slot.unacked == {}
        finally:
            region._listener_sock.close()

    def test_wait_ready_blocks_until_all_slots_serve(self):
        region = ProcessRegion(2, supervisor_config=FAST, window=8)
        try:
            region.start().wait_ready(timeout=30.0)
            assert all(s.state == UP for s in region.slots)
            assert all(sock is not None for sock in region._socks)
        finally:
            region.close()

    def test_wait_ready_requires_start(self):
        region = ProcessRegion(1, supervisor_config=FAST)
        try:
            with pytest.raises(RuntimeError, match="not started"):
                region.wait_ready(timeout=0.1)
        finally:
            region._listener_sock.close()


class TestNodelay:
    """TCP_NODELAY must be on at both ends of every worker connection."""

    def test_parent_accept_socket_has_nodelay(self):
        import socket as socket_module

        region = ProcessRegion(2, supervisor_config=FAST, window=8)
        try:
            region.start().wait_ready(timeout=30.0)
            for sock in region._socks:
                assert sock is not None
                assert sock.getsockopt(
                    socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY
                ) != 0
        finally:
            region.close()


class TestPromptShutdown:
    def test_close_races_pending_restart_without_stalling(self):
        # Kill a worker, then close while its replacement is still
        # STARTING (spawned, pre-HELLO). The replacement never received
        # EOS and cannot drain, so shutdown must not spend the full
        # drain_timeout waiting for it — only UP slots are waited on.
        region = ProcessRegion(2, supervisor_config=FAST, window=8)
        region.start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if all(s.state == UP for s in region.slots):
                    break
                time.sleep(0.01)
            assert all(s.state == UP for s in region.slots)
            assert region.supervisor.kill(1, signal.SIGKILL)
            # Catch the replacement in STARTING: detection + backoff
            # take ~0.03s with FAST, interpreter boot ~0.3s more.
            deadline = time.monotonic() + 5.0
            seen_starting = False
            while time.monotonic() < deadline:
                slot = region.slots[1]
                if slot.incarnation >= 1 and slot.state == STARTING:
                    seen_starting = True
                    break
                time.sleep(0.001)
            assert seen_starting, "replacement never entered STARTING"
            t0 = time.monotonic()
        finally:
            region.close()
        close_seconds = time.monotonic() - t0
        assert close_seconds < 3.0, (
            f"close stalled {close_seconds:.2f}s on an undrainable "
            f"STARTING replacement (drain_timeout is "
            f"{FAST.drain_timeout:g}s)"
        )


class TestGracefulDegradation:
    def test_sigterm_drains_in_flight_tuples(self):
        # SIGTERM a worker directly (not via the supervisor's shutdown):
        # it must finish what it already read, send BYE, and exit 0 —
        # which the monitor then treats as a death and replaces.
        region = ProcessRegion(2, supervisor_config=FAST, window=8)
        region.start()
        try:
            deadline = time.monotonic() + 5.0
            pid = None
            while time.monotonic() < deadline:
                slot = region.slots[0]
                if slot.state == UP and slot.pid:
                    pid = slot.pid
                    break
                time.sleep(0.01)
            assert pid is not None
            os.kill(pid, signal.SIGTERM)
            n = 150
            stats = region.run([0.001] * n, timeout=60.0)
            outputs = list(region.outputs)
        finally:
            region.close()
        expect_ordered(outputs, n)
        assert stats.results == n
