"""Unit tests for the metrics registry and its three instrument kinds."""

import math

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increments(self, registry):
        c = registry.counter("tuples_total")
        c.inc()
        c.inc(4)
        assert c.value == 5.0
        assert registry.read("tuples_total") == 5.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("x_total").inc(-1)

    def test_reregistration_returns_same_object(self, registry):
        a = registry.counter("x_total", connection="0")
        b = registry.counter("x_total", connection="0")
        assert a is b

    def test_labels_distinguish_instruments(self, registry):
        a = registry.counter("x_total", connection="0")
        b = registry.counter("x_total", connection="1")
        a.inc()
        assert a is not b
        assert registry.read("x_total", connection="0") == 1.0
        assert registry.read("x_total", connection="1") == 0.0


class TestGauge:
    def test_direct_set_and_add(self, registry):
        g = registry.gauge("pending")
        g.set(7)
        g.add(-2)
        assert g.value == 5.0

    def test_callback_gauge_reads_live(self, registry):
        state = {"v": 1}
        g = registry.gauge_fn("live", lambda: state["v"])
        assert g.value == 1.0
        state["v"] = 42
        assert g.value == 42.0

    def test_callback_gauge_rejects_set(self, registry):
        g = registry.gauge_fn("live", lambda: 0)
        with pytest.raises(RuntimeError):
            g.set(1)
        with pytest.raises(RuntimeError):
            g.add(1)


class TestHistogram:
    def test_bucketing_and_cumulative(self, registry):
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.cumulative() == [1, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)

    def test_samples_expand_to_prometheus_series(self, registry):
        h = registry.histogram("lat", buckets=(0.1,))
        h.observe(0.05)
        names = [(name, dict(labels)) for name, labels, _ in h.samples()]
        assert ("lat_bucket", {"le": "0.1"}) in names
        assert ("lat_bucket", {"le": "+Inf"}) in names
        assert ("lat_sum", {}) in names
        assert ("lat_count", {}) in names

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", (), (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (), ())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_read_rejects_histogram(self, registry):
        registry.histogram("lat")
        with pytest.raises(TypeError):
            registry.read("lat")


class TestRegistry:
    def test_kind_mismatch_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_family_kind_enforced_across_label_sets(self, registry):
        registry.counter("x_total", connection="0")
        with pytest.raises(ValueError):
            registry.gauge("x_total", connection="1")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", **{"0bad": "x"})

    def test_read_unregistered_is_zero(self, registry):
        assert registry.read("nope") == 0.0

    def test_snapshot_keys(self, registry):
        registry.counter("a_total").inc(2)
        registry.gauge_fn("b", lambda: 3, connection="1")
        snap = registry.snapshot()
        assert snap["a_total"] == 2.0
        assert snap['b{connection="1"}'] == 3.0

    def test_to_prometheus_renders_help_type_and_values(self, registry):
        registry.counter("a_total", help="things").inc()
        registry.gauge("nanny").set(math.nan)
        registry.gauge("infy").set(math.inf)
        text = registry.to_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 1.0" in text
        assert "nanny NaN" in text
        assert "infy +Inf" in text
        assert text.endswith("\n")

    def test_to_prometheus_empty_registry(self, registry):
        assert registry.to_prometheus() == ""

    def test_label_escaping(self, registry):
        registry.counter("a_total", tag='quo"te\nnl')
        (key,) = registry.snapshot()
        assert key == 'a_total{tag="quo\\"te\\nnl"}'
