"""Tests for the in-tree schema validators (and their CLI)."""

import json

import pytest

from repro.obs.schema import (
    SPAN_KINDS,
    main,
    validate_event,
    validate_events_jsonl,
    validate_prometheus,
)

GOOD_AUDIT = {
    "type": "audit",
    "time": 1.0,
    "round": 0,
    "trigger": "periodic",
    "outcome": "adopted",
    "blocking_rates": [0.1],
    "function_values": [0.1],
    "predicted_rates": [0.05],
    "decayed_channels": [],
    "solver": "fox",
    "solver_calls": 1,
    "model_fits": 2,
    "clusters": [[0]],
    "quarantined": [],
    "old_weights": [1000],
    "candidate": [1000],
    "new_weights": [1000],
    "churn_limited": False,
}

GOOD_SPAN = {
    "type": "span",
    "time": 1.0,
    "span_id": 0,
    "kind": "blocking",
    "start": 1.0,
    "end": 2.0,
    "duration": 1.0,
    "parent_round": -1,
    "attrs": {"connection": 0},
}

GOOD_FAULT = {"type": "fault", "time": 3.0, "kind": "crash", "channel": 1}


class TestValidateEvent:
    @pytest.mark.parametrize("event", [GOOD_AUDIT, GOOD_SPAN, GOOD_FAULT])
    def test_good_events_pass(self, event):
        assert validate_event(event) == []

    def test_unknown_type_needs_only_envelope(self):
        assert validate_event({"type": "custom", "time": 0.0}) == []
        assert validate_event({"type": "custom"}) != []

    def test_missing_type(self):
        assert validate_event({"time": 1.0}) != []

    def test_missing_field_flagged(self):
        event = dict(GOOD_AUDIT)
        del event["new_weights"]
        assert any("new_weights" in p for p in validate_event(event))

    def test_wrong_type_flagged(self):
        event = dict(GOOD_AUDIT, round="zero")
        assert any("round" in p for p in validate_event(event))

    def test_bool_is_not_int(self):
        event = dict(GOOD_FAULT, channel=True)
        assert any("channel" in p for p in validate_event(event))

    def test_unknown_outcome_and_trigger_flagged(self):
        assert validate_event(dict(GOOD_AUDIT, outcome="vibes"))
        assert validate_event(dict(GOOD_AUDIT, trigger="cron"))

    def test_unknown_span_kind_flagged(self):
        assert validate_event(dict(GOOD_SPAN, kind="siesta"))

    def test_span_end_before_start_flagged(self):
        assert validate_event(dict(GOOD_SPAN, start=5.0, end=2.0))

    def test_all_documented_span_kinds_pass(self):
        for kind in SPAN_KINDS:
            assert validate_event(dict(GOOD_SPAN, kind=kind)) == []


class TestValidateJsonl:
    def test_good_stream(self):
        text = "".join(
            json.dumps(e) + "\n" for e in (GOOD_FAULT, GOOD_AUDIT, GOOD_SPAN)
        )
        assert validate_events_jsonl(text) == []

    def test_blank_line_flagged(self):
        text = json.dumps(GOOD_FAULT) + "\n\n" + json.dumps(GOOD_FAULT) + "\n"
        assert any("blank" in p for p in validate_events_jsonl(text))

    def test_invalid_json_flagged_with_line_number(self):
        problems = validate_events_jsonl("not json\n")
        assert problems and problems[0].startswith("line 1:")

    def test_non_object_flagged(self):
        assert any(
            "not an object" in p for p in validate_events_jsonl("[1, 2]\n")
        )


class TestValidatePrometheus:
    GOOD = (
        "# HELP a_total things\n"
        "# TYPE a_total counter\n"
        "a_total 1.0\n"
        "# TYPE lat histogram\n"
        'lat_bucket{le="0.1"} 1\n'
        'lat_bucket{le="+Inf"} 1\n'
        "lat_sum 0.05\n"
        "lat_count 1\n"
        "nanny NaN\n"
        "infy +Inf\n"
    )

    def test_good_snapshot(self):
        assert validate_prometheus(self.GOOD) == []

    def test_malformed_sample_flagged(self):
        assert validate_prometheus("not a metric line at all!\n")

    def test_malformed_comment_flagged(self):
        assert validate_prometheus("# WAT a_total counter\n")

    def test_duplicate_type_flagged(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        assert any("duplicate" in p for p in validate_prometheus(text))

    def test_bad_metric_type_flagged(self):
        assert validate_prometheus("# TYPE a sparkline\na 1\n")


class TestCli:
    def test_valid_files_exit_zero(self, tmp_path, capsys):
        jsonl = tmp_path / "e.jsonl"
        jsonl.write_text(json.dumps(GOOD_FAULT) + "\n")
        prom = tmp_path / "m.prom"
        prom.write_text("# TYPE a counter\na 1\n")
        assert main([str(jsonl), str(prom)]) == 0
        out = capsys.readouterr().out
        assert "valid JSONL event stream" in out
        assert "valid Prometheus snapshot" in out

    def test_invalid_file_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "e.jsonl"
        bad.write_text("nope\n")
        assert main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_no_args_exit_two(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err
