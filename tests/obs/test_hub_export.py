"""Unit tests for the hub, the exporters, and the console reporter."""

import csv
import io
import json

import pytest

from repro.obs.audit import ControlRoundRecord
from repro.obs.console import ConsoleReporter
from repro.obs.export import (
    AUDIT_COLUMNS,
    SPAN_COLUMNS,
    audit_to_csv,
    events_to_jsonl,
    prometheus_snapshot,
    spans_to_csv,
    write_exports,
)
from repro.obs.hub import NULL_HUB, ObservabilityConfig, ObservabilityHub, ObsReport


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def hub(clock):
    return ObservabilityHub(clock)


def add_round(hub, round_no, old, new, outcome="adopted", time=1.0):
    hub.audit.append(ControlRoundRecord(
        round=round_no, time=time, trigger="periodic", outcome=outcome,
        old_weights=old, new_weights=new,
    ))


class TestObservabilityConfig:
    def test_defaults(self):
        config = ObservabilityConfig()
        assert config.console_interval == 0.0
        assert config.jsonl_path is None
        assert config.keep_events is True

    def test_negative_console_interval_rejected(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(console_interval=-1.0)


class TestHub:
    def test_events_stamped_with_clock(self, hub, clock):
        clock.now = 2.5
        hub.event("fault", kind="crash", channel=1)
        assert hub.events == [
            {"type": "fault", "time": 2.5, "kind": "crash", "channel": 1}
        ]

    def test_keep_events_false_drops_stream(self, clock):
        hub = ObservabilityHub(clock, ObservabilityConfig(keep_events=False))
        hub.event("fault", kind="crash", channel=1)
        add_round(hub, 0, [500], [500])
        hub.finalize(10.0)
        assert hub.events == []
        # The structured recorders still hold their data.
        assert len(hub.audit) == 1

    def test_finalize_is_sole_audit_and_span_mirror(self, hub):
        add_round(hub, 0, [500, 500], [400, 600])
        sid = hub.tracer.start("blocking", 0.5)
        hub.tracer.finish(sid, 0.9)
        assert hub.events == []  # nothing mirrored live
        hub.finalize(10.0)
        types = [e["type"] for e in hub.events]
        assert types.count("audit") == 1
        assert types.count("span") == 1

    def test_finalize_sorts_by_time_with_spans_last(self, hub, clock):
        clock.now = 1.0
        hub.event("fault", kind="crash", channel=0)
        hub.tracer.record("detection", 1.0, 2.0)
        add_round(hub, 0, [500], [500], time=1.0)
        hub.finalize(5.0)
        assert [e["type"] for e in hub.events] == ["fault", "audit", "span"]

    def test_finalize_truncates_open_spans(self, hub):
        hub.tracer.start("overload", 3.0)
        hub.finalize(8.0)
        (event,) = [e for e in hub.events if e["type"] == "span"]
        assert event["end"] == 8.0
        assert event["attrs"]["truncated"] is True

    def test_link_round_source(self, hub):
        hub.link_round_source(lambda: 9)
        sid = hub.tracer.start("flow_pause", 0.0)
        assert hub.tracer.spans[sid].parent_round == 9

    def test_report_is_plain_data(self, hub, clock):
        hub.registry.counter("a_total").inc(3)
        add_round(hub, 0, [500], [500])
        hub.tracer.record("blocking", 0.0, 1.0)
        hub.finalize(2.0)
        report = hub.report()
        assert report.metrics["a_total"] == 3.0
        assert report.audit[0]["round"] == 0
        assert report.spans[0]["kind"] == "blocking"
        # Round-trips through its dict form (the sweep-pool contract).
        clone = ObsReport.from_dict(
            json.loads(json.dumps(report.as_dict()))
        )
        assert clone.as_dict() == report.as_dict()

    def test_events_jsonl_one_object_per_line(self, hub, clock):
        clock.now = 1.0
        hub.event("fault", kind="crash", channel=0)
        hub.event("fault", kind="restart", channel=0)
        lines = hub.report().events_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "restart"

    def test_null_hub_is_inert(self):
        assert not NULL_HUB
        assert NULL_HUB.enabled is False
        NULL_HUB.event("fault", kind="crash", channel=0)
        NULL_HUB.finalize(1.0)
        report = NULL_HUB.report()
        assert report.events == [] and report.metrics == {}


class TestExporters:
    def _report(self, hub, clock):
        hub.registry.counter("a_total", help="things").inc()
        add_round(hub, 0, [500, 500], [400, 600])
        hub.tracer.record("detection", 1.0, 2.0, channel=1)
        hub.finalize(5.0)
        return hub.report()

    def test_events_to_jsonl_writes_and_counts(self, hub, clock, tmp_path):
        report = self._report(hub, clock)
        path = tmp_path / "events.jsonl"
        assert events_to_jsonl(report, str(path)) == len(report.events)
        lines = path.read_text().splitlines()
        assert len(lines) == len(report.events)
        for line in lines:
            json.loads(line)

    def test_prometheus_snapshot_file(self, hub, clock, tmp_path):
        report = self._report(hub, clock)
        path = tmp_path / "metrics.prom"
        prometheus_snapshot(report, str(path))
        assert path.read_text() == report.prometheus
        assert "a_total 1.0" in report.prometheus

    def test_audit_csv_columns_and_cells(self, hub, clock, tmp_path):
        report = self._report(hub, clock)
        path = tmp_path / "audit.csv"
        text = audit_to_csv(report, str(path))
        assert path.read_text() == text
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == AUDIT_COLUMNS
        row = dict(zip(rows[0], rows[1]))
        assert row["outcome"] == "adopted"
        assert json.loads(row["old_weights"]) == [500, 500]
        assert json.loads(row["new_weights"]) == [400, 600]

    def test_spans_csv_columns(self, hub, clock):
        report = self._report(hub, clock)
        rows = list(csv.reader(io.StringIO(spans_to_csv(report))))
        assert tuple(rows[0]) == SPAN_COLUMNS
        row = dict(zip(rows[0], rows[1]))
        assert row["kind"] == "detection"
        assert float(row["duration"]) == 1.0

    def test_write_exports_honors_paths(self, hub, clock, tmp_path):
        report = self._report(hub, clock)
        jsonl = tmp_path / "e.jsonl"
        prom = tmp_path / "m.prom"
        write_exports(report, ObservabilityConfig(
            jsonl_path=str(jsonl), prometheus_path=str(prom)
        ))
        assert jsonl.exists() and prom.exists()

    def test_write_exports_noop_without_paths(self, hub, clock, tmp_path):
        write_exports(self._report(hub, clock), ObservabilityConfig())
        assert list(tmp_path.iterdir()) == []


class TestConsoleReporter:
    def test_priming_line(self, hub, clock):
        clock.now = 3.0
        reporter = ConsoleReporter(hub, out=lambda s: None)
        assert reporter.line() == "[obs t=3.0s] priming"

    def test_full_line(self, hub, clock):
        clock.now = 40.0
        add_round(hub, 79, [310, 690], [310, 690])
        hub.registry.gauge_fn("merger_tuples_emitted_total", lambda: 61440)
        hub.registry.gauge_fn("merger_pending_tuples", lambda: 12)
        hub.registry.gauge_fn("splitter_block_events_total", lambda: 3)
        hub.tracer.record("blocking", 0.0, 1.0)
        line = ConsoleReporter(hub, out=lambda s: None).line()
        assert line == (
            "[obs t=40.0s] round 79 adopted w=[310.00 690.00]"
            " | emitted=61440 pending=12 blocked=3 spans=1"
        )

    def test_tick_emits_and_counts(self, hub, clock):
        seen = []
        reporter = ConsoleReporter(hub, out=seen.append)
        reporter.tick()
        reporter.tick()
        assert len(seen) == 2
        assert reporter.lines_emitted == 2
