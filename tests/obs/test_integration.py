"""End-to-end acceptance tests for the observability subsystem.

Pinned here, per the issue's acceptance criteria:

* obs off (the default) changes nothing: the event trace digest and
  every experiment result are byte-identical with and without a hub
  attached;
* an observed fault+overload scenario yields exactly one audit record
  per control round, and the records' old -> new weights chain through
  the balancer's actually-applied weights;
* recovery and overload spans agree with the ttq/ttr and shed metrics
  computed from the same episodes;
* the JSONL/CSV/Prometheus exports validate against the documented
  schema.
"""

import dataclasses
import json
import pickle

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.experiments.config import (
    ExperimentConfig,
    fault_recovery_scenario,
    overload_scenario,
)
from repro.experiments.runner import run_experiment
from repro.faults.schedule import FaultSchedule
from repro.obs.hub import ObservabilityConfig, ObservabilityHub
from repro.obs.schema import validate_events_jsonl, validate_prometheus
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, constant_cost

from tests.experiments.test_determinism import result_fingerprint


def observed_scenario() -> ExperimentConfig:
    """Overload + a mid-run crash: exercises every span/audit producer."""
    config = overload_scenario(duration=60.0)
    config = dataclasses.replace(
        config,
        fault_schedule=FaultSchedule.crash(1, at=15.0, restart_after=20.0),
    )
    return config.with_observability()


@pytest.fixture(scope="module")
def observed_run():
    return run_experiment(observed_scenario(), "lb-adaptive")


class TestObsOffIsFree:
    def test_trace_digest_identical_with_hub_attached(self):
        def digest(attach: bool) -> str:
            sim = Simulator()
            sim.enable_tracing()
            region = ParallelRegion(
                sim,
                FiniteSource(400, constant_cost(1000.0)),
                RoundRobinPolicy(2),
                Placement.single_host(2, Host("h", cores=2, thread_speed=1e6)),
                params=RegionParams(service_jitter=0.05),
            )
            if attach:
                hub = ObservabilityHub(lambda: sim.now)
                sim.attach_observability(hub)
                region.attach_observability(hub)
            region.start()
            sim.run_until_idle(100.0)
            assert region.merger.emitted == 400
            return sim.trace_digest()

        assert digest(attach=False) == digest(attach=True)

    def test_results_identical_with_observability_on(self):
        config = fault_recovery_scenario(duration=40.0)
        bare = run_experiment(config, "lb-adaptive")
        observed = run_experiment(
            config.with_observability(), "lb-adaptive"
        )
        assert bare.obs is None
        assert observed.obs is not None
        assert result_fingerprint(bare) == result_fingerprint(observed)


class TestAuditAcceptance:
    def test_one_periodic_record_per_control_round(self, observed_run):
        rounds = [
            r["round"]
            for r in observed_run.obs.audit
            if r["trigger"] == "periodic" and r["round"] >= 0
        ]
        assert rounds == sorted(rounds)
        assert len(rounds) == len(set(rounds))  # exactly one per round
        assert rounds, "scenario produced no control rounds"
        assert rounds == list(range(rounds[0], rounds[-1] + 1))

    def test_weights_chain_through_applied_weights(self, observed_run):
        records = observed_run.obs.audit
        n = observed_run.n_workers
        for prev, cur in zip(records, records[1:]):
            assert cur["old_weights"] == prev["new_weights"]
        for r in records:
            if r["outcome"] != "primed":
                assert len(r["new_weights"]) == n
            if r["outcome"] in (
                "no-change",
                "rejected-hysteresis",
            ) or r["outcome"].startswith("hold-"):
                assert r["new_weights"] == r["old_weights"]
        # The last applied weights are the run's final weights.
        assert records[-1]["new_weights"] == observed_run.final_weights

    def test_crash_produces_quarantine_trigger(self, observed_run):
        triggers = {r["trigger"] for r in observed_run.obs.audit}
        assert "quarantine" in triggers
        quarantine = next(
            r for r in observed_run.obs.audit if r["trigger"] == "quarantine"
        )
        assert quarantine["quarantined"] == [1]
        assert quarantine["new_weights"][1] == 0

    def test_rejections_keep_candidate_visible(self, observed_run):
        rejected = [
            r
            for r in observed_run.obs.audit
            if r["outcome"] == "rejected-hysteresis"
        ]
        for r in rejected:
            assert r["candidate"] != []
            assert r["new_weights"] == r["old_weights"]


class TestSpanAcceptance:
    def test_detection_span_matches_ttq(self, observed_run):
        spans = observed_run.obs.spans_of_kind("detection")
        assert len(spans) == 1
        assert spans[0]["duration"] == pytest.approx(
            observed_run.time_to_quarantine
        )

    def test_reconvergence_span_matches_ttr(self, observed_run):
        spans = observed_run.obs.spans_of_kind("reconvergence")
        assert len(spans) == 1
        assert spans[0]["duration"] == pytest.approx(
            observed_run.time_to_reconverge
        )

    def test_overload_spans_match_overloaded_seconds(self, observed_run):
        spans = observed_run.obs.spans_of_kind("overload")
        assert spans, "overload scenario never tripped the detector"
        total = sum(s["duration"] for s in spans)
        slack = (
            observed_scenario().overload.check_interval
            if any(s["attrs"].get("truncated") for s in spans)
            else 1e-9
        )
        assert abs(total - observed_run.overload_seconds) <= slack
        closed = [s for s in spans if not s["attrs"].get("truncated")]
        for s in closed:
            assert s["attrs"]["shed"] >= 0

    def test_blocking_spans_match_blocking_counters(self, observed_run):
        closed = [
            s
            for s in observed_run.obs.spans_of_kind("blocking")
            if not s["attrs"].get("truncated")
        ]
        span_total = sum(s["duration"] for s in closed)
        metric_total = sum(
            v
            for k, v in observed_run.obs.metrics.items()
            if k.startswith("connection_blocking_seconds_total")
        )
        assert span_total == pytest.approx(metric_total)

    def test_flow_pause_spans_match_paused_seconds(self, observed_run):
        spans = observed_run.obs.spans_of_kind("flow_pause")
        closed = [s for s in spans if not s["attrs"].get("truncated")]
        if closed and len(closed) == len(spans):
            assert sum(s["duration"] for s in closed) == pytest.approx(
                observed_run.flow_paused_seconds
            )

    def test_spans_parent_into_control_rounds(self, observed_run):
        max_round = max(r["round"] for r in observed_run.obs.audit)
        for span in observed_run.obs.spans:
            assert -1 <= span["parent_round"] <= max_round + 1


class TestExportAcceptance:
    def test_jsonl_stream_validates(self, observed_run):
        assert validate_events_jsonl(observed_run.obs.events_jsonl()) == []

    def test_prometheus_snapshot_validates(self, observed_run):
        assert validate_prometheus(observed_run.obs.prometheus) == []

    def test_metrics_agree_with_result_scalars(self, observed_run):
        metrics = observed_run.obs.metrics
        assert metrics["merger_tuples_emitted_total"] == observed_run.emitted
        assert (
            metrics["splitter_block_events_total"]
            == observed_run.block_events
        )
        assert metrics["overload_trips_total"] == observed_run.overload_trips
        assert metrics["overload_seconds_total"] == pytest.approx(
            observed_run.overload_seconds
        )
        assert (
            metrics["admission_tuples_shed_total"] == observed_run.tuples_shed
        )
        assert metrics["recovery_quarantines_total"] == observed_run.quarantines
        assert metrics["sim_events_processed"] == observed_run.events_processed

    def test_fault_events_recorded(self, observed_run):
        faults = [
            e for e in observed_run.obs.events if e["type"] == "fault"
        ]
        kinds = [e["kind"] for e in faults]
        assert "crash" in kinds
        assert "restart" in kinds
        crash = next(e for e in faults if e["kind"] == "crash")
        assert crash["channel"] == 1
        assert crash["time"] == pytest.approx(15.0)

    def test_report_survives_pickle_and_json(self, observed_run):
        clone = pickle.loads(pickle.dumps(observed_run.obs))
        assert clone.as_dict() == observed_run.obs.as_dict()
        json.dumps(observed_run.obs.as_dict())


class TestConsoleReporter:
    def test_console_lines_on_sim_clock(self, capsys):
        config = fault_recovery_scenario(duration=20.0).with_observability(
            ObservabilityConfig(console_interval=5.0)
        )
        run_experiment(config, "lb-adaptive")
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("[obs t=")
        ]
        assert len(lines) == 4  # t=5, 10, 15, 20
        assert lines[0].startswith("[obs t=5.0s]")
