"""Unit tests for the decision audit log and the span tracer."""

import pytest

from repro.obs.audit import OUTCOMES, TRIGGERS, ControlRoundRecord, DecisionAuditLog
from repro.obs.spans import Span, SpanTracer


def record(round=0, outcome="adopted", trigger="periodic", **kw):
    return ControlRoundRecord(
        round=round, time=1.0, trigger=trigger, outcome=outcome, **kw
    )


class TestAuditLog:
    def test_append_and_query(self):
        log = DecisionAuditLog()
        log.append(record(0, "primed"))
        log.append(record(1, "adopted"))
        log.append(record(2, "rejected-hysteresis"))
        assert len(log) == 3
        assert log.last().round == 2
        assert [r.round for r in log.by_outcome("adopted")] == [1]
        assert [r["round"] for r in log.as_dicts()] == [0, 1, 2]

    def test_empty_last_is_none(self):
        assert DecisionAuditLog().last() is None

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            DecisionAuditLog().append(record(outcome="vibes"))

    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError):
            DecisionAuditLog().append(record(trigger="cron"))

    def test_every_documented_value_accepted(self):
        log = DecisionAuditLog()
        for outcome in OUTCOMES:
            log.append(record(outcome=outcome))
        for trigger in TRIGGERS:
            log.append(record(trigger=trigger))
        assert len(log) == len(OUTCOMES) + len(TRIGGERS)

    def test_as_dict_is_json_plain(self):
        d = record(
            3,
            blocking_rates=[0.1],
            clusters=[[0, 1]],
            old_weights=[500, 500],
            new_weights=[400, 600],
        ).as_dict()
        assert d["round"] == 3
        assert d["clusters"] == [[0, 1]]
        assert d["old_weights"] == [500, 500]
        # Mutating the dict must not touch the record.
        d["new_weights"].append(0)
        assert len(d["new_weights"]) == 3


class TestSpanTracer:
    def test_live_span_lifecycle(self):
        tracer = SpanTracer()
        sid = tracer.start("blocking", 1.0, connection=2)
        span = tracer.finish(sid, 3.5, resolved=True)
        assert span.duration == 2.5
        assert span.attrs == {"connection": 2, "resolved": True}
        assert not span.open

    def test_retroactive_record(self):
        tracer = SpanTracer()
        span = tracer.record("detection", 10.0, 12.0, parent_round=7, channel=1)
        assert span.duration == 2.0
        assert span.parent_round == 7

    def test_parent_round_from_linker(self):
        tracer = SpanTracer()
        tracer.current_round = lambda: 42
        sid = tracer.start("overload", 0.0)
        assert tracer.spans[sid].parent_round == 42
        assert tracer.record("detection", 0.0, 1.0).parent_round == 42

    def test_finish_before_start_rejected(self):
        tracer = SpanTracer()
        sid = tracer.start("blocking", 5.0)
        with pytest.raises(ValueError):
            tracer.finish(sid, 4.0)
        with pytest.raises(ValueError):
            tracer.record("blocking", 5.0, 4.0)

    def test_close_truncates_open_spans(self):
        tracer = SpanTracer()
        a = tracer.start("overload", 1.0)
        b = tracer.start("quarantine", 2.0)
        tracer.finish(a, 3.0)
        assert tracer.close(10.0) == 1
        span = tracer.spans[b]
        assert span.end == 10.0
        assert span.attrs["truncated"] is True
        # Idempotent: nothing left open.
        assert tracer.close(11.0) == 0

    def test_close_never_moves_end_before_start(self):
        tracer = SpanTracer()
        sid = tracer.start("overload", 5.0)
        tracer.close(3.0)
        assert tracer.spans[sid].end == 5.0

    def test_open_span_duration_raises(self):
        span = Span(span_id=0, kind="blocking", start=0.0)
        with pytest.raises(ValueError):
            _ = span.duration
        assert span.as_dict()["duration"] is None

    def test_by_kind_and_iteration(self):
        tracer = SpanTracer()
        tracer.record("blocking", 0.0, 1.0)
        tracer.record("overload", 0.0, 2.0)
        tracer.record("blocking", 1.0, 3.0)
        assert len(tracer) == 3
        assert [s.span_id for s in tracer.by_kind("blocking")] == [0, 2]
        assert [s.span_id for s in tracer] == [0, 1, 2]
        assert [d["kind"] for d in tracer.as_dicts()] == [
            "blocking", "overload", "blocking",
        ]
