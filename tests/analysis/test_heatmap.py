"""Unit tests for the clustering heatmap."""

import pytest

from repro.analysis.heatmap import ClusterHeatmap, canonical_labels


class TestCanonicalLabels:
    def test_labels_by_smallest_member(self):
        labels = canonical_labels([[0, 2], [1, 3]], 4)
        assert labels == [0, 1, 0, 1]

    def test_missing_channel_rejected(self):
        with pytest.raises(ValueError):
            canonical_labels([[0]], 2)

    def test_duplicate_channel_rejected(self):
        with pytest.raises(ValueError):
            canonical_labels([[0, 1], [1]], 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            canonical_labels([[0, 5]], 2)


class TestHeatmap:
    def make(self):
        heatmap = ClusterHeatmap(4)
        heatmap.add(0.0, [[0], [1], [2], [3]])
        heatmap.add(1.0, [[0, 1], [2], [3]])
        heatmap.add(2.0, [[0, 1], [2, 3]])
        heatmap.add(3.0, [[0, 1], [2, 3]])
        return heatmap

    def test_from_snapshots(self):
        heatmap = ClusterHeatmap.from_snapshots(
            [(0.0, [[0], [1]]), (1.0, [[0, 1]])], 2
        )
        assert len(heatmap.rows) == 2

    def test_final_clusters(self):
        assert self.make().final_clusters() == [[0, 1], [2, 3]]

    def test_switches_counted_per_channel(self):
        heatmap = self.make()
        assert heatmap.switches(1) == 1  # singleton -> cluster 0
        assert heatmap.switches(0) == 0  # label 0 throughout

    def test_last_switch_time(self):
        assert self.make().last_switch_time() == 2.0

    def test_no_switches(self):
        heatmap = ClusterHeatmap(2)
        heatmap.add(0.0, [[0, 1]])
        heatmap.add(1.0, [[0, 1]])
        assert heatmap.last_switch_time() is None

    def test_classes_at(self):
        heatmap = self.make()
        assert heatmap.classes_at(2) == {0: [0, 1], 2: [2, 3]}

    def test_render_produces_grid(self):
        text = self.make().render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in lines)

    def test_render_empty(self):
        assert "empty" in ClusterHeatmap(2).render()

    def test_needs_channels(self):
        with pytest.raises(ValueError):
            ClusterHeatmap(0)
