"""Unit tests for shape assertions."""

import pytest

from repro.analysis.shape import (
    ShapeError,
    assert_between,
    assert_faster,
    assert_monotone,
    ratio,
)


class TestRatio:
    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0

    def test_zero_denominator(self):
        assert ratio(1.0, 0.0) == float("inf")


class TestAssertFaster:
    def test_passes(self):
        assert_faster(1.0, 5.0, at_least=4.0)

    def test_fails_with_context(self):
        with pytest.raises(ShapeError, match="fig9"):
            assert_faster(1.0, 2.0, at_least=4.0, context="fig9")


class TestAssertBetween:
    def test_passes_inclusive(self):
        assert_between(1.0, 1.0, 2.0)
        assert_between(2.0, 1.0, 2.0)

    def test_fails(self):
        with pytest.raises(ShapeError):
            assert_between(3.0, 1.0, 2.0)


class TestAssertMonotone:
    def test_increasing(self):
        assert_monotone([1.0, 2.0, 2.0, 3.0])

    def test_decreasing(self):
        assert_monotone([3.0, 2.0, 1.0], increasing=False)

    def test_tolerance(self):
        assert_monotone([1.0, 0.99, 2.0], tolerance=0.05)

    def test_violation_reports_position(self):
        with pytest.raises(ShapeError, match=r"values\[1\]"):
            assert_monotone([1.0, 3.0, 2.0])
