"""Unit tests for text report rendering."""

from repro.analysis.report import render_series, render_weight_table, resample, sparkline
from repro.util.timeseries import TimeSeries


def series_of(points, name="s"):
    series = TimeSeries(name)
    for t, v in points:
        series.record(t, v)
    return series


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_zero_values_render_blank(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_peak_uses_densest_glyph(self):
        strip = sparkline([0.0, 1.0])
        assert strip[0] == " "
        assert strip[1] == "@"

    def test_fixed_maximum_scales(self):
        assert sparkline([1.0], maximum=10.0)[0] not in (" ", "@")


class TestResample:
    def test_even_sampling(self):
        series = series_of([(0.0, 1.0), (10.0, 2.0)])
        assert resample(series, 3) == [1.0, 1.0, 2.0]

    def test_single_point(self):
        series = series_of([(0.0, 7.0)])
        assert resample(series, 5) == [7.0]

    def test_empty_series(self):
        assert resample(TimeSeries(), 5) == []


class TestRenderers:
    def test_render_series_one_row_per_connection(self):
        a = series_of([(0.0, 0.0), (1.0, 1.0)])
        b = series_of([(0.0, 1.0), (1.0, 0.0)])
        text = render_series([a, b], title="rates", points=10)
        assert "rates" in text
        assert "conn  0" in text and "conn  1" in text

    def test_render_weight_table_percent(self):
        a = series_of([(0.0, 500.0)])
        text = render_weight_table([a], [0.0])
        assert "50.0%" in text

    def test_render_weight_table_raw(self):
        a = series_of([(0.0, 500.0)])
        text = render_weight_table([a], [0.0], as_percent=False)
        assert "500" in text
