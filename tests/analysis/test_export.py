"""Tests for JSON/CSV export of results."""

import csv
import dataclasses
import io
import json

from repro.analysis.export import (
    obs_audit_csv,
    obs_spans_csv,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
    series_from_dict,
    series_to_csv,
    series_to_dict,
    sweep_to_csv,
)
from repro.experiments.config import (
    ExperimentConfig,
    HostSpec,
    fault_recovery_scenario,
    overload_scenario,
)
from repro.experiments.results import SweepRow
from repro.experiments.runner import RunResult, run_experiment
from repro.util.timeseries import TimeSeries


def quick_result():
    config = ExperimentConfig(
        name="export-test",
        n_workers=2,
        tuple_cost=1_000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
        worker_host=[0, 0],
        duration=10.0,
        splitter_cost_multiplies=125.0,
    )
    return run_experiment(config, "lb-adaptive")


def series_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    return a.name == b.name and a.times == b.times and a.values == b.values


def assert_results_equal(a: RunResult, b: RunResult) -> None:
    """Field-by-field equality of two results (series compared by data)."""
    series_fields = {
        "throughput_series", "latency_series", "queue_series",
        "pending_series", "p99_latency_series",
    }
    series_list_fields = {"weight_series", "rate_series"}
    for f in dataclasses.fields(RunResult):
        x, y = getattr(a, f.name), getattr(b, f.name)
        if f.name in series_fields:
            assert series_equal(x, y), f.name
        elif f.name in series_list_fields:
            assert len(x) == len(y), f.name
            assert all(series_equal(p, q) for p, q in zip(x, y)), f.name
        elif f.name == "obs":
            if x is None or y is None:
                assert x is None and y is None, f.name
            else:
                assert x.as_dict() == y.as_dict(), f.name
        else:
            assert x == y, f.name


class TestResultExport:
    def test_round_trips_through_json(self):
        result = quick_result()
        parsed = json.loads(result_to_json(result))
        assert parsed["name"] == "export-test"
        assert parsed["policy"] == "lb-adaptive"
        assert parsed["n_workers"] == 2
        assert len(parsed["weights"]) == 2
        assert len(parsed["throughput"]["times"]) == len(
            parsed["throughput"]["values"]
        )

    def test_dict_contains_scalar_metrics(self):
        data = result_to_dict(quick_result())
        for key in ("final_throughput", "final_latency", "block_events",
                    "reroute_fraction", "emitted"):
            assert key in data

    def test_json_is_pure_builtin_types(self):
        # json.dumps would raise on anything exotic; indent path too.
        text = result_to_json(quick_result(), indent=2)
        assert text.startswith("{")


class TestSeriesRoundTrip:
    def test_round_trip(self):
        s = TimeSeries("demo")
        s.record(0.0, 1.5)
        s.record(2.0, -3.0)
        clone = series_from_dict(series_to_dict(s))
        assert series_equal(s, clone)

    def test_empty_series(self):
        clone = series_from_dict(series_to_dict(TimeSeries("empty")))
        assert clone.name == "empty"
        assert len(clone) == 0


class TestResultRoundTrip:
    """Every RunResult field must survive to_json -> from_json.

    This pins the fault/recovery scalars (PR 2), the overload scalars
    and optional series (PR 3), the batching diagnostics (PR 4), and
    the observability report (PR 5) — the fields most at risk of being
    silently dropped because the exporter predates them.
    """

    def test_plain_run(self):
        result = quick_result()
        assert_results_equal(result, RunResult.from_json(result.to_json()))

    def test_fault_recovery_run_keeps_recovery_fields(self):
        result = run_experiment(
            fault_recovery_scenario(duration=40.0), "lb-adaptive"
        )
        assert result.quarantines == 1  # the scenario did crash
        clone = RunResult.from_json(result.to_json())
        assert clone.quarantines == result.quarantines
        assert clone.time_to_quarantine == result.time_to_quarantine
        assert clone.time_to_reconverge == result.time_to_reconverge
        assert clone.tuples_replayed == result.tuples_replayed
        assert clone.tuples_lost == result.tuples_lost
        assert_results_equal(result, clone)

    def test_overload_run_keeps_overload_fields_and_series(self):
        result = run_experiment(
            overload_scenario(duration=30.0), "lb-adaptive"
        )
        assert result.tuples_offered > 0
        assert result.queue_series is not None
        clone = RunResult.from_json(result.to_json())
        assert clone.tuples_shed == result.tuples_shed
        assert clone.overload_seconds == result.overload_seconds
        assert series_equal(clone.queue_series, result.queue_series)
        assert series_equal(clone.pending_series, result.pending_series)
        assert series_equal(
            clone.p99_latency_series, result.p99_latency_series
        )
        assert_results_equal(result, clone)

    def test_observed_run_keeps_obs_report(self):
        result = run_experiment(
            fault_recovery_scenario(duration=30.0).with_observability(),
            "lb-adaptive",
        )
        assert result.obs is not None
        clone = RunResult.from_json(result.to_json())
        assert clone.obs.as_dict() == result.obs.as_dict()
        assert_results_equal(result, clone)

    def test_round_trip_is_stable(self):
        text = quick_result().to_json()
        assert RunResult.from_json(text).to_json() == text


class TestObsCsvHelpers:
    def test_unobserved_run_yields_empty(self):
        result = quick_result()
        assert obs_audit_csv(result) == ""
        assert obs_spans_csv(result) == ""

    def test_observed_run_yields_tables(self):
        result = run_experiment(
            fault_recovery_scenario(duration=30.0).with_observability(),
            "lb-adaptive",
        )
        audit = list(csv.reader(io.StringIO(obs_audit_csv(result))))
        spans = list(csv.reader(io.StringIO(obs_spans_csv(result))))
        assert audit[0][0] == "round"
        assert len(audit) == len(result.obs.audit) + 1
        assert spans[0][0] == "span_id"
        assert len(spans) == len(result.obs.spans) + 1


class TestSweepCsv:
    def test_rows_and_header(self):
        rows = [
            SweepRow(2, "oracle", 10.0, 100.0, normalized_time=1.0),
            SweepRow(2, "rr", None, 50.0),
        ]
        parsed = list(csv.reader(io.StringIO(sweep_to_csv(rows))))
        assert parsed[0][0] == "n_pes"
        assert parsed[1][:2] == ["2", "oracle"]
        assert parsed[2][2] == ""  # missing execution time


class TestSeriesCsv:
    def test_union_grid_and_step_values(self):
        a = TimeSeries("a")
        a.record(0.0, 1.0)
        a.record(2.0, 3.0)
        b = TimeSeries("b")
        b.record(1.0, 5.0)
        parsed = list(csv.reader(io.StringIO(series_to_csv([a, b]))))
        assert parsed[0] == ["time", "a", "b"]
        assert parsed[1] == ["0", "1", ""]  # b has no data yet
        assert parsed[2] == ["1", "1", "5"]  # a holds its step value
        assert parsed[3] == ["2", "3", "5"]
