"""Tests for JSON/CSV export of results."""

import csv
import io
import json

from repro.analysis.export import (
    result_to_dict,
    result_to_json,
    series_to_csv,
    sweep_to_csv,
)
from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.results import SweepRow
from repro.experiments.runner import run_experiment
from repro.util.timeseries import TimeSeries


def quick_result():
    config = ExperimentConfig(
        name="export-test",
        n_workers=2,
        tuple_cost=1_000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
        worker_host=[0, 0],
        duration=10.0,
        splitter_cost_multiplies=125.0,
    )
    return run_experiment(config, "lb-adaptive")


class TestResultExport:
    def test_round_trips_through_json(self):
        result = quick_result()
        parsed = json.loads(result_to_json(result))
        assert parsed["name"] == "export-test"
        assert parsed["policy"] == "lb-adaptive"
        assert parsed["n_workers"] == 2
        assert len(parsed["weights"]) == 2
        assert len(parsed["throughput"]["times"]) == len(
            parsed["throughput"]["values"]
        )

    def test_dict_contains_scalar_metrics(self):
        data = result_to_dict(quick_result())
        for key in ("final_throughput", "final_latency", "block_events",
                    "reroute_fraction", "emitted"):
            assert key in data

    def test_json_is_pure_builtin_types(self):
        # json.dumps would raise on anything exotic; indent path too.
        text = result_to_json(quick_result(), indent=2)
        assert text.startswith("{")


class TestSweepCsv:
    def test_rows_and_header(self):
        rows = [
            SweepRow(2, "oracle", 10.0, 100.0, normalized_time=1.0),
            SweepRow(2, "rr", None, 50.0),
        ]
        parsed = list(csv.reader(io.StringIO(sweep_to_csv(rows))))
        assert parsed[0][0] == "n_pes"
        assert parsed[1][:2] == ["2", "oracle"]
        assert parsed[2][2] == ""  # missing execution time


class TestSeriesCsv:
    def test_union_grid_and_step_values(self):
        a = TimeSeries("a")
        a.record(0.0, 1.0)
        a.record(2.0, 3.0)
        b = TimeSeries("b")
        b.record(1.0, 5.0)
        parsed = list(csv.reader(io.StringIO(series_to_csv([a, b]))))
        assert parsed[0] == ["time", "a", "b"]
        assert parsed[1] == ["0", "1", ""]  # b has no data yet
        assert parsed[2] == ["1", "1", "5"]  # a holds its step value
        assert parsed[3] == ["2", "3", "5"]
