"""Socket-layer batching: frame coalescing and the linear receive path.

``_FrameAssembler`` tests are pure in-memory regression tests (no sockets,
no wall clock): they pin down that consuming frames from a received chunk
copies a bounded number of bytes, where the old ``buffer = buffer[size:]``
loop copied the whole tail once per frame (quadratic). The sender tests
exercise ``send_batch``'s scatter-gather path on real socket pairs.
"""

import socket

import pytest

from repro.net.socket_transport import (
    BlockingSocketSender,
    PeerDeadError,
    SocketMiniRegion,
    _FrameAssembler,
)


class TestFrameAssembler:
    def test_whole_frames_consumed_per_feed(self):
        assembler = _FrameAssembler(4)
        assert assembler.feed(b"abcdefgh") == 2
        assert assembler.frames == 2

    def test_sub_frame_leftover_carries_to_next_feed(self):
        assembler = _FrameAssembler(4)
        assert assembler.feed(b"abcde") == 1
        assert assembler.feed(b"fgh") == 1, 'leftover "e" completes "efgh"'
        assert assembler.frames == 2

    def test_tiny_chunks_accumulate(self):
        assembler = _FrameAssembler(10)
        total = 0
        for _ in range(25):
            total += assembler.feed(b"xy")
        assert total == 5
        assert assembler.frames == 5

    def test_frame_size_validated(self):
        with pytest.raises(ValueError):
            _FrameAssembler(0)

    def test_copies_are_linear_not_quadratic(self):
        # The O(n^2) regression test. Feeding a chunk carrying F whole
        # frames must not copy per frame: compaction moves only the
        # sub-frame leftover, strictly less than frame_size bytes per
        # feed, regardless of how many frames the chunk completed. The
        # old slicing loop copied ~F * chunk_len / 2 bytes here.
        frame_size = 512
        frames_per_chunk = 128
        assembler = _FrameAssembler(frame_size)
        n_feeds = 10
        for i in range(n_feeds):
            # Misalign by one byte so compaction is actually exercised.
            chunk = bytes(frame_size * frames_per_chunk + 1)
            got = assembler.feed(chunk)
            assert got >= frames_per_chunk
            assert assembler.bytes_copied < frame_size * (i + 1)
        assert assembler.frames == n_feeds * frames_per_chunk
        # Aggregate bound: linear in feeds (bounded leftover each), vs
        # ~42 MB the quadratic loop would have moved for this workload.
        assert assembler.bytes_copied < frame_size * n_feeds

    def test_aligned_chunks_copy_nothing(self):
        assembler = _FrameAssembler(64)
        for _ in range(100):
            assembler.feed(bytes(64 * 16))
        assert assembler.frames == 1600
        assert assembler.bytes_copied == 0


def _sockets_available() -> bool:
    try:
        left, right = socket.socketpair()
        left.close()
        right.close()
        return True
    except OSError:
        return False


needs_sockets = pytest.mark.skipif(
    not _sockets_available(), reason="no socketpair support"
)


@needs_sockets
@pytest.mark.sockets
class TestSendBatch:
    def test_batch_arrives_intact(self):
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left)
            frames = [bytes([i]) * 32 for i in range(8)]
            sender.send_batch(frames)
            assert sender.frames_sent == 8
            right.settimeout(5.0)
            received = bytearray()
            while len(received) < 32 * 8:
                received += right.recv(4096)
            assert bytes(received) == b"".join(frames)
        finally:
            left.close()
            right.close()

    def test_empty_batch_is_a_no_op(self):
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left)
            sender.send_batch([])
            assert sender.frames_sent == 0
        finally:
            left.close()
            right.close()

    def test_partial_sends_complete_under_pressure(self):
        # Batch far larger than the kernel buffers: sendmsg accepts a
        # prefix, the sender must block and finish the remainder from the
        # right memoryview offset while a reader drains slowly.
        import threading

        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            # send_timeout so a regression fails loudly instead of hanging.
            sender = BlockingSocketSender(left, send_timeout=8.0)
            frames = [bytes([i % 256]) * 512 for i in range(64)]
            received = bytearray()

            def reader():
                right.settimeout(10.0)
                while len(received) < 512 * 64:
                    chunk = right.recv(65536)
                    if not chunk:
                        return
                    received.extend(chunk)

            thread = threading.Thread(target=reader, daemon=True)
            thread.start()
            sender.send_batch(frames)
            thread.join(timeout=10.0)
            assert sender.frames_sent == 64
            assert bytes(received) == b"".join(frames)
        finally:
            left.close()
            right.close()

    def test_batch_larger_than_iov_max(self):
        # Regression: handing the whole views list to one sendmsg fails
        # with EMSGSIZE beyond IOV_MAX buffers (1024 on Linux), which the
        # OSError clause misreported as a dead peer. The sender must
        # slice the iovec per call instead.
        import threading

        from repro.net.socket_transport import _IOV_MAX

        n_frames = _IOV_MAX + 200
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left, send_timeout=8.0)
            frames = [bytes([i % 256]) * 8 for i in range(n_frames)]
            received = bytearray()

            def reader():
                right.settimeout(10.0)
                while len(received) < 8 * n_frames:
                    chunk = right.recv(65536)
                    if not chunk:
                        return
                    received.extend(chunk)

            thread = threading.Thread(target=reader, daemon=True)
            thread.start()
            sender.send_batch(frames)
            thread.join(timeout=10.0)
            assert sender.frames_sent == n_frames
            assert bytes(received) == b"".join(frames)
        finally:
            left.close()
            right.close()

    def test_dead_peer_raises(self):
        left, right = socket.socketpair()
        right.close()
        try:
            sender = BlockingSocketSender(left)
            with pytest.raises(PeerDeadError):
                for _ in range(1000):
                    sender.send_batch([b"x" * 1024])
        finally:
            left.close()


@needs_sockets
@pytest.mark.sockets
class TestMiniRegionBatching:
    def test_weighted_batch_send_realizes_weights(self):
        with SocketMiniRegion([0.0, 0.0], frame_size=128) as region:
            region.send_weighted(120, [3, 1], batch_size=16)
            region.close()
            assert [w.processed for w in region.workers] == [90, 30]

    def test_batch_size_one_matches_per_frame_path(self):
        with SocketMiniRegion([0.0, 0.0], frame_size=128) as region:
            region.send_weighted(40, [1, 1], batch_size=1)
            region.close()
            assert [w.processed for w in region.workers] == [20, 20]

    def test_batch_size_validated(self):
        with SocketMiniRegion([0.0], frame_size=128) as region:
            with pytest.raises(ValueError):
                region.send_weighted(8, [1], batch_size=0)

    def test_worker_receive_path_uses_assembler(self):
        # Deliberately misaligned frame size vs kernel chunking: the
        # workers' assemblers must still count every frame exactly once
        # and stay linear (bounded leftover per feed).
        with SocketMiniRegion([0.0], frame_size=96) as region:
            region.send_weighted(500, [1], batch_size=8)
            region.close()
            worker = region.workers[0]
            assert worker.processed == 500
            assert worker.assembler.frames == 500
            assert worker.assembler.bytes_copied < 96 * 500
