"""Shutdown semantics of the real-socket mini region.

Close must be idempotent (the ``with``-block pattern closes twice on
error paths) and must surface stuck workers as the same
``RegionStalledError`` the simulated dataplane uses for a region with
no live channel.
"""

import socket
import threading

import pytest

from repro.net.socket_transport import SocketMiniRegion
from repro.streams.splitter import RegionStalledError


def _sockets_available() -> bool:
    try:
        left, right = socket.socketpair()
        left.close()
        right.close()
        return True
    except OSError:
        return False


pytestmark = [
    pytest.mark.sockets,
    pytest.mark.skipif(not _sockets_available(), reason="no socketpair support"),
]


class TestIdempotentClose:
    def test_double_close_is_a_noop(self):
        region = SocketMiniRegion([0.0001])
        region.close()
        region.close()  # second close: nothing to do, no error

    def test_close_after_with_block_is_safe(self):
        with SocketMiniRegion([0.0001]) as region:
            region.send_weighted(5, [1000])
        region.close()

    def test_worker_failure_raised_once_not_twice(self):
        region = SocketMiniRegion([0.0001])
        region.workers[0]._failure = ValueError("worker exploded")
        with pytest.raises(ValueError, match="worker exploded"):
            region.close()
        # __exit__-style second close: already reported, stays quiet.
        region.close()

    def test_with_block_survives_body_exception(self):
        # The body closes explicitly (raising), then __exit__ closes
        # again — the second close must not mask the original error.
        region = SocketMiniRegion([0.0001])
        region.workers[0]._failure = ValueError("worker exploded")
        with pytest.raises(ValueError, match="worker exploded"):
            with region:
                region.close()


class TestStuckWorkerStalls:
    def test_stuck_worker_raises_region_stalled(self):
        region = SocketMiniRegion([0.0001], join_timeout=0.1)
        stop = threading.Event()

        class Stuck(threading.Thread):
            def __init__(self, sock):
                super().__init__(daemon=True)
                self.sock = sock
                self._failure = None

            def run(self):
                stop.wait(10.0)

        stuck = Stuck(region.workers[0].sock)
        stuck.start()
        region.workers[0] = stuck
        try:
            with pytest.raises(RegionStalledError, match="did not exit"):
                region.close()
            region.close()  # still idempotent after the stall report
        finally:
            stop.set()
