"""Unit tests for the simulated connection (flow control, wakeups, delays)."""

import pytest

from repro.net.connection import SimulatedConnection
from repro.sim.engine import Simulator


def make_connection(sim=None, **kwargs):
    return SimulatedConnection(sim or Simulator(), 0, **kwargs)


class TestImmediateDelivery:
    def test_send_lands_in_receive_buffer(self):
        conn = make_connection()
        assert conn.send_nowait("t0")
        assert conn.recv_available() == 1
        assert conn.take() == "t0"

    def test_delivery_callback_fires(self):
        delivered = []
        conn = make_connection()
        conn.on_deliver = lambda: delivered.append(conn.recv_available())
        conn.send_nowait("t0")
        assert delivered == [1]

    def test_counters(self):
        conn = make_connection()
        conn.send_nowait("a")
        conn.send_nowait("b")
        assert conn.tuples_sent == 2
        assert conn.tuples_delivered == 2


class TestFlowControl:
    def test_send_buffer_backs_up_when_receiver_full(self):
        conn = make_connection(send_capacity=2, recv_capacity=2)
        for i in range(4):
            assert conn.send_nowait(i)
        assert not conn.can_send()
        assert not conn.send_nowait(99)
        assert conn.queued_tuples() == 4

    def test_take_cascades_through_both_buffers(self):
        conn = make_connection(send_capacity=2, recv_capacity=2)
        for i in range(4):
            conn.send_nowait(i)
        assert conn.take() == 0
        # One send-buffer tuple moved into the freed receive slot.
        assert conn.recv_available() == 2
        assert conn.can_send()

    def test_fifo_order_end_to_end(self):
        conn = make_connection(send_capacity=2, recv_capacity=2)
        accepted = [i for i in range(10) if conn.send_nowait(i)]
        received = []
        while conn.recv_available():
            received.append(conn.take())
        assert received == accepted


class TestSenderWakeup:
    def test_waiter_fires_when_space_frees(self):
        conn = make_connection(send_capacity=1, recv_capacity=1)
        conn.send_nowait("a")
        conn.send_nowait("b")
        woken = []
        conn.wait_for_send_space(lambda: woken.append(True))
        assert not woken
        conn.take()
        assert woken == [True]

    def test_waiter_is_one_shot(self):
        conn = make_connection(send_capacity=1, recv_capacity=1)
        conn.send_nowait("a")
        conn.send_nowait("b")
        woken = []
        conn.wait_for_send_space(lambda: woken.append(True))
        conn.take()
        conn.take()
        assert woken == [True]

    def test_double_wait_rejected(self):
        conn = make_connection(send_capacity=1, recv_capacity=1)
        conn.send_nowait("a")
        conn.send_nowait("b")
        conn.wait_for_send_space(lambda: None)
        with pytest.raises(RuntimeError):
            conn.wait_for_send_space(lambda: None)

    def test_wait_with_space_available_rejected(self):
        conn = make_connection()
        with pytest.raises(RuntimeError):
            conn.wait_for_send_space(lambda: None)


class TestWireDelay:
    def test_delayed_tuple_arrives_after_latency(self):
        sim = Simulator()
        conn = make_connection(sim, wire_delay=0.5)
        conn.send_nowait("t0")
        assert conn.recv_available() == 0
        sim.run_until(0.49)
        assert conn.recv_available() == 0
        sim.run_until(0.51)
        assert conn.recv_available() == 1

    def test_in_flight_tuples_reserve_receive_space(self):
        sim = Simulator()
        conn = make_connection(sim, send_capacity=8, recv_capacity=2, wire_delay=1.0)
        for i in range(4):
            conn.send_nowait(i)
        # Two in flight (reserved), two parked in the send buffer.
        assert conn.queued_tuples() == 4
        sim.run_until(2.0)
        assert conn.recv_available() == 2

    def test_order_preserved_with_delay(self):
        sim = Simulator()
        conn = make_connection(sim, wire_delay=0.1)
        for i in range(5):
            conn.send_nowait(i)
        sim.run_until(1.0)
        assert [conn.take() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            make_connection(wire_delay=-0.1)
