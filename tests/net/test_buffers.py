"""Unit tests for bounded buffers."""

import pytest

from repro.net.buffers import BoundedBuffer, BufferFullError


class TestBasicFifo:
    def test_push_pop_order(self):
        buf = BoundedBuffer(3)
        for item in ("a", "b", "c"):
            buf.push(item)
        assert [buf.pop(), buf.pop(), buf.pop()] == ["a", "b", "c"]

    def test_peek_does_not_remove(self):
        buf = BoundedBuffer(2)
        buf.push("x")
        assert buf.peek() == "x"
        assert len(buf) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedBuffer(1).pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedBuffer(1).peek()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedBuffer(0)


class TestCapacity:
    def test_try_push_respects_capacity(self):
        buf = BoundedBuffer(2)
        assert buf.try_push(1)
        assert buf.try_push(2)
        assert not buf.try_push(3)
        assert len(buf) == 2

    def test_push_raises_when_full(self):
        buf = BoundedBuffer(1)
        buf.push(1)
        with pytest.raises(BufferFullError):
            buf.push(2)

    def test_pop_frees_space(self):
        buf = BoundedBuffer(1)
        buf.push(1)
        buf.pop()
        assert buf.try_push(2)


class TestReservations:
    def test_reservation_counts_against_capacity(self):
        buf = BoundedBuffer(2)
        buf.reserve()
        buf.push("a")
        assert buf.is_full()
        assert not buf.try_push("b")

    def test_push_reserved_consumes_reservation(self):
        buf = BoundedBuffer(1)
        buf.reserve()
        buf.push_reserved("x")
        assert buf.reserved == 0
        assert buf.pop() == "x"

    def test_reserve_full_buffer_raises(self):
        buf = BoundedBuffer(1)
        buf.push("a")
        with pytest.raises(BufferFullError):
            buf.reserve()

    def test_push_reserved_without_reservation_raises(self):
        with pytest.raises(BufferFullError):
            BoundedBuffer(1).push_reserved("x")

    def test_free_slots_accounting(self):
        buf = BoundedBuffer(4)
        buf.push("a")
        buf.reserve()
        assert buf.free_slots == 2
