"""Unit tests for the cumulative blocking counter."""

import pytest

from repro.net.blocking import BlockingCounter


class TestAccumulation:
    def test_starts_at_zero(self):
        counter = BlockingCounter()
        assert counter.read() == 0.0
        assert counter.episodes == 0

    def test_add_accumulates(self):
        counter = BlockingCounter()
        counter.add(0.5)
        counter.add(0.25)
        assert counter.read() == pytest.approx(0.75)
        assert counter.episodes == 2

    def test_zero_duration_episode_counts(self):
        counter = BlockingCounter()
        counter.add(0.0)
        assert counter.episodes == 1

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BlockingCounter().add(-0.1)


class TestReset:
    def test_reset_clears_current_not_lifetime(self):
        counter = BlockingCounter()
        counter.add(1.0)
        counter.reset()
        assert counter.read() == 0.0
        assert counter.episodes == 0
        assert counter.lifetime_seconds == 1.0
        assert counter.lifetime_episodes == 1

    def test_accumulation_resumes_after_reset(self):
        counter = BlockingCounter()
        counter.add(1.0)
        counter.reset()
        counter.add(0.5)
        assert counter.read() == 0.5
        assert counter.lifetime_seconds == 1.5
