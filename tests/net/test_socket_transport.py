"""Integration tests for the real-socket transport.

These exercise real OS sockets (AF_UNIX socket pairs) and kernel buffers;
they are skipped automatically when the environment forbids sockets.
"""

import socket

import pytest

from repro.net.socket_transport import BlockingSocketSender, SocketMiniRegion


def _sockets_available() -> bool:
    try:
        left, right = socket.socketpair()
        left.close()
        right.close()
        return True
    except OSError:
        return False


pytestmark = [
    pytest.mark.sockets,
    pytest.mark.skipif(not _sockets_available(), reason="no socketpair support"),
]


class TestBlockingSocketSender:
    def test_send_without_pressure_records_no_blocking(self):
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left)
            sender.send(b"x" * 64)
            assert sender.frames_sent == 1
            assert sender.blocking.read() == 0.0
        finally:
            left.close()
            right.close()

    def test_try_send_reports_would_block(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024
            blocked = False
            for _ in range(1000):
                if not sender.try_send(frame):
                    blocked = True
                    break
            assert blocked, "kernel buffers never filled"
            assert sender.blocking.read() == 0.0  # try_send never blocks
        finally:
            left.close()
            right.close()

    def test_send_blocks_and_records_time(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024

            import threading

            def slow_reader():
                import time

                received = 0
                while received < 64 * 1024:
                    time.sleep(0.002)
                    try:
                        received += len(right.recv(4096))
                    except OSError:
                        return

            reader = threading.Thread(target=slow_reader, daemon=True)
            reader.start()
            for _ in range(64):
                sender.send(frame)
            assert sender.blocking.lifetime_episodes > 0
            assert sender.blocking.lifetime_seconds > 0.0
        finally:
            left.close()
            right.close()


class TestSocketMiniRegion:
    def test_blocking_concentrates_on_slow_worker(self):
        with SocketMiniRegion([0.0002, 0.004]) as region:
            region.send_weighted(300, [500, 500])
            blocked = [c.lifetime_seconds for c in region.blocking_counters]
        assert blocked[1] > blocked[0]

    def test_even_capacity_small_blocking(self):
        with SocketMiniRegion([0.0002, 0.0002]) as region:
            region.send_weighted(200, [500, 500])
            total = sum(c.lifetime_seconds for c in region.blocking_counters)
        # Workers keep up with the sender; blocking should be minimal.
        assert total < 1.0

    def test_rejects_empty_worker_list(self):
        with pytest.raises(ValueError):
            SocketMiniRegion([])
