"""Integration tests for the real-socket transport.

These exercise real OS sockets (AF_UNIX socket pairs) and kernel buffers;
they are skipped automatically when the environment forbids sockets.
"""

import random
import socket
import threading
import time

import pytest

from repro.net.socket_transport import (
    BlockingSocketSender,
    PeerDeadError,
    RegionStalledError,
    SendTimeoutError,
    SocketMiniRegion,
    connect_with_backoff,
)


def _sockets_available() -> bool:
    try:
        left, right = socket.socketpair()
        left.close()
        right.close()
        return True
    except OSError:
        return False


pytestmark = [
    pytest.mark.sockets,
    pytest.mark.skipif(not _sockets_available(), reason="no socketpair support"),
]


class TestBlockingSocketSender:
    def test_send_without_pressure_records_no_blocking(self):
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left)
            sender.send(b"x" * 64)
            assert sender.frames_sent == 1
            assert sender.blocking.read() == 0.0
        finally:
            left.close()
            right.close()

    def test_try_send_reports_would_block(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024
            blocked = False
            for _ in range(1000):
                if not sender.try_send(frame):
                    blocked = True
                    break
            assert blocked, "kernel buffers never filled"
            assert sender.blocking.read() == 0.0  # try_send never blocks
        finally:
            left.close()
            right.close()

    def test_send_blocks_and_records_time(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024

            import threading

            def slow_reader():
                import time

                received = 0
                while received < 64 * 1024:
                    time.sleep(0.002)
                    try:
                        received += len(right.recv(4096))
                    except OSError:
                        return

            reader = threading.Thread(target=slow_reader, daemon=True)
            reader.start()
            for _ in range(64):
                sender.send(frame)
            assert sender.blocking.lifetime_episodes > 0
            assert sender.blocking.lifetime_seconds > 0.0
        finally:
            left.close()
            right.close()


def _fill(sender: BlockingSocketSender, frame: bytes) -> None:
    """Fill the kernel buffers until a send would block."""
    for _ in range(10_000):
        if not sender.try_send(frame):
            return
    raise AssertionError("kernel buffers never filled")


def _small_pair() -> tuple[socket.socket, socket.socket]:
    left, right = socket.socketpair()
    for sock in (left, right):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
    return left, right


class TestBoundedWait:
    """The hardened ``_wait_writable``: bounded polls, timeout, peer death."""

    def test_send_timeout_raises_instead_of_hanging(self):
        left, right = _small_pair()
        try:
            sender = BlockingSocketSender(left, send_timeout=0.1)
            frame = b"x" * 1024
            _fill(sender, frame)
            started = time.monotonic()
            with pytest.raises(SendTimeoutError):
                sender.send(frame)  # nobody reads: must give up, not hang
            elapsed = time.monotonic() - started
            assert 0.05 <= elapsed < 5.0
        finally:
            left.close()
            right.close()

    def test_timed_out_wait_still_charges_blocking(self):
        left, right = _small_pair()
        try:
            sender = BlockingSocketSender(left, send_timeout=0.05)
            frame = b"x" * 1024
            _fill(sender, frame)
            with pytest.raises(SendTimeoutError):
                sender.send(frame)
            assert sender.blocking.lifetime_seconds >= 0.04
        finally:
            left.close()
            right.close()

    def test_backoff_poll_interval_is_bounded(self):
        sender = BlockingSocketSender(
            socket.socket(socket.AF_UNIX, socket.SOCK_STREAM),
            poll_start=0.001,
            poll_max=0.02,
        )
        try:
            assert sender.poll_start == pytest.approx(0.001)
            assert sender.poll_max == pytest.approx(0.02)
            with pytest.raises(ValueError):
                BlockingSocketSender(
                    socket.socket(socket.AF_UNIX, socket.SOCK_STREAM),
                    poll_start=0.0,
                )
        finally:
            sender.sock.close()

    def test_peer_close_raises_peer_dead(self):
        left, right = _small_pair()
        sender = BlockingSocketSender(left)
        frame = b"x" * 1024
        try:
            right.close()
            # The peer is gone: EPIPE on send must surface as PeerDeadError,
            # not BrokenPipeError escaping raw (send may need a couple of
            # attempts before the kernel reports the death).
            with pytest.raises(PeerDeadError):
                for _ in range(100):
                    sender.send(frame)
        finally:
            left.close()

    def test_reconnect_resumes_and_keeps_counters(self):
        left, right = _small_pair()
        sender = BlockingSocketSender(left)
        sender.send(b"x" * 64)
        frames_before = sender.frames_sent
        right.close()
        with pytest.raises(PeerDeadError):
            for _ in range(100):
                sender.send(b"x" * 64)
        new_left, new_right = _small_pair()
        try:
            sender.replace_socket(new_left)
            sender.send(b"y" * 64)
            assert new_right.recv(64) == b"y" * 64
            assert sender.frames_sent > frames_before
        finally:
            new_left.close()
            new_right.close()


class TestSocketMiniRegion:
    def test_blocking_concentrates_on_slow_worker(self):
        with SocketMiniRegion([0.0002, 0.004]) as region:
            region.send_weighted(300, [500, 500])
            blocked = [c.lifetime_seconds for c in region.blocking_counters]
        assert blocked[1] > blocked[0]

    def test_even_capacity_small_blocking(self):
        with SocketMiniRegion([0.0002, 0.0002]) as region:
            region.send_weighted(200, [500, 500])
            total = sum(c.lifetime_seconds for c in region.blocking_counters)
        # Workers keep up with the sender; blocking should be minimal.
        assert total < 1.0

    def test_rejects_empty_worker_list(self):
        with pytest.raises(ValueError):
            SocketMiniRegion([])

    def test_close_reraises_worker_failure(self):
        region = SocketMiniRegion([0.0001])
        boom = ValueError("worker exploded")
        region.workers[0]._failure = boom
        with pytest.raises(ValueError, match="worker exploded"):
            region.close()

    def test_close_reports_stuck_worker(self):
        import threading

        region = SocketMiniRegion([0.0001], join_timeout=0.1)
        # Replace worker 0 with a thread that ignores shutdown entirely.
        stop = threading.Event()

        class Stuck(threading.Thread):
            def __init__(self, sock):
                super().__init__(daemon=True)
                self.sock = sock
                self._failure = None

            def run(self):
                stop.wait(10.0)

        stuck = Stuck(region.workers[0].sock)
        stuck.start()
        region.workers[0] = stuck
        try:
            with pytest.raises(RuntimeError, match="did not exit"):
                region.close()
        finally:
            stop.set()


class _IgnoreShutdown(threading.Thread):
    """A stand-in worker that ignores shutdown until told to stop."""

    def __init__(self, sock, stop: threading.Event):
        super().__init__(daemon=True)
        self.sock = sock
        self._failure = None
        self._stop = stop

    def run(self):
        self._stop.wait(10.0)


class TestCloseAggregation:
    """close() must gather *every* stuck/dead worker before raising."""

    def test_all_stuck_workers_are_listed(self):
        stop = threading.Event()
        region = SocketMiniRegion([0.0001] * 3, join_timeout=0.1)
        for index in (0, 2):
            stuck = _IgnoreShutdown(region.workers[index].sock, stop)
            stuck.start()
            region.workers[index] = stuck
        try:
            with pytest.raises(
                RegionStalledError, match=r"workers \[0, 2\] did not exit"
            ):
                region.close()
        finally:
            stop.set()

    def test_stuck_and_dead_aggregate_into_one_error(self):
        stop = threading.Event()
        region = SocketMiniRegion([0.0001] * 3, join_timeout=0.1)
        stuck = _IgnoreShutdown(region.workers[0].sock, stop)
        stuck.start()
        region.workers[0] = stuck
        region.workers[2]._failure = ValueError("worker exploded")
        try:
            with pytest.raises(RegionStalledError) as excinfo:
                region.close()
        finally:
            stop.set()
        message = str(excinfo.value)
        assert "workers [0] did not exit" in message
        assert "worker 2 died with ValueError: worker exploded" in message

    def test_multiple_dead_workers_all_named(self):
        region = SocketMiniRegion([0.0001] * 3)
        region.workers[0]._failure = ValueError("first")
        region.workers[1]._failure = KeyError("second")
        with pytest.raises(RegionStalledError) as excinfo:
            region.close()
        message = str(excinfo.value)
        assert "worker 0 died with ValueError: first" in message
        assert "worker 1 died with KeyError" in message

    def test_second_close_is_a_noop_after_failure(self):
        region = SocketMiniRegion([0.0001])
        region.workers[0]._failure = ValueError("once")
        with pytest.raises(ValueError):
            region.close()
        region.close()  # with-block double close: reported once, not twice


class TestConnectWithBackoff:
    def test_succeeds_once_listener_appears(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        # Not listening yet: the first dials get ECONNREFUSED.
        accepted = []

        def listen_late():
            time.sleep(0.15)
            listener.listen(1)
            conn, _ = listener.accept()
            accepted.append(conn)

        helper = threading.Thread(target=listen_late, daemon=True)
        helper.start()
        sock = connect_with_backoff(
            lambda: socket.create_connection(("127.0.0.1", port)),
            deadline=5.0,
            backoff_start=0.02,
            rng=random.Random(7),
        )
        helper.join(timeout=5.0)
        try:
            assert accepted, "listener never accepted the dial"
        finally:
            sock.close()
            for conn in accepted:
                conn.close()
            listener.close()

    def test_deadline_exhaustion_raises_peer_dead(self):
        # A bound-but-never-listening port refuses every dial.
        blackhole = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blackhole.bind(("127.0.0.1", 0))
        port = blackhole.getsockname()[1]
        started = time.monotonic()
        try:
            with pytest.raises(
                PeerDeadError, match="could not connect within 0.3s"
            ):
                connect_with_backoff(
                    lambda: socket.create_connection(
                        ("127.0.0.1", port), timeout=0.2
                    ),
                    deadline=0.3,
                    backoff_start=0.01,
                    backoff_max=0.05,
                    rng=random.Random(7),
                )
        finally:
            blackhole.close()
        assert time.monotonic() - started < 5.0

    def test_rejects_bad_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            connect_with_backoff(
                lambda: (_ for _ in ()).throw(OSError()), jitter=1.5
            )

    def test_sender_reconnect_uses_backoff(self):
        left, right = _small_pair()
        sender = BlockingSocketSender(left)
        sender.send(b"x" * 64)
        frames_before = sender.frames_sent
        right.close()
        with pytest.raises(PeerDeadError):
            for _ in range(100):
                sender.send(b"x" * 64)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        accepted = []

        def listen_late():
            time.sleep(0.1)
            listener.listen(1)
            conn, _ = listener.accept()
            accepted.append(conn)

        helper = threading.Thread(target=listen_late, daemon=True)
        helper.start()
        try:
            sender.reconnect(
                lambda: socket.create_connection(("127.0.0.1", port)),
                deadline=5.0,
                rng=random.Random(3),
            )
            helper.join(timeout=5.0)
            sender.send(b"y" * 64)
            assert accepted[0].recv(64) == b"y" * 64
            assert sender.frames_sent > frames_before
        finally:
            sender.sock.close()
            for conn in accepted:
                conn.close()
            listener.close()
