"""Integration tests for the real-socket transport.

These exercise real OS sockets (AF_UNIX socket pairs) and kernel buffers;
they are skipped automatically when the environment forbids sockets.
"""

import socket
import time

import pytest

from repro.net.socket_transport import (
    BlockingSocketSender,
    PeerDeadError,
    SendTimeoutError,
    SocketMiniRegion,
)


def _sockets_available() -> bool:
    try:
        left, right = socket.socketpair()
        left.close()
        right.close()
        return True
    except OSError:
        return False


pytestmark = [
    pytest.mark.sockets,
    pytest.mark.skipif(not _sockets_available(), reason="no socketpair support"),
]


class TestBlockingSocketSender:
    def test_send_without_pressure_records_no_blocking(self):
        left, right = socket.socketpair()
        try:
            sender = BlockingSocketSender(left)
            sender.send(b"x" * 64)
            assert sender.frames_sent == 1
            assert sender.blocking.read() == 0.0
        finally:
            left.close()
            right.close()

    def test_try_send_reports_would_block(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024
            blocked = False
            for _ in range(1000):
                if not sender.try_send(frame):
                    blocked = True
                    break
            assert blocked, "kernel buffers never filled"
            assert sender.blocking.read() == 0.0  # try_send never blocks
        finally:
            left.close()
            right.close()

    def test_send_blocks_and_records_time(self):
        left, right = socket.socketpair()
        try:
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
            sender = BlockingSocketSender(left)
            frame = b"x" * 1024

            import threading

            def slow_reader():
                import time

                received = 0
                while received < 64 * 1024:
                    time.sleep(0.002)
                    try:
                        received += len(right.recv(4096))
                    except OSError:
                        return

            reader = threading.Thread(target=slow_reader, daemon=True)
            reader.start()
            for _ in range(64):
                sender.send(frame)
            assert sender.blocking.lifetime_episodes > 0
            assert sender.blocking.lifetime_seconds > 0.0
        finally:
            left.close()
            right.close()


def _fill(sender: BlockingSocketSender, frame: bytes) -> None:
    """Fill the kernel buffers until a send would block."""
    for _ in range(10_000):
        if not sender.try_send(frame):
            return
    raise AssertionError("kernel buffers never filled")


def _small_pair() -> tuple[socket.socket, socket.socket]:
    left, right = socket.socketpair()
    for sock in (left, right):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 2048)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
    return left, right


class TestBoundedWait:
    """The hardened ``_wait_writable``: bounded polls, timeout, peer death."""

    def test_send_timeout_raises_instead_of_hanging(self):
        left, right = _small_pair()
        try:
            sender = BlockingSocketSender(left, send_timeout=0.1)
            frame = b"x" * 1024
            _fill(sender, frame)
            started = time.monotonic()
            with pytest.raises(SendTimeoutError):
                sender.send(frame)  # nobody reads: must give up, not hang
            elapsed = time.monotonic() - started
            assert 0.05 <= elapsed < 5.0
        finally:
            left.close()
            right.close()

    def test_timed_out_wait_still_charges_blocking(self):
        left, right = _small_pair()
        try:
            sender = BlockingSocketSender(left, send_timeout=0.05)
            frame = b"x" * 1024
            _fill(sender, frame)
            with pytest.raises(SendTimeoutError):
                sender.send(frame)
            assert sender.blocking.lifetime_seconds >= 0.04
        finally:
            left.close()
            right.close()

    def test_backoff_poll_interval_is_bounded(self):
        sender = BlockingSocketSender(
            socket.socket(socket.AF_UNIX, socket.SOCK_STREAM),
            poll_start=0.001,
            poll_max=0.02,
        )
        try:
            assert sender.poll_start == pytest.approx(0.001)
            assert sender.poll_max == pytest.approx(0.02)
            with pytest.raises(ValueError):
                BlockingSocketSender(
                    socket.socket(socket.AF_UNIX, socket.SOCK_STREAM),
                    poll_start=0.0,
                )
        finally:
            sender.sock.close()

    def test_peer_close_raises_peer_dead(self):
        left, right = _small_pair()
        sender = BlockingSocketSender(left)
        frame = b"x" * 1024
        try:
            right.close()
            # The peer is gone: EPIPE on send must surface as PeerDeadError,
            # not BrokenPipeError escaping raw (send may need a couple of
            # attempts before the kernel reports the death).
            with pytest.raises(PeerDeadError):
                for _ in range(100):
                    sender.send(frame)
        finally:
            left.close()

    def test_reconnect_resumes_and_keeps_counters(self):
        left, right = _small_pair()
        sender = BlockingSocketSender(left)
        sender.send(b"x" * 64)
        frames_before = sender.frames_sent
        right.close()
        with pytest.raises(PeerDeadError):
            for _ in range(100):
                sender.send(b"x" * 64)
        new_left, new_right = _small_pair()
        try:
            sender.replace_socket(new_left)
            sender.send(b"y" * 64)
            assert new_right.recv(64) == b"y" * 64
            assert sender.frames_sent > frames_before
        finally:
            new_left.close()
            new_right.close()


class TestSocketMiniRegion:
    def test_blocking_concentrates_on_slow_worker(self):
        with SocketMiniRegion([0.0002, 0.004]) as region:
            region.send_weighted(300, [500, 500])
            blocked = [c.lifetime_seconds for c in region.blocking_counters]
        assert blocked[1] > blocked[0]

    def test_even_capacity_small_blocking(self):
        with SocketMiniRegion([0.0002, 0.0002]) as region:
            region.send_weighted(200, [500, 500])
            total = sum(c.lifetime_seconds for c in region.blocking_counters)
        # Workers keep up with the sender; blocking should be minimal.
        assert total < 1.0

    def test_rejects_empty_worker_list(self):
        with pytest.raises(ValueError):
            SocketMiniRegion([])

    def test_close_reraises_worker_failure(self):
        region = SocketMiniRegion([0.0001])
        boom = ValueError("worker exploded")
        region.workers[0]._failure = boom
        with pytest.raises(ValueError, match="worker exploded"):
            region.close()

    def test_close_reports_stuck_worker(self):
        import threading

        region = SocketMiniRegion([0.0001], join_timeout=0.1)
        # Replace worker 0 with a thread that ignores shutdown entirely.
        stop = threading.Event()

        class Stuck(threading.Thread):
            def __init__(self, sock):
                super().__init__(daemon=True)
                self.sock = sock
                self._failure = None

            def run(self):
                stop.wait(10.0)

        stuck = Stuck(region.workers[0].sock)
        stuck.start()
        region.workers[0] = stuck
        try:
            with pytest.raises(RuntimeError, match="did not exit"):
                region.close()
        finally:
            stop.set()
