"""Unit tests for the typed message framing and torn-frame edges.

Covers both assemblers: :class:`repro.net.framing.MessageAssembler`
(variable-length typed messages, the process dataplane's wire format)
and the fixed-size :class:`repro.net.socket_transport._FrameAssembler`.
The torn-frame cases — EOF mid-header, EOF mid-payload, 1-byte-at-a-time
feeds — must either yield exactly the frames that were sent or raise a
clean truncated-stream error; silent tail loss is the bug these tests
pin down.
"""

import struct

import pytest

from repro.net import framing
from repro.net.framing import (
    MessageAssembler,
    TruncatedStreamError,
)
from repro.net.socket_transport import _FrameAssembler


def _all_messages() -> list[bytes]:
    return [
        framing.encode_hello(3, 7),
        framing.encode_data(42, 0.125, b"payload"),
        framing.encode_result(42, 0.5, b"payload"),
        framing.encode_heartbeat(100, 7),
        framing.encode_control(2.5),
        framing.encode_eos(),
        framing.encode_bye(100),
        framing.encode_data_batch([(7, 0.25, b"a"), (9, 0.5, b"bb")]),
        framing.encode_result_batch([(7, 0.25, b"a"), (9, 0.5, b"bb")]),
    ]


class TestMessageRoundTrip:
    def test_every_type_round_trips(self):
        assembler = MessageAssembler()
        messages = assembler.feed(b"".join(_all_messages()))
        assert [m.type for m in messages] == [
            framing.MSG_HELLO,
            framing.MSG_DATA,
            framing.MSG_RESULT,
            framing.MSG_HEARTBEAT,
            framing.MSG_CONTROL,
            framing.MSG_EOS,
            framing.MSG_BYE,
            framing.MSG_DATA_BATCH,
            framing.MSG_RESULT_BATCH,
        ]
        assert messages[0].hello() == (3, 7)
        assert messages[1].data() == (42, 0.125, b"payload")
        assert messages[2].result() == (42, 0.5, b"payload")
        assert messages[3].heartbeat() == (100, 7)
        assert messages[4].control() == 2.5
        assert messages[5].payload == b""
        assert messages[6].bye() == 100
        assert messages[7].data_batch() == [(7, 0.25, b"a"), (9, 0.5, b"bb")]
        assert messages[8].result_batch() == [(7, 0.25, b"a"), (9, 0.5, b"bb")]

    def test_one_byte_at_a_time_yields_identical_messages(self):
        wire = b"".join(_all_messages())
        whole = MessageAssembler().feed(wire)
        dribble = MessageAssembler()
        out = []
        for i in range(len(wire)):
            out.extend(dribble.feed(wire[i:i + 1]))
        assert out == whole
        dribble.eof()  # clean boundary: no complaint

    def test_random_chunk_boundaries(self):
        wire = b"".join(_all_messages()) * 3
        whole = MessageAssembler().feed(wire)
        for step in (2, 3, 5, 7, 11):
            assembler = MessageAssembler()
            out = []
            for i in range(0, len(wire), step):
                out.extend(assembler.feed(wire[i:i + step]))
            assert out == whole, f"chunk step {step} diverged"

    def test_counts_and_pending(self):
        assembler = MessageAssembler()
        frame = framing.encode_data(1, 0.0, b"x" * 10)
        assembler.feed(frame[:7])
        assert assembler.messages == 0
        assert assembler.pending_bytes == 7
        assembler.feed(frame[7:])
        assert assembler.messages == 1
        assert assembler.pending_bytes == 0


class TestMessageAssemblerTruncation:
    def test_eof_mid_header_raises(self):
        assembler = MessageAssembler()
        assembler.feed(framing.encode_eos() + b"\x02\x00")
        with pytest.raises(TruncatedStreamError, match="2 bytes stranded"):
            assembler.eof()

    def test_eof_mid_payload_raises(self):
        assembler = MessageAssembler()
        frame = framing.encode_data(9, 1.0, b"abcdef")
        assembler.feed(frame[:-1])
        with pytest.raises(
            TruncatedStreamError, match="after 0 complete messages"
        ):
            assembler.eof()

    def test_eof_on_boundary_is_clean(self):
        assembler = MessageAssembler()
        assembler.feed(framing.encode_bye(5))
        assembler.eof()

    def test_feed_after_eof_raises(self):
        assembler = MessageAssembler()
        assembler.eof()
        with pytest.raises(TruncatedStreamError, match="feed after eof"):
            assembler.feed(b"x")

    def test_unknown_type_byte_is_desync(self):
        assembler = MessageAssembler()
        with pytest.raises(TruncatedStreamError, match="desynchronized"):
            assembler.feed(struct.pack("!BI", 99, 4) + b"oops")

    def test_absurd_length_is_desync(self):
        assembler = MessageAssembler()
        header = struct.pack(
            "!BI", framing.MSG_DATA, framing.MAX_PAYLOAD + 1
        )
        with pytest.raises(TruncatedStreamError, match="desynchronized"):
            assembler.feed(header)

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ValueError, match="exceeds MAX_PAYLOAD"):
            framing.encode(
                framing.MSG_DATA, b"\x00" * (framing.MAX_PAYLOAD + 1)
            )


class TestBatchFrames:
    """DATA_BATCH / RESULT_BATCH columnar frames (the batched wire)."""

    ENTRIES = [
        (1000, 0.001, b"alpha"),
        (1001, 0.002, b""),
        (1004, 0.004, b"x" * 300),
        (1002, 0.0, b"out-of-order replay"),
    ]

    def test_data_batch_round_trip(self):
        frame = framing.encode_data_batch(self.ENTRIES)
        [message] = MessageAssembler().feed(frame)
        assert message.type == framing.MSG_DATA_BATCH
        assert message.data_batch() == self.ENTRIES

    def test_result_batch_round_trip(self):
        frame = framing.encode_result_batch(self.ENTRIES)
        [message] = MessageAssembler().feed(frame)
        assert message.type == framing.MSG_RESULT_BATCH
        assert message.result_batch() == self.ENTRIES

    def test_single_entry_batch_round_trips(self):
        frame = framing.encode_data_batch([(0, 1.5, b"only")])
        [message] = MessageAssembler().feed(frame)
        assert message.data_batch() == [(0, 1.5, b"only")]

    def test_non_monotonic_seqs_survive(self):
        # Replay interleaves old seqs into a fresh run; the base is the
        # minimum, not the first, so order inside the run is free.
        entries = [(500, 0.1, b"new"), (3, 0.2, b"replayed")]
        frame = framing.encode_result_batch(entries)
        [message] = MessageAssembler().feed(frame)
        assert message.result_batch() == entries

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one entry"):
            framing.encode_data_batch([])

    def test_seq_spread_beyond_u32_rejected(self):
        entries = [(0, 0.0, b""), (1 << 32, 0.0, b"")]
        with pytest.raises(ValueError, match="seq spread"):
            framing.encode_data_batch(entries)

    def test_zero_count_payload_raises(self):
        wire = framing.encode(
            framing.MSG_DATA_BATCH, struct.pack("!QI", 0, 0)
        )
        [message] = MessageAssembler().feed(wire)
        with pytest.raises(TruncatedStreamError):
            message.data_batch()

    def test_truncated_columns_raise(self):
        frame = framing.encode_data_batch(self.ENTRIES)
        [message] = MessageAssembler().feed(frame)
        # Chop the payload mid-column and re-wrap: decode must refuse.
        for cut in (9, 13, 21, len(message.payload) - 1):
            mangled = framing.encode(
                framing.MSG_DATA_BATCH, message.payload[:cut]
            )
            [broken] = MessageAssembler().feed(mangled)
            with pytest.raises(TruncatedStreamError):
                broken.data_batch()

    def test_trailing_garbage_raises(self):
        frame = framing.encode_data_batch([(5, 0.5, b"ok")])
        [message] = MessageAssembler().feed(frame)
        mangled = framing.encode(
            framing.MSG_DATA_BATCH, message.payload + b"junk"
        )
        [broken] = MessageAssembler().feed(mangled)
        with pytest.raises(TruncatedStreamError, match="bodies mismatch"):
            broken.data_batch()

    def test_max_size_batch_torn_at_every_byte_boundary(self):
        # The largest frame the worker ever flushes: a full cumulative
        # RESULT_BATCH run. Split the wire bytes at every boundary and
        # assert the assembler reunites each half into the same batch.
        from repro.proc.worker import RESULT_FLUSH_MAX

        entries = [
            (i * 3, i * 0.25, bytes([i & 0xFF]) * (i % 7))
            for i in range(RESULT_FLUSH_MAX)
        ]
        wire = framing.encode_result_batch(entries)
        expect = MessageAssembler().feed(wire)
        assert expect[0].result_batch() == entries
        for cut in range(1, len(wire)):
            assembler = MessageAssembler()
            out = assembler.feed(wire[:cut])
            out += assembler.feed(wire[cut:])
            assert out == expect, f"torn at byte {cut} diverged"
            assembler.eof()


class TestFrameAssemblerTornFrames:
    """The fixed-size assembler's torn-frame edges (satellite #3)."""

    def test_one_byte_at_a_time_yields_exact_frames(self):
        assembler = _FrameAssembler(frame_size=8)
        wire = b"ABCDEFGH" + b"12345678" + b"abcdefgh"
        completed = [assembler.feed(wire[i:i + 1]) for i in range(len(wire))]
        assert sum(completed) == 3
        assert assembler.frames == 3
        # Frames complete exactly on every 8th byte, never elsewhere.
        assert [i for i, c in enumerate(completed) if c] == [7, 15, 23]
        assembler.eof()  # clean boundary

    def test_eof_mid_frame_raises_with_counts(self):
        assembler = _FrameAssembler(frame_size=8)
        assembler.feed(b"ABCDEFGH" + b"123")
        with pytest.raises(
            ConnectionError, match=r"3 of 8 bytes after 1 whole frames"
        ):
            assembler.eof()

    def test_eof_with_no_partial_bytes_is_clean(self):
        assembler = _FrameAssembler(frame_size=4)
        assert assembler.feed(b"wxyz") == 1
        assembler.eof()

    def test_eof_on_empty_stream_is_clean(self):
        _FrameAssembler(frame_size=16).eof()

    def test_eof_one_byte_short_of_first_frame(self):
        assembler = _FrameAssembler(frame_size=4)
        assembler.feed(b"abc")
        with pytest.raises(
            ConnectionError, match="3 of 4 bytes after 0 whole frames"
        ):
            assembler.eof()

    def test_eof_error_is_a_truncated_stream_error(self):
        assembler = _FrameAssembler(frame_size=4)
        assembler.feed(b"ab")
        with pytest.raises(TruncatedStreamError):
            assembler.eof()
