"""Unit tests for the declarative fault schedules."""

import pytest

from repro.faults import (
    CountCrashEvent,
    CrashEvent,
    FaultSchedule,
    SlowdownEvent,
    StallEvent,
)


class TestEventValidation:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(ValueError):
            CrashEvent(-1.0, 0)

    def test_crash_rejects_negative_worker(self):
        with pytest.raises(ValueError):
            CrashEvent(1.0, -1)

    def test_crash_rejects_nonpositive_restart(self):
        with pytest.raises(ValueError):
            CrashEvent(1.0, 0, restart_after=0.0)

    def test_stall_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            StallEvent(1.0, 0, duration=-2.0)

    def test_slowdown_rejects_nonpositive_multiplier(self):
        with pytest.raises(ValueError):
            SlowdownEvent(1.0, "h0", 0.0)

    def test_count_crash_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            CountCrashEvent(0, 0)


class TestSchedule:
    def test_none_is_empty(self):
        assert FaultSchedule.none().empty()

    def test_constructors_populate(self):
        assert not FaultSchedule.crash(1, at=5.0).empty()
        assert not FaultSchedule.stall_flap(0, at=1.0, duration=2.0).empty()
        assert not FaultSchedule.crash_after_emitted(2, 100).empty()

    def test_max_worker_spans_event_kinds(self):
        schedule = FaultSchedule(
            crashes=[CrashEvent(1.0, 1)],
            stalls=[StallEvent(2.0, 3)],
            count_crashes=[CountCrashEvent(10, 2)],
        )
        assert schedule.max_worker() == 3
        assert FaultSchedule.none().max_worker() == -1

    def test_validate_rejects_out_of_range_worker(self):
        schedule = FaultSchedule.crash(4, at=1.0)
        with pytest.raises(ValueError, match="targets worker 4"):
            schedule.validate(4)
        schedule.validate(5)  # in range: no raise


class TestArm:
    def test_timed_events_fire_via_injector(self, rig_factory):
        rig = rig_factory(n=4)
        schedule = FaultSchedule(
            crashes=[CrashEvent(1.0, 0, restart_after=2.0)],
            stalls=[StallEvent(0.5, 1, duration=0.25)],
        )
        schedule.arm(rig.sim, rig.injector)
        rig.region.start()
        rig.sim.run_until(5.0)
        assert rig.injector.crashes == 1
        assert rig.injector.restarts == 1
        assert rig.injector.stalls == 1
        kinds = [record.kind for record in rig.injector.log]
        assert kinds == ["stall", "unstall", "crash", "restart"]

    def test_slowdown_burst_applies_and_reverts(self, rig_factory):
        rig = rig_factory(n=2)
        schedule = FaultSchedule(
            slowdowns=[SlowdownEvent(1.0, "h0", 4.0, duration=1.0)]
        )
        schedule.arm(rig.sim, rig.injector)
        baseline = rig.region.workers[0].load_multiplier
        rig.sim.run_until(1.5)
        assert rig.region.workers[0].load_multiplier == pytest.approx(
            baseline * 4.0
        )
        rig.sim.run_until(3.0)
        assert rig.region.workers[0].load_multiplier == pytest.approx(baseline)

    def test_arm_validates_against_region_width(self, rig_factory):
        rig = rig_factory(n=2)
        with pytest.raises(ValueError):
            FaultSchedule.crash(2, at=1.0).arm(rig.sim, rig.injector)
