"""Overload-burst faults: schedule plumbing and injector behavior."""

import pytest

from repro.core.policies import RoundRobinPolicy
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, OverloadBurstEvent
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import InfiniteSource, RatedSource, constant_cost


def make_region(sim, source, n=2):
    host = Host("h", cores=8, thread_speed=1000.0)
    return ParallelRegion(
        sim,
        source,
        RoundRobinPolicy(n),
        Placement.single_host(n, host),
        params=RegionParams(fault_tolerant=True),
    )


class TestEvent:
    def test_fields_validated(self):
        with pytest.raises(ValueError):
            OverloadBurstEvent(time=-1.0, factor=2.0)
        with pytest.raises(ValueError):
            OverloadBurstEvent(time=0.0, factor=0.0)
        with pytest.raises(ValueError):
            OverloadBurstEvent(time=0.0, factor=2.0, duration=0.0)

    def test_factor_below_one_models_demand_drop(self):
        OverloadBurstEvent(time=0.0, factor=0.5)


class TestSchedule:
    def test_classmethod_builds_one_burst(self):
        schedule = FaultSchedule.overload_burst(10.0, 2.0, duration=5.0)
        assert len(schedule.bursts) == 1
        assert schedule.bursts[0].factor == 2.0

    def test_empty_accounts_for_bursts(self):
        assert FaultSchedule.none().empty()
        assert not FaultSchedule.overload_burst(1.0, 2.0).empty()

    def test_burst_targets_no_worker(self):
        schedule = FaultSchedule.overload_burst(1.0, 2.0)
        assert schedule.max_worker() == -1
        schedule.validate(1)  # any region width is fine


class TestArming:
    def test_burst_scales_then_restores_the_rate(self):
        sim = Simulator()
        source = RatedSource(10.0, constant_cost(100.0))
        region = make_region(sim, source)
        injector = FaultInjector(sim, region)
        FaultSchedule.overload_burst(1.0, 3.0, duration=2.0).arm(
            sim, injector
        )
        source.arm(sim)
        rates = []
        sim.call_at(0.5, lambda: rates.append(source.rate))
        sim.call_at(1.5, lambda: rates.append(source.rate))
        sim.call_at(3.5, lambda: rates.append(source.rate))
        sim.run_until(4.0)
        assert rates == pytest.approx([10.0, 30.0, 10.0])

    def test_burst_actions_are_logged(self):
        sim = Simulator()
        source = RatedSource(10.0, constant_cost(100.0))
        region = make_region(sim, source)
        injector = FaultInjector(sim, region)
        FaultSchedule.overload_burst(1.0, 2.0, duration=1.0).arm(
            sim, injector
        )
        sim.run_until(3.0)
        kinds = [record.kind for record in injector.log]
        assert kinds == ["overload", "overload_end"]

    def test_permanent_burst_never_restores(self):
        sim = Simulator()
        source = RatedSource(10.0, constant_cost(100.0))
        region = make_region(sim, source)
        injector = FaultInjector(sim, region)
        FaultSchedule.overload_burst(1.0, 2.0).arm(sim, injector)
        sim.run_until(10.0)
        assert source.rate == pytest.approx(20.0)

    def test_burst_without_rated_source_rejected(self):
        sim = Simulator()
        region = make_region(sim, InfiniteSource(constant_cost(100.0)))
        injector = FaultInjector(sim, region)
        with pytest.raises(ValueError, match="RatedSource"):
            injector.overload_burst(2.0)
