"""Recovery coordinator tests: detection, failover, reintegration, metrics.

The final class is the acceptance test of the fault-tolerance work: a
4-PE region with one PE crashing mid-run and restarting later completes
with the merger emitting every tuple exactly once in order, the weights
reconverging, and the ``RunResult`` carrying nonzero recovery metrics —
deterministically.
"""

import dataclasses

import pytest

from repro.experiments.config import (
    ExperimentConfig,
    HostSpec,
    fault_recovery_scenario,
)
from repro.experiments.runner import run_experiment
from repro.faults import FaultSchedule, RecoveryConfig


class TestConfigValidation:
    def test_defaults_are_valid(self):
        RecoveryConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_interval": 0.0},
            {"staleness_timeout": -1.0},
            {"heartbeat_confirmations": 0},
            {"gap_policy": "retry"},
            {"skip_timeout": 0.0},
            {"reintegration_decay": 1.5},
            {"stable_rounds": 0},
            {"stability_tolerance": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryConfig(**kwargs)


class TestDetection:
    def test_crash_is_detected_within_staleness_window(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1))
        rig.run(8.0)
        assert rig.recovery.quarantines == 1
        episode = rig.recovery.episodes[0]
        assert episode.channel == 1
        assert episode.fault_at == pytest.approx(2.0)
        # Detection needs staleness_timeout (1 s) of no progress, rounded
        # up to the next 0.25 s check.
        assert 1.0 <= episode.time_to_quarantine() <= 1.5

    def test_long_stall_is_detected(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.stall(2))
        rig.run(8.0)
        assert rig.recovery.quarantines == 1
        assert rig.recovery.episodes[0].channel == 2

    def test_healthy_run_never_quarantines(self, rig_factory):
        rig = rig_factory(n=4)
        rig.run(10.0)
        assert rig.recovery.quarantines == 0

    def test_short_flap_beats_the_monitor(self, rig_factory):
        """A stall shorter than the staleness window is absorbed silently."""
        total = 800
        rig = rig_factory(n=4, total=total)
        rig.sim.call_at(2.0, lambda: rig.injector.stall(0))
        rig.sim.call_at(2.5, lambda: rig.injector.unstall(0))
        merger = rig.run(60.0, stop_on_total=total)
        assert rig.recovery.quarantines == 0
        assert merger.emitted == total


class TestFailover:
    def test_quarantine_pins_weight_to_zero(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1))
        rig.run(6.0)
        assert rig.balancer.weights[1] == 0
        assert rig.routing.weights[1] == 0
        assert 1 in rig.balancer.quarantined
        assert not rig.region.splitter.live[1]

    def test_replay_policy_keeps_sequence_gap_free(self, rig_factory):
        total = 1500
        rig = rig_factory(n=4, total=total)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1))
        merger = rig.run(120.0, stop_on_total=total)
        assert merger.emitted == total
        assert merger.tuples_lost == 0
        assert rig.recovery.episodes[0].replayed > 0
        assert rig.region.splitter.tuples_replayed > 0

    def test_skip_policy_bounds_the_gap(self, rig_factory):
        total = 1500
        rig = rig_factory(
            n=4, total=total, recovery_config=RecoveryConfig(gap_policy="skip")
        )
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1))
        merger = rig.run(120.0, stop_on_total=total)
        episode = rig.recovery.episodes[0]
        assert episode.lost > 0
        assert merger.tuples_lost == episode.lost
        assert merger.emitted + merger.tuples_lost == total
        assert rig.region.splitter.tuples_replayed == 0

    def test_survivors_absorb_the_dead_channels_share(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(0))
        rig.run(20.0)
        sent = rig.region.splitter.sent_per_connection
        # After the failover everything routes to the three survivors.
        survivors = sent[1] + sent[2] + sent[3]
        assert survivors > 3 * sent[0]


class TestReintegration:
    def test_restarted_channel_is_reintegrated(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1, restart_after=4.0))
        rig.run(30.0)
        episode = rig.recovery.episodes[0]
        assert episode.reintegrated_at is not None
        assert episode.reintegrated_at >= 6.0
        assert rig.region.splitter.live[1]
        assert 1 not in rig.balancer.quarantined
        # The channel earns traffic again after reintegration.
        assert rig.balancer.weights[1] > 0

    def test_dead_channel_stays_quarantined(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1))
        rig.run(30.0)
        episode = rig.recovery.episodes[0]
        assert episode.reintegrated_at is None
        assert not rig.region.splitter.live[1]
        assert rig.balancer.weights[1] == 0

    def test_metrics_are_populated(self, rig_factory):
        rig = rig_factory(n=4)
        rig.sim.call_at(2.0, lambda: rig.injector.crash(1, restart_after=4.0))
        rig.run(60.0)
        assert rig.recovery.first_time_to_quarantine() == pytest.approx(
            1.0, abs=0.5
        )
        ttr = rig.recovery.first_time_to_reconverge()
        assert ttr is not None and ttr > 0.0


class TestAllChannelsDead:
    def test_splitter_parks_and_resumes(self, rig_factory):
        total = 600
        rig = rig_factory(n=2, total=total)
        rig.sim.call_at(1.0, lambda: rig.injector.crash(0, restart_after=6.0))
        rig.sim.call_at(1.1, lambda: rig.injector.crash(1, restart_after=6.0))
        merger = rig.run(120.0, stop_on_total=total)
        # Both channels died; both restarted; the run still drains fully.
        assert merger.emitted == total
        assert merger.tuples_lost == 0


class TestAcceptance:
    """The issue's acceptance criteria, via the experiment runner."""

    @staticmethod
    def _config(total=6000):
        speed = 2e5
        return ExperimentConfig(
            name="acceptance-fault",
            n_workers=4,
            tuple_cost=10_000,
            host_specs=[HostSpec("slow", thread_speed=speed)],
            worker_host=[0, 0, 0, 0],
            total_tuples=total,
            duration=400.0,
            splitter_cost_multiplies=2_000,
            fault_schedule=FaultSchedule.crash(1, at=15.0, restart_after=30.0),
        )

    def test_crash_restart_run_meets_acceptance(self):
        total = 6000
        result = run_experiment(self._config(total), "lb-adaptive")
        # Every tuple exactly once, in order: the merger raises on any
        # duplicate or out-of-order emission, so completion == exactly-once.
        assert result.completed
        assert result.emitted == total
        assert result.tuples_lost == 0
        # Nonzero recovery metrics.
        assert result.quarantines == 1
        assert result.time_to_quarantine is not None
        assert result.time_to_quarantine > 0.0
        assert result.time_to_reconverge is not None
        assert result.time_to_reconverge > 0.0
        assert result.tuples_replayed > 0
        # Weights reconverge: the crashed channel carries real weight again.
        assert result.final_weights[1] > 0

    def test_fault_run_is_deterministic(self):
        first = run_experiment(self._config(), "lb-adaptive")
        second = run_experiment(self._config(), "lb-adaptive")
        assert first.emitted == second.emitted
        assert first.events_processed == second.events_processed
        assert first.final_weights == second.final_weights
        assert first.time_to_quarantine == second.time_to_quarantine
        assert first.time_to_reconverge == second.time_to_reconverge
        assert first.tuples_replayed == second.tuples_replayed

    def test_scenario_builder_round_trips(self):
        config = fault_recovery_scenario(gap_policy="skip")
        assert config.region.fault_tolerant
        assert not config.fault_schedule.empty()
        assert config.recovery.gap_policy == "skip"
        copy = dataclasses.replace(config, name="renamed")
        assert copy.name == "renamed"
        assert not copy.fault_schedule.empty()
