"""Unit tests for the fault injector's failure mechanics."""

import pytest

from repro.faults import FaultInjector
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion
from repro.streams.sources import FiniteSource, constant_cost
from repro.core.policies import RoundRobinPolicy


class TestRequiresFaultTolerance:
    def test_plain_region_is_rejected(self):
        sim = Simulator()
        host = Host("h", cores=8, thread_speed=1e6)
        region = ParallelRegion(
            sim,
            FiniteSource(10, constant_cost(100.0)),
            RoundRobinPolicy(2),
            Placement.single_host(2, host),
        )
        with pytest.raises(ValueError, match="fault_tolerant"):
            FaultInjector(sim, region)


class TestCrash:
    def test_crash_kills_worker_and_stalls_connection(self, rig_factory):
        rig = rig_factory(n=4)
        rig.region.start()
        rig.sim.run_until(1.0)
        rig.injector.crash(2)
        assert not rig.region.workers[2].alive
        assert rig.region.connections[2].stalled
        assert rig.injector.crashes == 1

    def test_crash_is_idempotent(self, rig_factory):
        rig = rig_factory(n=2)
        rig.injector.crash(0)
        rig.injector.crash(0)
        assert rig.injector.crashes == 1

    def test_in_service_tuple_redelivered_on_quick_restart(self, rig_factory):
        """Crash + restart before detection must lose nothing.

        The revoked in-service tuple is put back at the head of the
        receive queue, so the restarted PE re-services it and the merger's
        sequence stays gap-free without any failover.
        """
        total = 400
        rig = rig_factory(n=4, total=total)
        # Crash mid-service and restart well inside the 1 s staleness
        # window, so the liveness monitor never quarantines the channel.
        rig.sim.call_at(0.505, lambda: rig.injector.crash(1, restart_after=0.3))
        merger = rig.run(60.0, stop_on_total=total)
        assert rig.recovery.quarantines == 0
        assert merger.emitted == total
        assert merger.tuples_lost == 0
        assert rig.region.workers[1].tuples_dropped in (0, 1)

    def test_scheduled_restart_revives_worker(self, rig_factory):
        rig = rig_factory(n=2)
        rig.injector.crash(0, restart_after=1.0)
        assert not rig.region.workers[0].alive
        rig.sim.run_until(2.0)
        assert rig.region.workers[0].alive
        assert rig.injector.restarts == 1


class TestStallAndSlowdown:
    def test_stall_blocks_unstall_resumes(self, rig_factory):
        total = 200
        rig = rig_factory(n=2, total=total)
        rig.sim.call_at(0.2, lambda: rig.injector.stall(0))
        rig.sim.call_at(0.4, lambda: rig.injector.unstall(0))
        merger = rig.run(30.0, stop_on_total=total)
        assert merger.emitted == total
        assert rig.injector.stalls == 1

    def test_slowdown_requires_known_host(self, rig_factory):
        rig = rig_factory(n=2)
        with pytest.raises(ValueError, match="no worker"):
            rig.injector.slowdown("nonexistent", 2.0)

    def test_slowdown_composes_multiplicatively(self, rig_factory):
        rig = rig_factory(n=2)
        rig.region.workers[0].set_load_multiplier(3.0)
        rig.injector.slowdown("h0", 2.0)
        assert rig.region.workers[0].load_multiplier == pytest.approx(6.0)
        assert rig.region.workers[1].load_multiplier == pytest.approx(2.0)
        rig.injector.end_slowdown("h0", 2.0)
        assert rig.region.workers[0].load_multiplier == pytest.approx(3.0)


class TestFaultLog:
    def test_last_fault_time_anchors_detection(self, rig_factory):
        rig = rig_factory(n=2)
        rig.sim.call_at(1.0, lambda: rig.injector.stall(0))
        rig.sim.call_at(3.0, lambda: rig.injector.crash(0))
        rig.sim.run_until(5.0)
        assert rig.injector.last_fault_time(0, before=2.0) == pytest.approx(1.0)
        assert rig.injector.last_fault_time(0, before=4.0) == pytest.approx(3.0)
        assert rig.injector.last_fault_time(1, before=4.0) is None
