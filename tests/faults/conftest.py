"""Shared builders for the fault-injection tests."""

import pytest

from repro.core.balancer import BalancerConfig, LoadBalancer
from repro.core.policies import WeightedPolicy
from repro.faults import FaultInjector, RecoveryConfig, RecoveryCoordinator
from repro.sim.engine import Simulator
from repro.streams.hosts import Host, Placement
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import FiniteSource, InfiniteSource, constant_cost


class Rig:
    """A fault-tolerant region plus the recovery stack, ready to run.

    Defaults: 4 workers on one host, 10 ms services, a splitter fast
    enough to keep every connection saturated, and a balancer sampled
    once per simulated second.
    """

    def __init__(
        self,
        *,
        n=4,
        total=None,
        cost=10_000.0,
        thread_speed=1e6,
        recovery_config=None,
        with_balancer=True,
        sample_interval=1.0,
        ordered=True,
        retransmit_capacity=None,
    ):
        self.sim = Simulator()
        host = Host("h0", cores=max(8, n), thread_speed=thread_speed)
        placement = Placement.single_host(n, host)
        cost_model = constant_cost(cost)
        source = (
            InfiniteSource(cost_model)
            if total is None
            else FiniteSource(total, cost_model)
        )
        self.balancer = (
            LoadBalancer(n, BalancerConfig()) if with_balancer else None
        )
        weights = (
            self.balancer.weights
            if self.balancer is not None
            else [1000 // n] * n
        )
        self.routing = WeightedPolicy(weights)
        self.region = ParallelRegion(
            self.sim,
            source,
            self.routing,
            placement,
            params=RegionParams(
                fault_tolerant=True, retransmit_capacity=retransmit_capacity
            ),
            ordered=ordered,
        )
        self.injector = FaultInjector(self.sim, self.region)
        self.recovery = RecoveryCoordinator(
            self.sim,
            self.region,
            balancer=self.balancer,
            routing=self.routing if self.balancer is not None else None,
            injector=self.injector,
            config=recovery_config or RecoveryConfig(),
        )
        if self.balancer is not None:
            self.sim.call_every(sample_interval, self._sample)

    def _sample(self):
        counters = [c.read() for c in self.region.blocking_counters]
        new = self.balancer.update(self.sim.now, counters)
        if new is not None:
            self.routing.set_weights(new)

    def run(self, until, *, stop_on_total=None):
        if stop_on_total is not None:
            self.region.merger.on_completion(stop_on_total, self.sim.stop)
        self.recovery.start()
        self.region.start()
        self.sim.run_until(until)
        return self.region.merger


@pytest.fixture
def rig_factory():
    return Rig
