"""Guard rails on the package's public surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes_importable(self):
        # The API a downstream user builds against.
        for name in (
            "LoadBalancer",
            "BalancerConfig",
            "BlockingRateFunction",
            "solve_minimax_fox",
            "ExperimentConfig",
            "run_experiment",
            "ParallelRegion",
            "Application",
            "StreamGraph",
            "Simulator",
            "plan_placement",
            "OverloadManager",
            "OverloadConfig",
            "RatedSource",
            "overload_scenario",
        ):
            assert name in repro.__all__, name

    def test_no_accidental_module_exports(self):
        # __all__ should list classes/functions, not submodules.
        import types

        for name in repro.__all__:
            if name == "__version__":
                continue
            assert not isinstance(getattr(repro, name), types.ModuleType), name
