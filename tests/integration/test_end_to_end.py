"""End-to-end integration tests: the paper's headline behaviours.

Scaled-down versions of the Section 6 experiments (full-size versions live
in ``benchmarks/``). Each test runs the complete stack — source, splitter,
connections, workers, ordered merger, controller — and checks one claim.
"""

import pytest

from repro.core.balancer import BalancerConfig
from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.runner import run_experiment
from repro.workloads.external_load import LoadSchedule


def config(**overrides):
    defaults = dict(
        name="e2e",
        n_workers=3,
        tuple_cost=1_000.0,
        host_specs=[HostSpec("h", cores=8, thread_speed=2e6)],
        worker_host=[0, 0, 0],
        duration=120.0,
        splitter_cost_multiplies=300.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSequentialSemantics:
    def test_every_tuple_exits_exactly_once_in_order(self):
        cfg = config(total_tuples=5_000, duration=None)
        result = run_experiment(cfg, "lb-adaptive")
        assert result.completed
        assert result.emitted == 5_000  # the merger enforces order; any
        # violation raises inside the run.


class TestLoadImbalanceDetection:
    def test_loaded_connection_starved(self):
        # Section 6.1's core behaviour: a 100x-loaded PE's allocation
        # weight collapses to a trickle within tens of control rounds.
        cfg = config(load_schedule=LoadSchedule.static_load([0], 100.0))
        result = run_experiment(cfg, "lb-adaptive")
        final = result.weight_series[0].value_at(119.0)
        assert final < 100, f"loaded connection still at {final}"

    def test_weights_recover_after_load_removal(self):
        cfg = config(
            duration=400.0,
            load_schedule=LoadSchedule.removed_at([0], 100.0, 50.0),
        )
        result = run_experiment(cfg, "lb-adaptive")
        during_load = result.mean_weight(0, 20.0, 50.0)
        after_recovery = result.mean_weight(0, 300.0, 400.0)
        assert during_load < 120
        assert after_recovery > 2.0 * during_load

    def test_static_does_not_recover(self):
        cfg = config(
            duration=400.0,
            load_schedule=LoadSchedule.removed_at([0], 100.0, 50.0),
        )
        adaptive = run_experiment(cfg, "lb-adaptive")
        static = run_experiment(cfg, "lb-static")
        assert (
            static.mean_weight(0, 300.0, 400.0)
            < adaptive.mean_weight(0, 300.0, 400.0)
        )


class TestEqualCapacityStability:
    def test_converges_near_even_split(self):
        # Section 6.2: equal capacity, heavy tuples, drafting — the model
        # must detect equal capacity despite one connection absorbing all
        # the blocking.
        cfg = ExperimentConfig(
            name="equal",
            n_workers=3,
            tuple_cost=10_000.0,
            host_specs=[HostSpec("h", cores=8, thread_speed=2e5)],
            worker_host=[0, 0, 0],
            duration=300.0,
            splitter_cost_multiplies=2_500.0,
        )
        result = run_experiment(cfg, "lb-adaptive")
        final = [result.weight_series[j].value_at(299.0) for j in range(3)]
        assert max(final) - min(final) < 320, final
        # Throughput within 15% of the even-split ideal (60 tuples/s).
        assert result.final_throughput() > 0.85 * 60.0


class TestHeterogeneousHosts:
    def test_fast_host_earns_larger_share(self):
        # Figure 11 top: a fast host (1.857x per-thread) should stabilize
        # near a 65/35 split.
        slow = HostSpec.slow(2e5)
        fast = HostSpec.fast(2e5)
        cfg = ExperimentConfig(
            name="hetero",
            n_workers=2,
            tuple_cost=20_000.0,
            host_specs=[slow, fast],
            worker_host=[1, 0],
            duration=300.0,
            splitter_cost_multiplies=7_000.0,
        )
        result = run_experiment(cfg, "lb-adaptive")
        fast_share = result.mean_weight(0, 100.0, 300.0) / 1000.0
        assert 0.55 < fast_share < 0.80, fast_share


class TestBaselines:
    def test_policy_ordering_under_static_imbalance(self):
        # Oracle* <= LB-adaptive < RR in execution time (Figure 9 left).
        cfg = config(
            n_workers=4,
            worker_host=[0, 0, 0, 0],
            load_schedule=LoadSchedule.half_loaded(4, 10.0),
            total_tuples=30_000,
            duration=None,
            splitter_cost_multiplies=125.0,
        )
        times = {
            policy: run_experiment(cfg, policy).execution_time
            for policy in ("oracle", "lb-adaptive", "rr")
        }
        assert times["oracle"] <= times["lb-adaptive"] <= times["rr"]
        assert times["rr"] > 2.0 * times["lb-adaptive"]

    def test_rerouting_moves_few_tuples(self):
        # Section 4.4: the transport-level re-routing baseline re-routes
        # a small fraction of tuples — blocking is a late signal, so by
        # the time it fires most of the stream is already buffered.
        from repro.experiments.figures import sec44_config

        result = run_experiment(sec44_config(1_000), "reroute")
        assert 0.0 < result.reroute_fraction() < 0.05


class TestClusteringEndToEnd:
    @pytest.mark.slow
    def test_three_load_classes_sorted(self):
        n = 16
        loads = {j: 100.0 for j in range(4)} | {j: 5.0 for j in range(4, 8)}
        cfg = ExperimentConfig(
            name="cluster-e2e",
            n_workers=n,
            tuple_cost=10_000.0,
            host_specs=[HostSpec("h", cores=n, thread_speed=2e6)],
            worker_host=[0] * n,
            load_schedule=LoadSchedule(initial=loads),
            duration=600.0,
            sample_interval=2.0,
            splitter_cost_multiplies=2_000.0,
            balancer=BalancerConfig(clustering=True, cluster_threshold=1.0),
        )
        result = run_experiment(cfg, "lb-adaptive")
        heavy = sum(result.weight_series[j].value_at(599.0) for j in range(4)) / 4
        light = sum(result.weight_series[j].value_at(599.0) for j in range(8, 16)) / 8
        assert heavy < light, (heavy, light)
        assert result.cluster_snapshots, "clustering snapshots missing"
