"""Soak: sustained 2x overload for ten simulated minutes.

Excluded from tier-1 (``-m "not soak"`` in the default addopts); CI runs
it in a dedicated job. The point is endurance, not speed: over a long
horizon the protected region must hold a stable shedding equilibrium —
bounded input queue, bounded reordering buffer, bounded latency — with
no slow leak that a 60-second run would miss.
"""

import pytest

from repro.experiments.config import overload_scenario
from repro.experiments.runner import run_experiment

DURATION = 600.0


@pytest.fixture(scope="module")
def soaked():
    return run_experiment(
        overload_scenario(duration=DURATION), "lb-adaptive"
    )


@pytest.mark.soak
class TestSustainedOverload:
    def test_queue_bounded_for_the_whole_run(self, soaked):
        cfg = overload_scenario(duration=DURATION)
        assert soaked.max_input_queue < 2 * cfg.overload.queue_high
        # No slow creep: the final samples look like the early ones.
        values = [v for _, v in soaked.queue_series]
        early = max(values[: len(values) // 4])
        late = max(values[-len(values) // 4 :])
        assert late < 2 * max(early, cfg.overload.queue_low)

    def test_pending_bounded_for_the_whole_run(self, soaked):
        cfg = overload_scenario(duration=DURATION)
        # The gate pauses the splitter at pending_high; tuples already in
        # the connections' buffers still land, hence the slack.
        assert soaked.max_merger_pending <= cfg.overload.pending_high + 64

    def test_shedding_settles_near_the_excess(self, soaked):
        assert 0.35 < soaked.shed_ratio() < 0.65

    def test_p99_latency_has_no_trend(self, soaked):
        values = [v for _, v in soaked.p99_latency_series]
        assert values
        assert max(values) < 15.0
        late = values[-len(values) // 4 :]
        assert max(late) < 15.0

    def test_throughput_tracks_capacity(self, soaked):
        cfg = overload_scenario(duration=DURATION)
        capacity = cfg.arrival_rate / 2.0  # scenario offers 2x capacity
        # Flow-control pauses and the shedding equilibrium cost some
        # goodput; the floor asserts no collapse, not perfection.
        assert soaked.emitted > 0.7 * capacity * DURATION

    def test_detector_tripped_for_most_of_the_run(self, soaked):
        assert soaked.overload_seconds > 0.8 * DURATION
