"""Shared fixtures for the whole test suite."""

import pytest

from repro.util.perf import COUNTERS, reset_counters


@pytest.fixture(autouse=True)
def _isolate_model_counters():
    """Zero the process-global model counters around every test.

    ``repro.util.perf.COUNTERS`` is process-global by design (benches
    want cheap, always-on tallies), which means any test that runs a
    balancer or fits a rate function bumps state visible to every later
    test. Resetting before *and* after keeps counter-asserting tests
    order-independent and keeps the globals clean for whoever runs next.
    """
    reset_counters()
    yield COUNTERS
    reset_counters()
