"""Workload generation: tuple cost models and external-load schedules.

The paper's workload is synthetic and precisely specified: every tuple
costs a fixed number of integer multiplies (1 000 / 10 000 / 20 000 /
60 000 depending on the experiment), and "simulated external load" makes
selected PEs 5x / 10x / 100x more expensive, sometimes removed an eighth
of the way through the run. This package reproduces those generators.
"""

from repro.streams.sources import constant_cost
from repro.workloads.external_load import LoadEvent, LoadSchedule

__all__ = ["constant_cost", "LoadEvent", "LoadSchedule"]
