"""External-load schedules for worker PEs.

The paper simulates exogenous load by multiplying selected PEs' per-tuple
cost: "one PE has a simulated external load causing it to take 100x longer
to process tuples. An eighth through the experiment, we remove the
simulated external load." A :class:`LoadSchedule` captures the initial
multipliers plus any timed changes, and can arm them on a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.streams.pe import WorkerPE


@dataclass(slots=True, frozen=True)
class LoadEvent:
    """At ``time``, set ``worker``'s cost multiplier to ``multiplier``."""

    time: float
    worker: int
    multiplier: float

    def __post_init__(self) -> None:
        check_non_negative("time", self.time)
        check_positive("multiplier", self.multiplier)
        if self.worker < 0:
            raise ValueError(f"worker must be non-negative, got {self.worker}")


@dataclass(slots=True, frozen=True)
class CountLoadEvent:
    """When the merger has emitted ``emitted`` tuples, set ``worker``'s
    multiplier to ``multiplier``.

    The paper removes load "an eighth through the experiment" — an eighth
    of each run's own progress, not of wall time (that is what lets it
    report that RR "took at least 10x as long to reach this throughput":
    a slow policy spends 10x longer in its loaded first eighth). Progress
    triggers express exactly that.
    """

    emitted: int
    worker: int
    multiplier: float

    def __post_init__(self) -> None:
        check_positive("emitted", self.emitted)
        check_positive("multiplier", self.multiplier)
        if self.worker < 0:
            raise ValueError(f"worker must be non-negative, got {self.worker}")


@dataclass(slots=True)
class LoadSchedule:
    """Initial per-worker load multipliers plus timed or progress changes."""

    initial: dict[int, float] = field(default_factory=dict)
    events: list[LoadEvent] = field(default_factory=list)
    count_events: list[CountLoadEvent] = field(default_factory=list)

    @classmethod
    def none(cls) -> "LoadSchedule":
        """No external load at any time."""
        return cls()

    @classmethod
    def static_load(cls, workers: list[int], multiplier: float) -> "LoadSchedule":
        """Fixed load on ``workers`` for the whole run (Figs. 9/10 left)."""
        check_positive("multiplier", multiplier)
        return cls(initial={w: multiplier for w in workers})

    @classmethod
    def removed_at(
        cls, workers: list[int], multiplier: float, removal_time: float
    ) -> "LoadSchedule":
        """Load on ``workers`` that disappears at ``removal_time``.

        The paper's dynamic experiments remove the load "an eighth through
        the experiment".
        """
        check_positive("multiplier", multiplier)
        check_non_negative("removal_time", removal_time)
        return cls(
            initial={w: multiplier for w in workers},
            events=[LoadEvent(removal_time, w, 1.0) for w in workers],
        )

    @classmethod
    def removed_after_emitted(
        cls, workers: list[int], multiplier: float, emitted: int
    ) -> "LoadSchedule":
        """Load on ``workers`` removed once ``emitted`` tuples are merged.

        This is the dynamic-sweep setup (Figs. 9/10/13): with a finite
        budget of N tuples, pass ``emitted = N // 8`` for the paper's
        "an eighth through the experiment".
        """
        check_positive("multiplier", multiplier)
        return cls(
            initial={w: multiplier for w in workers},
            count_events=[CountLoadEvent(emitted, w, 1.0) for w in workers],
        )

    @classmethod
    def half_loaded(
        cls, n_workers: int, multiplier: float, removal_time: float | None = None
    ) -> "LoadSchedule":
        """Load on the first half of the PEs (the Figs. 9/10/13 setup)."""
        loaded = list(range(n_workers // 2))
        if removal_time is None:
            return cls.static_load(loaded, multiplier)
        return cls.removed_at(loaded, multiplier, removal_time)

    @classmethod
    def half_loaded_until_emitted(
        cls, n_workers: int, multiplier: float, emitted: int
    ) -> "LoadSchedule":
        """Half the PEs loaded until ``emitted`` tuples have been merged."""
        return cls.removed_after_emitted(
            list(range(n_workers // 2)), multiplier, emitted
        )

    def initial_multipliers(self, n_workers: int) -> list[float]:
        """Per-worker multipliers in force at time zero."""
        for w in self.initial:
            if w >= n_workers:
                raise ValueError(
                    f"schedule loads worker {w} but region has {n_workers}"
                )
        return [self.initial.get(j, 1.0) for j in range(n_workers)]

    def multiplier_at(self, worker: int, time: float) -> float:
        """The multiplier in force for ``worker`` at ``time``."""
        value = self.initial.get(worker, 1.0)
        best_time = -1.0
        for event in self.events:
            if event.worker == worker and best_time < event.time <= time:
                value = event.multiplier
                best_time = event.time
        return value

    def change_times(self) -> list[float]:
        """Distinct times at which any multiplier changes, ascending."""
        return sorted({e.time for e in self.events})

    def arm(self, sim: "Simulator", workers: list["WorkerPE"]) -> None:
        """Schedule every timed change on ``sim`` against ``workers``."""
        for event in self.events:
            if event.worker >= len(workers):
                raise ValueError(
                    f"schedule loads worker {event.worker} but region has "
                    f"{len(workers)}"
                )
            pe = workers[event.worker]
            sim.call_at(
                event.time,
                lambda pe=pe, m=event.multiplier: pe.set_load_multiplier(m),
            )
