"""Compile a :class:`~repro.streams.graph.StreamGraph` onto the simulator.

This is the runtime of paper Section 2: every operator becomes a
processing element (PE) with its own thread of control; every stream
becomes a bounded, flow-controlled connection; operators marked parallel
expand into splitter -> replicas -> merger. Backpressure propagates end to
end: a PE blocked sending downstream stops consuming upstream, exactly the
mechanism the paper's blocking-rate metric taps.

Topology of a compiled parallel region (compare the paper's Figure 1):

    upstream ──► SplitterPE ══ width connections ══► replica PEs ══► MergerPE ──► downstream

The splitter re-stamps *region-local* sequence numbers on entry (wrapping
the original tuple) and the merger restores that arrival order before
unwrapping — sequential semantics without constraining the rest of the
graph. Attach the paper's controller to any region with
:meth:`Application.enable_load_balancing`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.balancer import BalancerConfig, LoadBalancer
from repro.core.policies import RoundRobinPolicy, WeightedPolicy
from repro.net.connection import SimulatedConnection
from repro.streams.graph import StreamGraph
from repro.streams.hosts import Host
from repro.streams.operators import Operator, SinkOp, SourceOp
from repro.streams.tuples import StreamTuple
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.blocking import BlockingCounter
    from repro.sim.engine import Simulator


class _EmittingPE:
    """Shared machinery: emit a tuple to every output, blocking as needed."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.outputs: list[SimulatedConnection] = []
        self._emit_tuple: StreamTuple | None = None
        self._emit_index = 0
        #: Seconds spent blocked sending downstream.
        self.blocked_seconds = 0.0
        self._block_start: float | None = None

    def _begin_emit(self, tup: StreamTuple) -> bool:
        """Start sending ``tup`` to all outputs; True if done synchronously."""
        self._emit_tuple = tup
        self._emit_index = 0
        return self._continue_emit()

    def _continue_emit(self) -> bool:
        assert self._emit_tuple is not None
        while self._emit_index < len(self.outputs):
            conn = self.outputs[self._emit_index]
            if conn.send_nowait(self._emit_tuple):
                self._emit_index += 1
                continue
            self._block_start = self.sim.now
            conn.wait_for_send_space(self._on_send_space)
            return False
        self._emit_tuple = None
        return True

    def _on_send_space(self) -> None:
        assert self._block_start is not None
        blocked = self.sim.now - self._block_start
        self.blocked_seconds += blocked
        self.outputs[self._emit_index].blocking.add(blocked)
        self._block_start = None
        if self._continue_emit():
            self._after_emit()

    def _after_emit(self) -> None:
        """Hook: emission finished after having blocked."""
        raise NotImplementedError


class SourcePE(_EmittingPE):
    """Drives a :class:`SourceOp`: produce, emit, repeat."""

    def __init__(
        self, sim: "Simulator", source: SourceOp, host: Host
    ) -> None:
        super().__init__(sim, source.name)
        self.source = source
        self.host = host
        host.place(self)
        self.finished = False
        # One tuple is in production at a time: park it on self and
        # schedule a prebound callback instead of a closure per tuple.
        self._producing: StreamTuple | None = None
        self._emit_cb = self._emit

    def start(self, at: float = 0.0) -> None:
        """Begin producing at simulated time ``at``."""
        self.sim.call_at(at, self._produce)

    def _produce(self) -> None:
        tup = self.source.next_tuple()
        if tup is None:
            self.finished = True
            return
        cost = max(self.source.production_cost(tup.seq), 1e-9)
        self._producing = tup
        self.sim.schedule_after(
            cost / self.host.per_pe_speed(), self._emit_cb
        )

    def _emit(self) -> None:
        tup = self._producing
        self._producing = None
        if self._begin_emit(tup):
            self._produce()

    def _after_emit(self) -> None:
        self._produce()


class OperatorPE(_EmittingPE):
    """One operator (or one replica of a parallelized operator)."""

    def __init__(
        self,
        sim: "Simulator",
        operator: Operator,
        host: Host,
        *,
        name: str | None = None,
        unwrap: bool = False,
    ) -> None:
        super().__init__(sim, name or operator.name)
        self.operator = operator
        self.host = host
        host.place(self)
        self.inputs: list[SimulatedConnection] = []
        #: Replicas inside a parallel region receive wrapped tuples:
        #: ``payload`` holds the real tuple, ``seq`` the region-local
        #: order, which the result must keep for the merger.
        self.unwrap = unwrap
        self._busy = False
        self._next_input = 0
        self._load_multiplier = 1.0
        self.processed = 0
        self.dropped = 0
        # One tuple in service at a time (_busy guards): park it on self
        # and schedule one prebound callback instead of a closure per tuple.
        self._in_service: StreamTuple | None = None
        self._finish_cb = self._finish

    def set_load_multiplier(self, multiplier: float) -> None:
        """External load on this PE (paper's simulated load)."""
        check_positive("multiplier", multiplier)
        self._load_multiplier = multiplier

    def add_input(self, conn: SimulatedConnection) -> None:
        """Attach an upstream stream; deliveries wake this PE."""
        conn.on_deliver = self._wake
        self.inputs.append(conn)

    def _wake(self) -> None:
        self._maybe_start()

    def _maybe_start(self) -> None:
        # Sending downstream can synchronously cascade into fresh
        # deliveries on our inputs (buffer pumps run in one call chain),
        # so this entry point must be idempotent: never start a second
        # service while one is running or an emission is parked.
        if self._busy or self._emit_tuple is not None:
            return
        for offset in range(len(self.inputs)):
            idx = (self._next_input + offset) % len(self.inputs)
            if self.inputs[idx].recv_available() > 0:
                self._next_input = idx + 1
                # Claim the PE *before* taking: take() pumps buffers and
                # can synchronously re-enter this method.
                self._busy = True
                self._start(self.inputs[idx].take())
                return

    def _start(self, tup: StreamTuple) -> None:
        self._busy = True
        cost = self.operator.cost_multiplies * self._load_multiplier
        duration = max(cost, 1e-9) / self.host.per_pe_speed()
        self._in_service = tup
        self.sim.schedule_after(duration, self._finish_cb)

    def _finish(self) -> None:
        tup = self._in_service
        self._in_service = None
        self._busy = False
        self.processed += 1
        if self.unwrap:
            inner = self.operator.apply(tup.payload)
            result = (
                None
                if inner is None
                else StreamTuple(
                    seq=tup.seq,
                    cost_multiplies=tup.cost_multiplies,
                    payload=inner,
                )
            )
        else:
            result = self.operator.apply(tup)
        if result is None or not self.outputs:
            if result is None:
                self.dropped += 1
            self._maybe_start()
            return
        if self._begin_emit(result):
            self._maybe_start()

    def _after_emit(self) -> None:
        self._maybe_start()


class SinkPE:
    """Terminal consumer: applies the sink at its cost; no outputs."""

    def __init__(self, sim: "Simulator", sink: SinkOp, host: Host) -> None:
        self.sim = sim
        self.name = sink.name
        self.sink = sink
        self.host = host
        host.place(self)
        self.inputs: list[SimulatedConnection] = []
        self._busy = False
        self._next_input = 0
        self.last_consume_time: float | None = None
        self._in_service: StreamTuple | None = None
        self._finish_cb = self._finish

    def add_input(self, conn: SimulatedConnection) -> None:
        """Attach an upstream stream; deliveries wake this sink."""
        conn.on_deliver = self._wake
        self.inputs.append(conn)

    def _wake(self) -> None:
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy:
            return
        for offset in range(len(self.inputs)):
            idx = (self._next_input + offset) % len(self.inputs)
            if self.inputs[idx].recv_available() > 0:
                self._next_input = idx + 1
                self._busy = True  # claim before take(); see OperatorPE
                self._start(self.inputs[idx].take())
                return

    def _start(self, tup: StreamTuple) -> None:
        self._busy = True
        duration = max(self.sink.cost_multiplies, 1e-9) / self.host.per_pe_speed()
        self._in_service = tup
        self.sim.schedule_after(duration, self._finish_cb)

    def _finish(self) -> None:
        tup = self._in_service
        self._in_service = None
        self._busy = False
        self.sink.apply(tup)
        self.last_consume_time = self.sim.now
        self._maybe_start()


class SplitterPE(_EmittingPE):
    """Region entry: route each arriving tuple to one replica connection.

    Re-stamps region-local sequence numbers (wrapping the original tuple)
    and elects to block on the routed connection when it is full, charging
    that connection's blocking counter — the measurement point of the
    whole paper.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        host: Host,
        *,
        send_cost_multiplies: float = 125.0,
    ) -> None:
        super().__init__(sim, name)
        self.host = host
        host.place(self)
        self.policy: WeightedPolicy | RoundRobinPolicy | None = None
        self.input: SimulatedConnection | None = None
        self._busy = False
        self._local_seq = 0
        self.send_cost_multiplies = send_cost_multiplies
        self.sent_per_connection: list[int] = []
        self._pending: StreamTuple | None = None
        self._target: int | None = None
        self._block_start: float | None = None
        self._routing: StreamTuple | None = None
        self._route_cb = self._route

    def attach(self, conn: SimulatedConnection) -> None:
        """Attach the region's single upstream stream."""
        conn.on_deliver = self._wake
        self.input = conn

    def _wake(self) -> None:
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or self._pending is not None:
            return
        assert self.input is not None
        if self.input.recv_available() == 0:
            return
        self._busy = True  # claim before take(); see OperatorPE
        tup = self.input.take()
        duration = max(self.send_cost_multiplies, 1e-9) / self.host.per_pe_speed()
        self._routing = tup
        self.sim.schedule_after(duration, self._route_cb)

    def _route(self) -> None:
        tup = self._routing
        self._routing = None
        self._busy = False
        assert self.policy is not None
        wrapped = StreamTuple(
            seq=self._local_seq,
            cost_multiplies=tup.cost_multiplies,
            payload=tup,
        )
        self._local_seq += 1
        self._pending = wrapped
        self._target = self.policy.next_connection()
        self._try_send()

    def _try_send(self) -> None:
        assert self._pending is not None and self._target is not None
        conn = self.outputs[self._target]
        if conn.send_nowait(self._pending):
            self.sent_per_connection[self._target] += 1
            self._pending = None
            self._target = None
            self._maybe_start()
            return
        self._block_start = self.sim.now
        conn.wait_for_send_space(self._on_route_space)

    def _on_route_space(self) -> None:
        assert self._target is not None and self._block_start is not None
        blocked = self.sim.now - self._block_start
        self.blocked_seconds += blocked
        self.outputs[self._target].blocking.add(blocked)
        self._block_start = None
        self._try_send()

    def _after_emit(self) -> None:  # pragma: no cover - unused path
        self._maybe_start()


class MergerPE:
    """Region exit: restore splitter arrival order, unwrap, forward."""

    def __init__(
        self, sim: "Simulator", name: str, host: Host, *, ordered: bool = True
    ) -> None:
        self.sim = sim
        self.name = name
        self.host = host
        host.place(self)
        self.ordered = ordered
        self.inputs: list[SimulatedConnection] = []
        self.outputs: list[SimulatedConnection] = []
        self._pending: dict[int, StreamTuple] = {}
        self._next_seq = 0
        self._backlog: deque[StreamTuple] = deque()
        self._sending = False
        self._send_index = 0
        self.emitted = 0

    def add_input(self, conn: SimulatedConnection) -> None:
        """Attach one replica's output stream."""
        conn.on_deliver = lambda c=conn: self._wake(c)
        self.inputs.append(conn)

    def _wake(self, conn: SimulatedConnection) -> None:
        while conn.recv_available() > 0:
            wrapped = conn.take()
            if self.ordered:
                self._pending[wrapped.seq] = wrapped
            else:
                self._backlog.append(wrapped)
        if self.ordered:
            while self._next_seq in self._pending:
                self._backlog.append(self._pending.pop(self._next_seq))
                self._next_seq += 1
        self._drain()

    def _drain(self) -> None:
        if self._sending:
            return
        if not self.outputs:
            # A merger with no downstream acts as a counter (parallel sink).
            self.emitted += len(self._backlog)
            self._backlog.clear()
            return
        while self._backlog:
            inner = self._backlog[0].payload
            while self._send_index < len(self.outputs):
                conn = self.outputs[self._send_index]
                if conn.send_nowait(inner):
                    self._send_index += 1
                    continue
                self._sending = True
                conn.wait_for_send_space(self._resume)
                return
            self._backlog.popleft()
            self._send_index = 0
            self.emitted += 1

    def _resume(self) -> None:
        self._sending = False
        self._drain()


@dataclass(slots=True)
class ParallelRegionHandle:
    """Access to one compiled parallel region."""

    name: str
    splitter: SplitterPE
    replicas: list[OperatorPE]
    merger: MergerPE
    connections: list[SimulatedConnection]

    @property
    def blocking_counters(self) -> "list[BlockingCounter]":
        """Per-replica-connection cumulative blocking counters."""
        return [conn.blocking for conn in self.connections]

    def set_weights(self, weights: list[int]) -> None:
        """Apply new allocation weights to the region's splitter."""
        if not isinstance(self.splitter.policy, WeightedPolicy):
            raise RuntimeError(
                f"region {self.name!r} does not use a weighted policy"
            )
        self.splitter.policy.set_weights(weights)


@dataclass(slots=True)
class _CompiledNode:
    pe: object
    #: For parallel nodes, the handle; None otherwise.
    region: ParallelRegionHandle | None = None


@dataclass(slots=True)
class Application:
    """A compiled, runnable streaming application."""

    sim: "Simulator"
    graph: StreamGraph
    default_host: Host
    placement: dict[str, Host] = field(default_factory=dict)
    buffer_capacity: int = 32
    splitter_send_cost: float = 125.0
    _nodes: list[_CompiledNode] = field(default_factory=list)
    _balancer_cancels: list = field(default_factory=list)
    _all_conns: list[SimulatedConnection] = field(default_factory=list)
    regions: dict[str, ParallelRegionHandle] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.graph.validate()
        self._compile()

    # ------------------------------------------------------------- compile

    def _host_for(self, name: str) -> Host:
        return self.placement.get(name, self.default_host)

    def _new_conn(self) -> SimulatedConnection:
        conn = SimulatedConnection(
            self.sim,
            conn_id=len(self._all_conns),
            send_capacity=self.buffer_capacity,
            recv_capacity=self.buffer_capacity,
        )
        self._all_conns.append(conn)
        return conn

    def _compile(self) -> None:
        order = self.graph.topological_order()
        compiled: dict[int, _CompiledNode] = {}

        for node in order:
            operator = self.graph.operators[node]
            host = self._host_for(operator.name)
            if isinstance(operator, SourceOp):
                compiled[node] = _CompiledNode(SourcePE(self.sim, operator, host))
            elif isinstance(operator, SinkOp):
                compiled[node] = _CompiledNode(SinkPE(self.sim, operator, host))
            elif node in self.graph.parallel:
                compiled[node] = self._compile_region(node, operator)
            else:
                compiled[node] = _CompiledNode(
                    OperatorPE(self.sim, operator, host)
                )

        # Wire the streams.
        for upstream, downstream in self.graph.edges:
            conn = self._new_conn()
            entry = self._entry_of(compiled[downstream])
            if isinstance(entry, SplitterPE):
                entry.attach(conn)
            else:
                entry.add_input(conn)
            self._exit_of(compiled[upstream]).outputs.append(conn)

        self._nodes = [compiled[i] for i in range(len(self.graph.operators))]

    def _compile_region(self, node: int, operator: Operator) -> _CompiledNode:
        annotation = self.graph.parallel[node]
        host = self._host_for(operator.name)
        splitter = SplitterPE(
            self.sim,
            f"{operator.name}.split",
            self._host_for(f"{operator.name}.split"),
            send_cost_multiplies=self.splitter_send_cost,
        )
        merger = MergerPE(
            self.sim,
            f"{operator.name}.merge",
            self._host_for(f"{operator.name}.merge"),
            ordered=annotation.ordered,
        )
        replicas: list[OperatorPE] = []
        connections: list[SimulatedConnection] = []
        for i in range(annotation.width):
            replica = OperatorPE(
                self.sim,
                operator,
                self.placement.get(f"{operator.name}[{i}]", host),
                name=f"{operator.name}[{i}]",
                unwrap=True,
            )
            in_conn = self._new_conn()
            replica.add_input(in_conn)
            splitter.outputs.append(in_conn)
            splitter.sent_per_connection.append(0)
            connections.append(in_conn)
            out_conn = self._new_conn()
            replica.outputs.append(out_conn)
            merger.add_input(out_conn)
            replicas.append(replica)
        splitter.policy = RoundRobinPolicy(annotation.width)
        handle = ParallelRegionHandle(
            name=operator.name,
            splitter=splitter,
            replicas=replicas,
            merger=merger,
            connections=connections,
        )
        self.regions[operator.name] = handle
        return _CompiledNode(pe=handle, region=handle)

    @staticmethod
    def _entry_of(node: _CompiledNode):
        if node.region is not None:
            return node.region.splitter
        return node.pe

    @staticmethod
    def _exit_of(node: _CompiledNode):
        if node.region is not None:
            return node.region.merger
        return node.pe

    # --------------------------------------------------------------- run

    def enable_load_balancing(
        self,
        region_name: str,
        config: BalancerConfig | None = None,
        *,
        interval: float = 1.0,
    ) -> LoadBalancer:
        """Attach the paper's controller to a parallel region."""
        handle = self.regions[region_name]
        balancer = LoadBalancer(len(handle.connections), config)
        handle.splitter.policy = WeightedPolicy(balancer.weights)

        def control() -> None:
            counters = [c.read() for c in handle.blocking_counters]
            weights = balancer.update(self.sim.now, counters)
            if weights is not None:
                handle.set_weights(weights)

        self._balancer_cancels.append(self.sim.call_every(interval, control))
        return balancer

    def start(self, at: float = 0.0) -> None:
        """Start every source."""
        for node in self._nodes:
            if isinstance(node.pe, SourcePE):
                node.pe.start(at)

    def run_until(self, end_time: float) -> None:
        """Advance the simulation."""
        self.sim.run_until(end_time)

    def operator_pe(self, name: str):
        """Look up a compiled PE (replicas via ``name[i]``)."""
        for node in self._nodes:
            pe = node.pe
            if node.region is not None:
                for replica in node.region.replicas:
                    if replica.name == name:
                        return replica
                if node.region.name == name:
                    return node.region
            elif getattr(pe, "name", None) == name:
                return pe
        raise KeyError(f"no PE named {name!r}")
