"""Stream tuples.

Tuples are the structured data items flowing through the region. For the
paper's experiments the only property that matters is the *processing cost*,
expressed in integer multiplies (their workload is "a base cost of 1,000
integer multiplies per tuple", etc.). The sequence number is assigned by the
splitter's source and is what the ordered merger restores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class StreamTuple:
    """One data item in the stream.

    ``seq``
        Global sequence number in arrival order at the splitter. The merger
        must emit tuples in exactly this order (sequential semantics).
    ``cost_multiplies``
        Base processing cost in integer multiplies. The worker's *actual*
        service time also depends on its host speed and any external load
        multiplier in force.
    ``payload``
        Opaque application data; unused by the runtime.
    ``born_at``
        Simulated time the tuple entered the region (stamped by the
        splitter on its first send attempt); lets the merger compute
        end-to-end region latency. ``None`` until stamped.
    """

    seq: int
    cost_multiplies: float
    payload: Any = field(default=None)
    born_at: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"seq must be non-negative, got {self.seq}")
        if self.cost_multiplies <= 0:
            raise ValueError(
                f"cost_multiplies must be positive, got {self.cost_multiplies}"
            )
