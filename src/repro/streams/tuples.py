"""Stream tuples and the array-native tuple block.

Tuples are the structured data items flowing through the region. For the
paper's experiments the only property that matters is the *processing cost*,
expressed in integer multiplies (their workload is "a base cost of 1,000
integer multiplies per tuple", etc.). The sequence number is assigned by the
splitter's source and is what the ordered merger restores.

:class:`StreamTuple` is the per-tuple representation used by the
``batch_size=1`` dataplane (byte-identical to the pre-batching engine) and
by every per-tuple API. The batched dataplane (``batch_size > 1``) instead
moves :class:`TupleBlock` objects — contiguous *columns* of tuples. A block
never stores N Python objects: sequence numbers are an implicit
``range(start, start + count)``, and cost/birth-time are either a shared
scalar (the common constant-cost workload) or a contiguous numeric column
(numpy ``float64`` array when the optional ``[perf]`` extra is installed,
stdlib ``array('d')`` otherwise). Splitting, routing, transferring and
merging a run of B tuples is then O(blocks), not O(B).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.util.arrays import HAVE_NUMPY, numpy

if HAVE_NUMPY:

    def _column(values: "Sequence[float]"):
        """A contiguous float64 column (vectorized backend)."""
        return numpy.asarray(values, dtype=numpy.float64)

else:

    def _column(values: "Sequence[float]"):
        """A contiguous float64 column (stdlib fallback backend)."""
        return values if isinstance(values, array) else array("d", values)


@dataclass(slots=True)
class StreamTuple:
    """One data item in the stream.

    ``seq``
        Global sequence number in arrival order at the splitter. The merger
        must emit tuples in exactly this order (sequential semantics).
    ``cost_multiplies``
        Base processing cost in integer multiplies. The worker's *actual*
        service time also depends on its host speed and any external load
        multiplier in force.
    ``payload``
        Opaque application data; unused by the runtime.
    ``born_at``
        Simulated time the tuple entered the region (stamped by the
        splitter on its first send attempt); lets the merger compute
        end-to-end region latency. ``None`` until stamped.
    """

    seq: int
    cost_multiplies: float
    payload: Any = field(default=None)
    born_at: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError(f"seq must be non-negative, got {self.seq}")
        if self.cost_multiplies <= 0:
            raise ValueError(
                f"cost_multiplies must be positive, got {self.cost_multiplies}"
            )


class TupleBlock:
    """A contiguous run of tuples stored as columns, not objects.

    ``seq`` values are implicit: the block covers exactly
    ``range(start, start + count)``. Cost is either the shared scalar
    ``cost`` (constant-cost workloads — the paper's) or the per-tuple
    column ``costs``; birth time is either the shared scalar ``born`` or
    the per-tuple column ``borns`` (open-loop sources stamp arrival
    times), or both ``None`` while unstamped. Exactly one of each pair is
    set once populated.

    Blocks are cheap to split at any tuple boundary (column slices), so
    partial bulk sends, buffer-capacity cuts, and apportionment all
    operate on whole blocks. Determinism note: :meth:`total_cost`
    accumulates left-to-right over ``.tolist()`` on both column backends,
    so numpy-present and numpy-absent runs add identical doubles in an
    identical order.
    """

    __slots__ = ("start", "count", "cost", "costs", "born", "borns")

    def __init__(
        self,
        start: int,
        count: int,
        *,
        cost: float | None = None,
        costs=None,
        born: float | None = None,
        borns=None,
    ) -> None:
        self.start = start
        self.count = count
        self.cost = cost
        self.costs = costs
        self.born = born
        self.borns = borns

    @classmethod
    def uniform(
        cls, start: int, count: int, cost: float, born: float | None = None
    ) -> "TupleBlock":
        """A block whose tuples all share one cost (the common case).

        Built with ``__new__`` like :meth:`split`: one block is created
        per dispatch cycle, so keyword argument binding is measurable.
        """
        block = cls.__new__(cls)
        block.start = start
        block.count = count
        block.cost = cost
        block.costs = None
        block.born = born
        block.borns = None
        return block

    @classmethod
    def from_costs(
        cls, start: int, costs: "Sequence[float]", borns=None
    ) -> "TupleBlock":
        """A block with a per-tuple cost column (and optional born column)."""
        return cls(
            start,
            len(costs),
            costs=_column(costs),
            borns=None if borns is None else _column(borns),
        )

    @property
    def end(self) -> int:
        """One past the last sequence number in the block."""
        return self.start + self.count

    def __len__(self) -> int:
        return self.count

    def split(self, k: int) -> "tuple[TupleBlock, TupleBlock]":
        """Split into ``(first k tuples, remainder)``; columns are sliced.

        Built with ``__new__`` rather than the keyword constructor: splits
        happen on the dispatch/transport hot path (chunk carving, partial
        sends, buffer boundaries), where argument binding is measurable.
        """
        cls = TupleBlock
        head = cls.__new__(cls)
        tail = cls.__new__(cls)
        start = self.start
        head.start = start
        head.count = k
        tail.start = start + k
        tail.count = self.count - k
        cost = self.cost
        head.cost = cost
        tail.cost = cost
        costs = self.costs
        if costs is None:
            head.costs = None
            tail.costs = None
        else:
            head.costs = costs[:k]
            tail.costs = costs[k:]
        born = self.born
        head.born = born
        tail.born = born
        borns = self.borns
        if borns is None:
            head.borns = None
            tail.borns = None
        else:
            head.borns = borns[:k]
            tail.borns = borns[k:]
        return head, tail

    def total_cost(self) -> float:
        """Sum of per-tuple costs (left-to-right on both backends)."""
        if self.cost is not None:
            return self.cost * self.count
        return sum(self.costs.tolist())

    def born_at(self, i: int) -> float | None:
        """Birth stamp of the block's ``i``-th tuple (``None`` unstamped)."""
        if self.borns is not None:
            return self.borns[i]
        return self.born

    def materialize(self) -> "list[StreamTuple]":
        """Expand into per-tuple objects (slow paths and emit hooks only)."""
        start = self.start
        costs = self.costs
        borns = self.borns
        cost = self.cost
        born = self.born
        out = []
        for i in range(self.count):
            tup = StreamTuple.__new__(StreamTuple)
            tup.seq = start + i
            tup.cost_multiplies = cost if costs is None else costs[i]
            tup.payload = None
            tup.born_at = born if borns is None else borns[i]
            out.append(tup)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TupleBlock([{self.start}, {self.end}), "
            f"cost={self.cost if self.cost is not None else 'column'})"
        )
