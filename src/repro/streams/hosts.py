"""Host capacity model.

The paper's clusters mix two machine types:

* "slow" hosts — 2x Intel Xeon X5365 (8 cores total, no useful SMT);
* "fast" hosts — 2x Intel Xeon X5687 (8 cores, 2-way SMT, 16 hardware
  threads, and a faster core).

We model a host as ``cores`` physical cores with ``smt_per_core`` hardware
threads each. A thread runs integer multiplies at ``thread_speed``
multiplies per second; the extra SMT threads contribute a configurable
``smt_efficiency`` fraction of a full thread (the paper observes that for
its pure integer-multiply workload the fast host's throughput keeps rising
from 8 to 16 PEs, i.e. SMT is effective; default 1.0 reproduces that).

Capacity is shared equally among the PEs *placed* on the host. Placing more
PEs than hardware threads oversubscribes the host: total capacity stops
growing and per-PE speed falls — this is what degrades ``All-Slow`` beyond
8 PEs in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.streams.pe import WorkerPE


class Host:
    """A compute node that PEs are placed on."""

    def __init__(
        self,
        name: str,
        *,
        cores: int = 8,
        smt_per_core: int = 1,
        thread_speed: float = 1e6,
        smt_efficiency: float = 1.0,
    ) -> None:
        check_positive("cores", cores)
        check_positive("smt_per_core", smt_per_core)
        check_positive("thread_speed", thread_speed)
        check_fraction("smt_efficiency", smt_efficiency)
        self.name = name
        self.cores = int(cores)
        self.smt_per_core = int(smt_per_core)
        self.thread_speed = float(thread_speed)
        self.smt_efficiency = float(smt_efficiency)
        self._pes: list["WorkerPE"] = []
        self._per_pe_speed: float | None = None

    @property
    def threads(self) -> int:
        """Hardware threads the host can run simultaneously."""
        return self.cores * self.smt_per_core

    @property
    def placed(self) -> int:
        """Number of PEs placed on this host."""
        return len(self._pes)

    def place(self, pe: "WorkerPE") -> None:
        """Register a PE as running on this host."""
        self._pes.append(pe)
        self._per_pe_speed = None

    def total_capacity(self, n_active: int | None = None) -> float:
        """Aggregate processing capacity, in multiplies per second.

        The first ``cores`` PEs each get a full thread; the next
        ``cores * (smt_per_core - 1)`` get SMT threads discounted by
        ``smt_efficiency``; PEs beyond :attr:`threads` add nothing
        (oversubscription).
        """
        n = self.placed if n_active is None else n_active
        if n <= 0:
            return 0.0
        full_threads = min(n, self.cores)
        smt_threads = min(max(0, n - self.cores), self.cores * (self.smt_per_core - 1))
        return (full_threads + smt_threads * self.smt_efficiency) * self.thread_speed

    def per_pe_speed(self) -> float:
        """Multiplies per second available to each placed PE.

        Capacity is split evenly: with the paper's saturating workload all
        placed PEs are runnable essentially all the time, so the fair-share
        approximation is accurate and keeps the simulator deterministic.

        Cached between placements — every tuple's service time divides by
        this value, so recomputing it per tuple showed up in profiles.
        """
        speed = self._per_pe_speed
        if speed is not None:
            return speed
        n = len(self._pes)
        if n == 0:
            raise RuntimeError(f"host {self.name!r} has no PEs placed")
        speed = self.total_capacity(n) / n
        self._per_pe_speed = speed
        return speed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Host({self.name!r}, cores={self.cores}, smt={self.smt_per_core}, "
            f"thread_speed={self.thread_speed:g}, placed={self.placed})"
        )


@dataclass(slots=True)
class Placement:
    """Assignment of worker PEs to hosts.

    ``host_of[i]`` is the host for worker ``i``. The paper places one PE
    per core and keeps splitter and merger on a separate machine; the
    helper constructors encode the placements its experiments use.
    """

    host_of: list[Host] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.host_of)

    def __getitem__(self, idx: int) -> Host:
        return self.host_of[idx]

    @classmethod
    def single_host(cls, n_workers: int, host: Host) -> "Placement":
        """All workers on one host (``All-Fast`` / ``All-Slow`` in Fig. 11)."""
        return cls(host_of=[host] * n_workers)

    @classmethod
    def split_evenly(cls, n_workers: int, hosts: list[Host]) -> "Placement":
        """Workers dealt round-robin across ``hosts`` (``Even-*`` in Fig. 11)."""
        if not hosts:
            raise ValueError("hosts must be non-empty")
        return cls(host_of=[hosts[i % len(hosts)] for i in range(n_workers)])

    @classmethod
    def one_pe_per_core(cls, n_workers: int, host_factory, cores_per_host: int = 8) -> "Placement":
        """The paper's default: fill hosts with one PE per core.

        ``host_factory(index)`` creates the ``index``-th host; a new host is
        allocated every ``cores_per_host`` workers.
        """
        check_positive("cores_per_host", cores_per_host)
        hosts: list[Host] = []
        host_of: list[Host] = []
        for i in range(n_workers):
            h = i // cores_per_host
            if h >= len(hosts):
                hosts.append(host_factory(h))
            host_of.append(hosts[h])
        return cls(host_of=host_of)

    def hosts(self) -> list[Host]:
        """Distinct hosts, in first-use order."""
        seen: list[Host] = []
        for host in self.host_of:
            if host not in seen:
                seen.append(host)
        return seen
