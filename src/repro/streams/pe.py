"""Worker processing elements.

A worker PE is a *stateless* operator replica (Section 2: "stateless PEs
are pure functions"). It consumes tuples from its connection's receive
buffer one at a time; the service time of a tuple is

    cost_multiplies * load_multiplier / host.per_pe_speed()

``load_multiplier`` models the paper's "simulated external load" — e.g. a
value of 100 makes every tuple take 100x longer, exactly how the paper
loads half its PEs. It can change mid-run (the experiments remove the load
an eighth of the way through); the new value applies from the next tuple.

Fault support: a PE can **crash** (process dies; the tuple in service is
lost — it was never acknowledged, so the splitter's retransmit buffer
still holds it), be **halted** (quarantined by the recovery layer while
the process may still be up, e.g. after a connection stall), **restart**
(process back up, idle), and **resume** (reintegrated into the region).
Fault-tolerant regions schedule completions through cancellable events so
a crash can revoke the in-service tuple; plain regions keep the
allocation-free hot path.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.streams.tuples import StreamTuple, TupleBlock
from repro.util.perf import BatchStats
from repro.util.validation import check_fraction, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.connection import SimulatedConnection
    from repro.sim.engine import Simulator
    from repro.streams.hosts import Host
    from repro.streams.merger import OrderedMerger


class WorkerPE:
    """One parallel worker in the data-parallel region."""

    def __init__(
        self,
        sim: "Simulator",
        pe_id: int,
        connection: "SimulatedConnection",
        host: "Host",
        merger: "OrderedMerger",
        *,
        load_multiplier: float = 1.0,
        service_jitter: float = 0.0,
        seed: int = 0,
        fault_tolerant: bool = False,
        batch_size: int = 1,
    ) -> None:
        check_positive("load_multiplier", load_multiplier)
        check_fraction("service_jitter", service_jitter)
        check_positive("batch_size", batch_size)
        self.sim = sim
        self.pe_id = pe_id
        self.connection = connection
        self.host = host
        self.merger = merger
        self._load_multiplier = float(load_multiplier)
        #: Relative service-time noise: each service is scaled by a
        #: uniform factor in ``[1 - j, 1 + j]``. The real cluster the
        #: paper measured has such noise everywhere (cache effects, OS
        #: scheduling); a perfectly deterministic simulator produces
        #: artifacts like a draft leader that never rotates at a 50/50
        #: split. Seeded, so runs stay reproducible.
        self.service_jitter = float(service_jitter)
        self._rng = random.Random((seed << 16) ^ (pe_id * 2_654_435_761))
        self._busy = False
        # One tuple is in service at a time (_busy guards), so the PE can
        # park it on self and schedule one prebound callback instead of a
        # fresh closure per tuple.
        # Per-tuple mode parks one StreamTuple; block mode parks the whole
        # in-service run as a list of TupleBlocks.
        self._in_service: StreamTuple | list[TupleBlock] | None = None
        self._complete_cb = self._complete
        #: Tuples fully processed by this PE.
        self.tuples_processed = 0
        #: Seconds this PE has spent servicing tuples.
        self.busy_seconds = 0.0
        #: Fault-tolerant mode: completions are cancellable so a crash can
        #: revoke the tuple in service. Off by default — the plain path
        #: allocates no event objects per tuple.
        self.fault_tolerant = bool(fault_tolerant)
        #: Whether the PE process is up (heartbeat signal for recovery).
        self.alive = True
        #: Quarantined by the recovery layer: do not consume even if up.
        self._halted = False
        self._completion_event = None
        #: Tuples whose service was revoked by a crash/halt (diagnostic;
        #: each one is replayed by the splitter, never silently lost).
        self.tuples_dropped = 0
        #: Called ``(pe_id, seq)`` after a tuple is accepted by the merger
        #: — the acknowledgement the splitter's retransmit buffer consumes.
        self.on_processed = None
        #: Block-mode acknowledgement hook: called ``(pe_id, start, count)``
        #: once per completed block instead of once per tuple.
        self.on_processed_run = None
        #: Batched fast path: service up to this many queued tuples with a
        #: single completion event (their service times still accrue per
        #: tuple). 1 = the per-tuple path, byte-identical to pre-batching.
        self.batch_size = int(batch_size)
        #: Realized service-run occupancy (batched mode only).
        self.service_stats = BatchStats()
        if self.batch_size > 1:
            # Instance attribute shadows the per-tuple method, so every
            # internal consumer (_on_deliver, restart, resume) takes the
            # block-native path without a per-call branch. Requires the
            # connection to be in block mode (the region wires both).
            self._start_next = self._start_next_run
            self._complete_run_cb = self._complete_run
            # The connection never swaps its buffers (fail/reset clear in
            # place), so the block-mode delivery/completion path reads the
            # receive occupancy straight off the RunBuffer instead of
            # paying a method call plus ``__len__`` per check.
            self._recv_runs = connection._recv_buffer
            self._take_runs = connection.take_runs
            connection.on_deliver = self._on_deliver_run
        else:
            connection.on_deliver = self._on_deliver
        host.place(self)

    @property
    def load_multiplier(self) -> float:
        """Current external-load cost multiplier."""
        return self._load_multiplier

    def set_load_multiplier(self, multiplier: float) -> None:
        """Change the external load; applies from the next tuple started."""
        check_positive("multiplier", multiplier)
        self._load_multiplier = float(multiplier)

    @property
    def busy(self) -> bool:
        """Whether a tuple is currently in service."""
        return self._busy

    def service_time(self, tup: StreamTuple) -> float:
        """Seconds this PE would take to process ``tup`` right now."""
        base = (
            tup.cost_multiplies
            * self._load_multiplier
            / self.host.per_pe_speed()
        )
        if self.service_jitter == 0.0:
            return base
        factor = 1.0 + self.service_jitter * (2.0 * self._rng.random() - 1.0)
        return base * factor

    # --------------------------------------------------------------- faults

    @property
    def halted(self) -> bool:
        """Whether the recovery layer has quarantined this PE."""
        return self._halted

    def crash(self) -> "StreamTuple | list[StreamTuple] | None":
        """Kill the PE process mid-run; returns what was in service.

        Per-tuple mode returns the single tuple whose service died; a
        batched PE returns the whole in-service run (oldest first). The
        revoked tuples were never acknowledged, so the splitter's
        retransmit buffer still holds them for replay. Requires
        ``fault_tolerant`` (plain regions have no cancellable completions).
        """
        self.alive = False
        return self._revoke_service()

    def halt(self) -> "StreamTuple | list[StreamTuple] | None":
        """Quarantine a (possibly still live) PE: stop consuming now.

        Used when the recovery layer fails a channel whose worker process
        may be fine (connection stall): the in-service tuple is revoked so
        its replay to a survivor cannot produce a duplicate emission.
        """
        self._halted = True
        return self._revoke_service()

    def restart(self) -> None:
        """The PE process is back up.

        If the channel was never failed over (a restart quicker than the
        liveness monitor's detection window), consumption resumes directly
        from the intact receive buffer; a quarantined PE stays halted
        until the recovery layer resumes it.
        """
        self.alive = True
        if (
            not self._halted
            and not self._busy
            and self.connection.recv_available() > 0
        ):
            self._start_next()

    def resume(self) -> None:
        """Reintegrate: start consuming again from the (reset) connection."""
        self._halted = False
        if self.alive and not self._busy and self.connection.recv_available() > 0:
            self._start_next()

    def _revoke_service(self) -> "StreamTuple | list[StreamTuple] | None":
        if not self.fault_tolerant:
            raise RuntimeError(
                f"PE {self.pe_id} is not fault-tolerant; build the region "
                "with RegionParams(fault_tolerant=True) to inject faults"
            )
        revoked = self._in_service
        self._in_service = None
        self._busy = False
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if revoked is not None:
            if isinstance(revoked, list):
                # Block mode revokes a run of TupleBlocks; count tuples.
                if revoked and type(revoked[0]) is TupleBlock:
                    self.tuples_dropped += sum(b.count for b in revoked)
                else:
                    self.tuples_dropped += len(revoked)
            else:
                self.tuples_dropped += 1
        return revoked

    # ------------------------------------------------------------- internal

    def _on_deliver(self) -> None:
        if not self._busy and self.connection.recv_available() > 0:
            if self._halted or not self.alive:
                return
            self._start_next()

    def _on_deliver_run(self) -> None:
        if not self._busy and self._recv_runs._tuples > 0:
            if self._halted or not self.alive:
                return
            self._start_next_run()

    def _start_next(self) -> None:
        self._busy = True
        tup = self.connection.take()
        duration = self.service_time(tup)
        self.busy_seconds += duration
        self._in_service = tup
        if self.fault_tolerant:
            self._completion_event = self.sim.call_after(
                duration, self._complete_cb
            )
        else:
            self.sim.schedule_after(duration, self._complete_cb)

    def _complete(self) -> None:
        tup = self._in_service
        self._in_service = None
        self._completion_event = None
        self.tuples_processed += 1
        self.merger.accept(self.pe_id, tup)
        if self.on_processed is not None:
            self.on_processed(self.pe_id, tup.seq)
        if self._halted or not self.alive:
            self._busy = False
        elif self.connection.recv_available() > 0:
            self._start_next()
        else:
            self._busy = False

    # ---------------------------------------------------- batched fast path

    def _start_next_run(self) -> None:
        """Service a whole queued run of blocks with one completion event.

        The block-native path: a jitter-free PE charges each block's
        aggregate cost in one multiply (no per-tuple arithmetic at all);
        with jitter the per-tuple draws still happen in take order so the
        noise stream is independent of how tuples were grouped into
        blocks. Either way the simulator schedules one event per run.
        """
        self._busy = True
        runs = self._take_runs(self.batch_size)
        scale = self._load_multiplier / self.host.per_pe_speed()
        jitter = self.service_jitter
        duration = 0.0
        n = 0
        if jitter == 0.0:
            for block in runs:
                cost = block.cost
                if cost is not None:
                    # Inlined TupleBlock.total_cost(): this runs once per
                    # service run, where the method call is measurable.
                    duration += cost * block.count * scale
                else:
                    duration += sum(block.costs.tolist()) * scale
                n += block.count
        else:
            rng_random = self._rng.random
            for block in runs:
                n += block.count
                costs = block.costs
                if costs is None:
                    base = block.cost * scale
                    for _ in range(block.count):
                        duration += base * (
                            1.0 + jitter * (2.0 * rng_random() - 1.0)
                        )
                else:
                    for cost in costs:
                        duration += (cost * scale) * (
                            1.0 + jitter * (2.0 * rng_random() - 1.0)
                        )
        self.busy_seconds += duration
        self._in_service = runs
        stats = self.service_stats
        stats.batches += 1
        stats.tuples += n
        sim = self.sim
        sim.events_coalesced += n - 1
        if self.fault_tolerant:
            self._completion_event = sim.call_after(
                duration, self._complete_run_cb
            )
        else:
            sim.schedule_after(duration, self._complete_run_cb)

    def _complete_run(self) -> None:
        runs = self._in_service
        self._in_service = None
        self._completion_event = None
        processed = 0
        for block in runs:
            processed += block.count
        self.tuples_processed += processed
        self.merger.accept_runs(self.pe_id, runs)
        if self.on_processed_run is not None:
            on_run = self.on_processed_run
            pe_id = self.pe_id
            for block in runs:
                on_run(pe_id, block.start, block.count)
        if self._halted or not self.alive:
            self._busy = False
        elif self._recv_runs._tuples > 0:
            self._start_next_run()
        else:
            self._busy = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkerPE(id={self.pe_id}, host={self.host.name!r}, "
            f"load={self._load_multiplier:g}, processed={self.tuples_processed})"
        )
