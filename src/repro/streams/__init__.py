"""Streaming runtime substrate (the simulated IBM Streams dataplane).

The paper's system executes SPL applications as graphs of processing
elements (PEs) connected by tuple streams. This package models the part of
that runtime the paper evaluates: an ordered **data-parallel region** —

    source -> splitter == N connections ==> worker PEs ==> ordered merger -> sink

with a single-threaded splitter, bounded per-connection buffers
(:mod:`repro.net`), stateless workers whose service time follows an
integer-multiply cost model, and a merger that restores sequential
semantics. Backpressure and drafting are emergent properties of this model,
not scripted behaviours; tests assert they emerge.
"""

from repro.streams.application import Application, ParallelRegionHandle
from repro.streams.graph import GraphError, StreamGraph
from repro.streams.hosts import Host, Placement
from repro.streams.merger import OrderedMerger, UnorderedMerger
from repro.streams.operators import (
    BurstySourceOp,
    Filter,
    Functor,
    Operator,
    PassThrough,
    SinkOp,
    SourceOp,
)
from repro.streams.pe import WorkerPE
from repro.streams.region import ParallelRegion, RegionParams
from repro.streams.sources import (
    FiniteSource,
    InfiniteSource,
    RatedSource,
    TupleSource,
)
from repro.streams.splitter import RegionStalledError, Splitter
from repro.streams.tuples import StreamTuple

__all__ = [
    "Application",
    "BurstySourceOp",
    "ParallelRegionHandle",
    "GraphError",
    "StreamGraph",
    "Filter",
    "Functor",
    "Operator",
    "PassThrough",
    "SinkOp",
    "SourceOp",
    "UnorderedMerger",
    "Host",
    "Placement",
    "OrderedMerger",
    "WorkerPE",
    "ParallelRegion",
    "RegionParams",
    "FiniteSource",
    "InfiniteSource",
    "RatedSource",
    "TupleSource",
    "RegionStalledError",
    "Splitter",
    "StreamTuple",
]
