"""The single-threaded splitter at the front of a parallel region.

The splitter routes each tuple to one worker connection according to a
routing policy, and — crucially — it *elects to block* when the chosen
connection cannot accept the tuple (Section 4.4): it detects would-block
with a non-blocking send, parks on that connection, and charges the wait to
the connection's blocking counter. Having a single thread of control is
what produces drafting (Section 4.2): while the splitter is parked on one
connection, every other connection drains, so the same "draft leader"
tends to absorb all observed blocking.

Policies that set ``allows_reroute`` get the Section 4.4 transport-level
re-routing behaviour instead: on would-block the tuple is offered to
alternate connections, and the splitter blocks only when *every* buffer is
full. The paper shows why that baseline fails; we reproduce the failure.

Failure recovery (fault-tolerant mode)
--------------------------------------

The paper assumes workers slow down but never die; a crashed PE would park
the splitter forever and deadlock the ordered merger on the lost sequence
numbers. In fault-tolerant mode the splitter therefore keeps a bounded
**retransmit buffer** of in-flight (sent but unacknowledged) tuples per
connection. Acknowledgements arrive per tuple once the merger accepts it.
When the recovery layer declares a channel dead, :meth:`fail_channel`

* un-parks the splitter if it was blocked on the dead channel (charging
  the real blocking time) and re-routes the pending tuple,
* marks the channel non-live so no policy decision can land on it (the
  pick is redirected to the cyclically-next live channel and counted in
  ``fault_reroutes``),
* queues the channel's unacknowledged tuples for **replay** to survivors
  (the default gap policy), or hands their sequence numbers back to the
  caller for a bounded-timeout **skip** at the merger.

Replayed tuples retain their original sequence numbers and birth stamps,
so sequential semantics and latency accounting survive the failure: the
merger still emits every tuple exactly once, in order.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.util.perf import BatchStats
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable

    from repro.net.connection import SimulatedConnection
    from repro.sim.engine import Simulator
    from repro.streams.sources import TupleSource
    from repro.streams.tuples import StreamTuple, TupleBlock


class RegionStalledError(RuntimeError):
    """The region can make no progress: every channel is dead.

    Raised by :meth:`Splitter.fail_channel` when failing a channel would
    leave no live survivor to carry traffic (pass ``allow_stall=True``
    when a recovery layer will restore one later), and by the socket
    transport when workers wedge and cannot be joined at close.
    """


@runtime_checkable
class RoutingPolicy(Protocol):
    """What the splitter needs from a routing policy.

    Implementations live in :mod:`repro.core.policies`.
    """

    #: Whether the splitter should try alternate connections on would-block.
    allows_reroute: bool

    def next_connection(self) -> int:
        """Connection index for the next tuple."""

    def reroute_candidates(self, blocked: int) -> "Iterable[int]":
        """Alternate connections to try when ``blocked`` is full."""


class Splitter:
    """Routes the ordered tuple stream across the worker connections."""

    def __init__(
        self,
        sim: "Simulator",
        source: "TupleSource",
        connections: list["SimulatedConnection"],
        policy: RoutingPolicy,
        *,
        send_overhead: float = 1e-5,
        fault_tolerant: bool = False,
        retransmit_capacity: int | None = None,
        batch_size: int = 1,
    ) -> None:
        if not connections:
            raise ValueError("splitter needs at least one connection")
        check_positive("send_overhead", send_overhead)
        check_positive("batch_size", batch_size)
        if retransmit_capacity is not None:
            check_positive("retransmit_capacity", retransmit_capacity)
        self.sim = sim
        self.source = source
        self.connections = connections
        self.policy = policy
        self.send_overhead = float(send_overhead)
        #: Tuples sent per connection (by where they actually went).
        self.sent_per_connection = [0] * len(connections)
        #: Tuples sent to a different connection than the policy chose.
        self.rerouted = 0
        #: Total blocking episodes across all connections.
        self.block_events = 0
        #: True once the source is drained and the last tuple sent.
        self.finished = False
        #: Which channels are currently live (all, until a failure).
        self.live = [True] * len(connections)
        #: Tuples queued for replay after a channel failure.
        self.tuples_replayed = 0
        #: Policy picks redirected away from a dead channel.
        self.fault_reroutes = 0
        #: Tuples evicted from a full retransmit buffer (unreplayable if
        #: their channel later dies; zero under the default sizing).
        self.retransmit_dropped = 0
        #: Per-connection retransmit cap (``None`` = unbounded).
        self.retransmit_capacity = retransmit_capacity
        #: Simulated seconds spent paused by merger flow control.
        self.flow_paused_seconds = 0.0
        self._pending: "StreamTuple | None" = None
        self._target: int | None = None
        self._block_start: float | None = None
        self._started = False
        self._parked_no_live = False
        #: Parked because an open-loop source is between arrivals.
        self._parked_idle = False
        #: Merger->splitter backpressure gate (overload protection only).
        self._flow_gate = None
        self._parked_flow = False
        self._flow_park_start: float | None = None
        #: Replay queue, consumed before the source. Holds StreamTuples in
        #: per-tuple mode and TupleBlocks in block mode (batch_size > 1).
        self._replay: "deque" = deque()
        #: Per-connection sent-but-unacknowledged tuples (FIFO in send
        #: order, which is also each worker's processing order). Same
        #: per-tuple/TupleBlock duality as the replay queue.
        self._inflight: "list[deque] | None" = (
            [deque() for _ in connections] if fault_tolerant else None
        )
        #: Seqs evicted from the retransmit buffer and not yet acked.
        self._unreplayable: list[set[int]] = [set() for _ in connections]
        #: Batched fast path: pull up to this many tuples per dispatch
        #: cycle, apportion them with one policy call, and push each
        #: connection's share with one bulk send. 1 = the per-tuple path,
        #: byte-identical to the pre-batching splitter.
        self.batch_size = int(batch_size)
        #: Tuples (not blocks) in each connection's retransmit buffer —
        #: block mode only, where ``len(deque)`` counts blocks.
        self._inflight_tuples: "list[int] | None" = (
            [0] * len(connections)
            if fault_tolerant and self.batch_size > 1
            else None
        )
        #: Realized dispatch-batch occupancy (batched mode only).
        self.dispatch_stats = BatchStats()
        #: Apportioned sub-runs not yet dispatched: (connection, blocks).
        self._chunks: "deque[tuple[int, list[TupleBlock]]]" = deque()
        self._chunk_items: "list[TupleBlock] | None" = None
        self._chunk_pos = 0
        self._batch_tuple_count = 0
        #: Connection the current batch's head run goes to, advanced per
        #: batch so head-of-line duty at the ordered merger rotates.
        self._batch_rotation = 0
        # Prebound once: the send loop is scheduled per tuple (or per
        # batch), and rebinding the method per send is measurable on the
        # hot path.
        self._try_send_cb = (
            self._try_send if self.batch_size == 1 else self._try_send_batch
        )
        #: Observability hub (None = not recording). Checked only on
        #: episodic branches — blocking, flow pauses, batch boundaries —
        #: never per tuple.
        self._obs = None
        self._block_hist = None
        self._block_span = -1
        self._batch_span = -1
        self._flow_span = -1

    @property
    def tuples_sent(self) -> int:
        """Total tuples pushed into connections so far."""
        return sum(self.sent_per_connection)

    def attach_observability(self, hub) -> None:
        """Register instruments and start recording episode spans."""
        self._obs = hub
        registry = hub.registry
        self._block_hist = registry.histogram(
            "splitter_blocking_seconds",
            help="Per-episode splitter blocking durations",
        )
        registry.gauge_fn(
            "splitter_tuples_sent_total",
            lambda: self.tuples_sent,
            help="Tuples pushed into connections",
        )
        for j in range(len(self.connections)):
            registry.gauge_fn(
                "splitter_connection_tuples_sent_total",
                (lambda jj: lambda: self.sent_per_connection[jj])(j),
                help="Tuples pushed into one connection",
                connection=str(j),
            )
        registry.gauge_fn(
            "splitter_block_events_total",
            lambda: self.block_events,
            help="Blocking episodes across all connections",
        )
        registry.gauge_fn(
            "splitter_rerouted_total",
            lambda: self.rerouted,
            help="Tuples re-routed away from the policy's pick",
        )
        registry.gauge_fn(
            "splitter_fault_reroutes_total",
            lambda: self.fault_reroutes,
            help="Policy picks redirected away from a dead channel",
        )
        registry.gauge_fn(
            "splitter_tuples_replayed_total",
            lambda: self.tuples_replayed,
            help="Tuples queued for replay after channel failures",
        )
        registry.gauge_fn(
            "splitter_flow_paused_seconds",
            lambda: self.flow_paused_seconds,
            help="Seconds paused by merger flow control",
        )
        registry.gauge_fn(
            "splitter_batches_dispatched_total",
            lambda: self.dispatch_stats.batches,
            help="Batched dispatch cycles completed",
        )
        registry.gauge_fn(
            "splitter_batch_mean_occupancy",
            lambda: self.dispatch_stats.mean_occupancy,
            help="Mean tuples per dispatched batch",
        )

    @property
    def fault_tolerant(self) -> bool:
        """Whether the retransmit buffer (and thus replay) is enabled."""
        return self._inflight is not None

    def start(self, at: float = 0.0) -> None:
        """Begin the send loop at simulated time ``at``."""
        if self._started:
            raise RuntimeError("splitter already started")
        self._started = True
        self.sim.call_at(at, self._try_send_cb)

    # ------------------------------------------------- overload protection

    def attach_flow_gate(self, gate) -> None:
        """Install a merger->splitter backpressure gate.

        While the gate is paused the splitter stops *pulling* new tuples
        (a tuple already pending is still delivered — pausing mid-send
        would strand it); the gate's resume edge restarts the loop.
        """
        self._flow_gate = gate
        gate.on_resume = self._flow_resumed

    def notify_available(self) -> None:
        """Wake a splitter parked on an idle (between-arrivals) source."""
        if self._parked_idle:
            self._parked_idle = False
            self.sim.schedule_after(0.0, self._try_send_cb)

    def _flow_resumed(self) -> None:
        if not self._parked_flow:
            return
        self._parked_flow = False
        if self._flow_park_start is not None:
            self.flow_paused_seconds += self.sim.now - self._flow_park_start
            self._flow_park_start = None
            if self._obs is not None and self._flow_span >= 0:
                self._obs.tracer.finish(self._flow_span, self.sim.now)
                self._flow_span = -1
        self.sim.schedule_after(0.0, self._try_send_cb)

    # ------------------------------------------------------------- recovery

    def blocked_on(self) -> int | None:
        """Connection the splitter is parked on, or ``None`` if not blocked."""
        return self._target if self._block_start is not None else None

    @property
    def blocked_since(self) -> float | None:
        """Simulated time the current blocking episode started (if any)."""
        return self._block_start

    def inflight_count(self, connection: int) -> int:
        """Unacknowledged tuples currently charged to ``connection``."""
        if self._inflight is None:
            return 0
        if self._inflight_tuples is not None:
            return self._inflight_tuples[connection]
        return len(self._inflight[connection])

    def acknowledge(self, connection: int, seq: int) -> None:
        """Retire ``seq`` from ``connection``'s retransmit buffer.

        Acks arrive in each connection's FIFO processing order, so the
        acknowledged tuple is the oldest retained one — unless it was
        evicted by the bounded buffer, in which case it is retired from
        the unreplayable set instead.
        """
        if self._inflight is None:
            return
        buffer = self._inflight[connection]
        if buffer and buffer[0].seq == seq:
            buffer.popleft()
            return
        evicted = self._unreplayable[connection]
        if seq in evicted:
            evicted.discard(seq)
            return
        raise RuntimeError(
            f"ack for seq {seq} does not match connection {connection}'s "
            f"retransmit buffer (front: "
            f"{buffer[0].seq if buffer else 'empty'})"
        )

    def acknowledge_run(self, connection: int, start: int, count: int) -> None:
        """Retire the acked range ``[start, start+count)`` (block mode).

        The worker acknowledges whole completed blocks; the retransmit
        buffer holds blocks split at send-accept boundaries, so one ack
        may retire several front blocks, or only part of one (which is
        split, its unacked tail retained). Evicted seqs inside the range
        are retired from the unreplayable set, exactly like
        :meth:`acknowledge`.
        """
        if self._inflight is None:
            return
        buffer = self._inflight[connection]
        evicted = self._unreplayable[connection]
        seq = start
        end = start + count
        retired = 0
        while seq < end:
            if buffer and buffer[0].start == seq:
                front = buffer[0]
                if front.end <= end:
                    buffer.popleft()
                    retired += front.count
                    seq = front.end
                else:
                    done, rest = front.split(end - seq)
                    buffer[0] = rest
                    retired += done.count
                    seq = end
            elif seq in evicted:
                evicted.discard(seq)
                seq += 1
            else:
                raise RuntimeError(
                    f"ack for seq {seq} does not match connection "
                    f"{connection}'s retransmit buffer (front: "
                    f"{buffer[0].start if buffer else 'empty'})"
                )
        self._inflight_tuples[connection] -= retired

    def fail_channel(
        self, channel: int, *, replay: bool = True, allow_stall: bool = False
    ) -> tuple[int, list[int]]:
        """Declare ``channel`` dead and recover its in-flight tuples.

        Returns ``(replayed, lost_seqs)``: how many unacknowledged tuples
        were queued for replay to survivors, and the sequence numbers that
        cannot be replayed (evicted from the bounded retransmit buffer,
        plus — with ``replay=False``, the *skip* gap policy — every
        unacknowledged tuple). The caller routes ``lost_seqs`` to
        :meth:`~repro.streams.merger.OrderedMerger.mark_lost` so the
        merger never waits forever on them.

        Failing the *last* live channel raises
        :class:`RegionStalledError` before any state changes: without a
        survivor there is nowhere to replay and the splitter would park
        forever with no prospect of waking. A recovery layer that will
        restore a channel later (so the park is temporary) passes
        ``allow_stall=True`` to opt in.

        The dead channel's transport is untouched here; callers that want
        the buffers dropped use
        :meth:`~repro.streams.region.ParallelRegion.fail_channel`, which
        also halts the worker and fails the connection.
        """
        if self._inflight is None:
            raise RuntimeError(
                "fail_channel requires a fault-tolerant splitter "
                "(RegionParams(fault_tolerant=True))"
            )
        if not self.live[channel]:
            return (0, [])
        if not allow_stall and sum(self.live) <= 1:
            raise RegionStalledError(
                f"failing channel {channel} leaves no live channel: the "
                "region is stalled. Restore another channel first, or pass "
                "allow_stall=True if a recovery layer will restore one "
                "later."
            )
        self.live[channel] = False

        if self.batch_size > 1:
            # Abandon the in-progress batch: undelivered chunk tuples go
            # back to the replay queue and are re-apportioned over the
            # surviving channels (un-parking from the dead channel if the
            # splitter was blocked mid-chunk).
            self._reset_batch_dispatch()
        # Un-park from the dead channel before anything else: the wait
        # would never end (this is exactly the deadlock being fixed).
        elif self._block_start is not None and self._target == channel:
            self.connections[channel].cancel_wait()
            self._end_block(channel)
            self._target = None
            self.sim.schedule_after(0.0, self._try_send_cb)
        elif self._pending is not None and self._target == channel:
            # Not parked but aimed at the dead channel (a send is already
            # scheduled): just force a re-pick when it fires.
            self._target = None

        unacked = self._inflight[channel]
        lost = sorted(self._unreplayable[channel])
        self._unreplayable[channel] = set()
        replayed = 0
        if self.batch_size > 1:
            # Block mode: the retransmit buffer holds TupleBlocks.
            if replay:
                replayed = sum(block.count for block in unacked)
                self.tuples_replayed += replayed
                self._replay.extend(unacked)
            else:
                for block in unacked:
                    lost.extend(range(block.start, block.end))
            unacked.clear()
            self._inflight_tuples[channel] = 0
        elif replay:
            replayed = len(unacked)
            self.tuples_replayed += replayed
            self._replay.extend(unacked)
            unacked.clear()
        else:
            lost.extend(tup.seq for tup in unacked)
            unacked.clear()
        if replayed and self.finished:
            # The source had drained but replay revives the send loop.
            self.finished = False
            self.sim.schedule_after(0.0, self._try_send_cb)
        elif replayed and self._parked_idle:
            # Parked between arrivals of an open-loop source: the replay
            # queue has work now, so wake up rather than wait for the
            # next arrival (which may never come).
            self._parked_idle = False
            self.sim.schedule_after(0.0, self._try_send_cb)
        return (replayed, lost)

    def restore_channel(self, channel: int) -> None:
        """Mark a recovered ``channel`` live again.

        The caller is responsible for having reset the transport; routing
        resumes the next time the policy picks the channel.
        """
        if self.live[channel]:
            return
        self.live[channel] = True
        if self._parked_no_live:
            self._parked_no_live = False
            self.sim.schedule_after(0.0, self._try_send_cb)

    # ------------------------------------------------------------- internal

    def _try_send(self) -> None:
        if self._pending is None:
            gate = self._flow_gate
            if gate is not None and gate.paused:
                # Merger backpressure: hold off before pulling the next
                # tuple; the gate's resume edge restarts the loop.
                self._parked_flow = True
                if self._flow_park_start is None:
                    self._flow_park_start = self.sim.now
                    if self._obs is not None:
                        self._flow_span = self._obs.tracer.start(
                            "flow_pause", self._flow_park_start
                        )
                return
            if self._replay:
                tup = self._replay.popleft()
            else:
                tup = self.source.next_tuple()
                if tup is None:
                    if self.source.idle():
                        # Open-loop source between arrivals: park until
                        # notify_available() wakes us.
                        self._parked_idle = True
                        return
                    self.finished = True
                    return
            if tup.born_at is None:
                tup.born_at = self.sim.now
            self._pending = tup
            self._target = None
        if self._target is None:
            target = self.policy.next_connection()
            if not 0 <= target < len(self.connections):
                raise ValueError(
                    f"policy routed to invalid connection {target}"
                )
            if not self.live[target]:
                live_target = self._live_alternative(target)
                if live_target is None:
                    # Every channel is dead: park until one is restored.
                    self._parked_no_live = True
                    return
                self.fault_reroutes += 1
                target = live_target
            self._target = target

        target = self._target
        assert target is not None and self._pending is not None
        if self.connections[target].send_nowait(self._pending):
            self._sent(target)
            return

        if self.policy.allows_reroute:
            for alt in self.policy.reroute_candidates(target):
                if alt == target or not self.live[alt]:
                    continue
                if self.connections[alt].send_nowait(self._pending):
                    self.rerouted += 1
                    self._sent(alt)
                    return

        # Elect to block on the originally chosen connection, recording for
        # how long (the MSG_DONTWAIT + select dance of Section 3).
        self._begin_block(target)
        self.connections[target].wait_for_send_space(self._on_send_space)

    def _live_alternative(self, dead: int) -> int | None:
        """The cyclically-next live channel after ``dead`` (or ``None``)."""
        n = len(self.connections)
        for offset in range(1, n):
            candidate = (dead + offset) % n
            if self.live[candidate]:
                return candidate
        return None

    def _begin_block(self, target: int) -> None:
        """Open a blocking episode on ``target`` (span + counters)."""
        self.block_events += 1
        self._block_start = self.sim.now
        obs = self._obs
        if obs is not None:
            self._block_span = obs.tracer.start(
                "blocking", self._block_start, connection=target
            )

    def _end_block(self, target: int) -> None:
        """Close the open blocking episode, charging ``target``."""
        blocked = self.sim.now - self._block_start
        self._block_start = None
        self.connections[target].blocking.add(blocked)
        obs = self._obs
        if obs is not None:
            self._block_hist.observe(blocked)
            if self._block_span >= 0:
                obs.tracer.finish(self._block_span, self.sim.now)
                self._block_span = -1

    def _on_send_space(self) -> None:
        target = self._target
        assert target is not None and self._block_start is not None
        self._end_block(target)
        sent = self.connections[target].send_nowait(self._pending)
        if not sent:  # pragma: no cover - wakeup guarantees space
            raise RuntimeError("woken without send space")
        self._sent(target)

    def _sent(self, connection: int) -> None:
        self.sent_per_connection[connection] += 1
        if self._inflight is not None:
            self._record_inflight(connection, self._pending)
        self._pending = None
        self._target = None
        self.sim.schedule_after(self.send_overhead, self._try_send_cb)

    def _record_inflight(self, connection: int, tup: "StreamTuple") -> None:
        buffer = self._inflight[connection]
        capacity = self.retransmit_capacity
        if capacity is not None and len(buffer) >= capacity:
            evicted = buffer.popleft()
            self._unreplayable[connection].add(evicted.seq)
            self.retransmit_dropped += 1
        buffer.append(tup)

    # ---------------------------------------------------- batched fast path

    def _try_send_batch(self) -> None:
        """Block-native dispatch cycle: pull, apportion, and push runs.

        One cycle pulls up to ``batch_size`` tuples as contiguous
        :class:`~repro.streams.tuples.TupleBlock` columns (replay queue
        first), apportions them across connections with a single policy
        call, and pushes each connection's share block by block. The
        per-tuple send cost still accrues — the cycle ends by sleeping
        ``send_overhead * batch`` in one event — and blocking is charged
        per episode to the connection that filled up, so the blocking-rate
        samples the balancer reads keep their meaning (at batch, rather
        than tuple, granularity).
        """
        # Chunk progress lives in locals and is persisted to the
        # ``_chunk_*`` attributes only when the dispatcher elects to block
        # — the simulator is single-threaded, so nothing can observe the
        # in-flight state between those points.
        chunks = self._chunks
        connections = self.connections
        sent_per = self.sent_per_connection
        inflight = self._inflight
        while True:
            if self._chunk_items is None:
                if not chunks:
                    if not self._pull_batch():
                        return  # parked (flow/idle/no-live) or finished
                target, blocks = chunks.popleft()
                pos = 0
            else:
                # Resuming after a blocking episode: reload and clear the
                # persisted progress.
                target = self._target
                blocks = self._chunk_items
                pos = self._chunk_pos
                self._chunk_items = None
                self._target = None
            connection = connections[target]
            n_blocks = len(blocks)
            while pos < n_blocks:
                block = blocks[pos]
                accepted = connection.send_run(block)
                if accepted == block.count:
                    sent_per[target] += accepted
                    if inflight is not None:
                        self._record_inflight_run(target, block)
                    pos += 1
                elif accepted:
                    # Partial accept: the bulk send's own flow-control
                    # pump may have drained tuples onward and freed send
                    # space; split at the accepted boundary and retry the
                    # tail before electing to block.
                    head, tail = block.split(accepted)
                    sent_per[target] += accepted
                    if inflight is not None:
                        self._record_inflight_run(target, head)
                    blocks[pos] = tail
                else:
                    break
            if pos < n_blocks:
                # Elect to block on this connection for the remainder of
                # the chunk (the MSG_DONTWAIT + select dance of Section 3,
                # once per full buffer instead of once per tuple).
                self._chunk_items = blocks
                self._chunk_pos = pos
                self._target = target
                self._begin_block(target)
                connection.wait_for_send_space(self._on_send_space_batch)
                return
            if not chunks:
                # Batch fully dispatched: charge the per-tuple send cost
                # in one event and record the realized occupancy.
                n = self._batch_tuple_count
                self._batch_tuple_count = 0
                stats = self.dispatch_stats
                stats.batches += 1
                stats.tuples += n
                self.sim.events_coalesced += n - 1
                obs = self._obs
                if obs is not None and self._batch_span >= 0:
                    obs.tracer.finish(self._batch_span, self.sim.now)
                    self._batch_span = -1
                self.sim.schedule_after(
                    self.send_overhead * n, self._try_send_cb
                )
                return

    def _pull_batch(self) -> bool:
        """Pull and apportion the next batch; ``False`` = parked/finished."""
        gate = self._flow_gate
        if gate is not None and gate.paused:
            # Merger backpressure: hold off before pulling the next batch;
            # the gate's resume edge restarts the loop.
            self._parked_flow = True
            if self._flow_park_start is None:
                self._flow_park_start = self.sim.now
                if self._obs is not None:
                    self._flow_span = self._obs.tracer.start(
                        "flow_pause", self._flow_park_start
                    )
            return False
        limit = self.batch_size
        replay = self._replay
        if not replay:
            # Steady state: no replayed blocks queued, so the batch is one
            # contiguous pull from the source.
            block = self.source.next_block(limit)
            if block is None:
                if self.source.idle():
                    self._parked_idle = True
                else:
                    self.finished = True
                return False
            if block.born is None and block.borns is None:
                block.born = self.sim.now
            return self._apportion([block], block.count)
        blocks: "list[TupleBlock]" = []
        total = 0
        while replay and total < limit:
            block = replay[0]
            if total + block.count <= limit:
                replay.popleft()
            else:
                block, tail = block.split(limit - total)
                replay[0] = tail
            blocks.append(block)
            total += block.count
        if total < limit:
            block = self.source.next_block(limit - total)
            if block is not None:
                blocks.append(block)
                total += block.count
        if not blocks:
            if self.source.idle():
                # Open-loop source between arrivals: park until
                # notify_available() wakes us.
                self._parked_idle = True
            else:
                self.finished = True
            return False
        now = self.sim.now
        for block in blocks:
            if block.born is None and block.borns is None:
                block.born = now
        return self._apportion(blocks, total)

    def _apportion(self, blocks: "list[TupleBlock]", total: int) -> bool:
        """Carve the pulled blocks into per-connection runs by weight."""
        n = len(self.connections)
        policy = self.policy
        allocate = getattr(policy, "allocate_batch", None)
        if allocate is not None:
            alloc = allocate(total)
            if (
                len(alloc) != n
                or sum(alloc) != total
                or min(alloc) < 0
            ):
                raise ValueError(
                    f"policy allocated {alloc} for a batch of "
                    f"{total} tuples over {n} connections"
                )
        else:
            # Custom policy without a batch method: realize the same
            # distribution from per-tuple picks.
            alloc = [0] * n
            for _ in range(total):
                target = policy.next_connection()
                if not 0 <= target < n:
                    raise ValueError(
                        f"policy routed to invalid connection {target}"
                    )
                alloc[target] += 1
        if not all(self.live):
            for j in range(n):
                if alloc[j] and not self.live[j]:
                    alt = self._live_alternative(j)
                    if alt is None:
                        # Every channel is dead: stash the batch back and
                        # park until one is restored.
                        self._replay.extendleft(reversed(blocks))
                        self._parked_no_live = True
                        return False
                    self.fault_reroutes += alloc[j]
                    alloc[alt] += alloc[j]
                    alloc[j] = 0
        self._batch_tuple_count = total
        obs = self._obs
        if obs is not None:
            self._batch_span = obs.tracer.start(
                "batch_dispatch", self.sim.now, tuples=total
            )
        start = self._batch_rotation
        self._batch_rotation = (start + 1) % n
        chunks = self._chunks
        # Walk the pulled blocks once, splitting only at chunk boundaries:
        # each connection's share stays a handful of column blocks however
        # large the batch.
        block_i = 0
        n_blocks = len(blocks)
        current = blocks[0]
        for k in range(n):
            j = (start + k) % n
            count = alloc[j]
            if not count:
                continue
            share: "list[TupleBlock]" = []
            while count:
                if current.count <= count:
                    share.append(current)
                    count -= current.count
                    block_i += 1
                    current = (
                        blocks[block_i] if block_i < n_blocks else None
                    )
                else:
                    head, current = current.split(count)
                    share.append(head)
                    count = 0
            chunks.append((j, share))
        return True

    def _record_inflight_run(self, connection: int, block: "TupleBlock") -> None:
        """Charge a sent block to ``connection``'s retransmit buffer."""
        buffer = self._inflight[connection]
        buffer.append(block)
        tuples = self._inflight_tuples[connection] + block.count
        capacity = self.retransmit_capacity
        if capacity is not None:
            evicted_seqs = self._unreplayable[connection]
            while tuples > capacity:
                front = buffer[0]
                over = tuples - capacity
                if front.count <= over:
                    buffer.popleft()
                    evicted_seqs.update(range(front.start, front.end))
                    self.retransmit_dropped += front.count
                    tuples -= front.count
                else:
                    evicted, kept = front.split(over)
                    buffer[0] = kept
                    evicted_seqs.update(range(evicted.start, evicted.end))
                    self.retransmit_dropped += over
                    tuples -= over
        self._inflight_tuples[connection] = tuples

    def _on_send_space_batch(self) -> None:
        target = self._target
        assert target is not None and self._block_start is not None
        self._end_block(target)
        self._try_send_batch()

    def _reset_batch_dispatch(self) -> None:
        """Abandon in-progress batch dispatch after a channel failure.

        Undelivered chunk blocks — whatever their target — go back to the
        head of the replay queue, to be re-apportioned over the live
        channels on the next cycle. A splitter parked on a full send
        buffer is un-parked with its elapsed blocking charged (the wait
        really happened, whoever the target was).
        """
        if self._chunk_items is None and not self._chunks:
            return
        target = self._target
        if self._block_start is not None and target is not None:
            self.connections[target].cancel_wait()
            self._end_block(target)
        leftovers: "list[TupleBlock]" = []
        if self._chunk_items is not None:
            leftovers.extend(self._chunk_items[self._chunk_pos :])
        for _, items in self._chunks:
            leftovers.extend(items)
        self._chunks.clear()
        self._chunk_items = None
        self._chunk_pos = 0
        self._target = None
        self._batch_tuple_count = 0
        obs = self._obs
        if obs is not None and self._batch_span >= 0:
            obs.tracer.finish(self._batch_span, self.sim.now, aborted=True)
            self._batch_span = -1
        self._replay.extendleft(reversed(leftovers))
        self.sim.schedule_after(0.0, self._try_send_cb)
