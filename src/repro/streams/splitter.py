"""The single-threaded splitter at the front of a parallel region.

The splitter routes each tuple to one worker connection according to a
routing policy, and — crucially — it *elects to block* when the chosen
connection cannot accept the tuple (Section 4.4): it detects would-block
with a non-blocking send, parks on that connection, and charges the wait to
the connection's blocking counter. Having a single thread of control is
what produces drafting (Section 4.2): while the splitter is parked on one
connection, every other connection drains, so the same "draft leader"
tends to absorb all observed blocking.

Policies that set ``allows_reroute`` get the Section 4.4 transport-level
re-routing behaviour instead: on would-block the tuple is offered to
alternate connections, and the splitter blocks only when *every* buffer is
full. The paper shows why that baseline fails; we reproduce the failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterable

    from repro.net.connection import SimulatedConnection
    from repro.sim.engine import Simulator
    from repro.streams.sources import TupleSource
    from repro.streams.tuples import StreamTuple


@runtime_checkable
class RoutingPolicy(Protocol):
    """What the splitter needs from a routing policy.

    Implementations live in :mod:`repro.core.policies`.
    """

    #: Whether the splitter should try alternate connections on would-block.
    allows_reroute: bool

    def next_connection(self) -> int:
        """Connection index for the next tuple."""

    def reroute_candidates(self, blocked: int) -> "Iterable[int]":
        """Alternate connections to try when ``blocked`` is full."""


class Splitter:
    """Routes the ordered tuple stream across the worker connections."""

    def __init__(
        self,
        sim: "Simulator",
        source: "TupleSource",
        connections: list["SimulatedConnection"],
        policy: RoutingPolicy,
        *,
        send_overhead: float = 1e-5,
    ) -> None:
        if not connections:
            raise ValueError("splitter needs at least one connection")
        check_positive("send_overhead", send_overhead)
        self.sim = sim
        self.source = source
        self.connections = connections
        self.policy = policy
        self.send_overhead = float(send_overhead)
        #: Tuples sent per connection (by where they actually went).
        self.sent_per_connection = [0] * len(connections)
        #: Tuples sent to a different connection than the policy chose.
        self.rerouted = 0
        #: Total blocking episodes across all connections.
        self.block_events = 0
        #: True once the source is drained and the last tuple sent.
        self.finished = False
        self._pending: "StreamTuple | None" = None
        self._target: int | None = None
        self._block_start: float | None = None
        self._started = False
        # Prebound once: _try_send is scheduled per tuple, and rebinding
        # the method per send is measurable on the hot path.
        self._try_send_cb = self._try_send

    @property
    def tuples_sent(self) -> int:
        """Total tuples pushed into connections so far."""
        return sum(self.sent_per_connection)

    def start(self, at: float = 0.0) -> None:
        """Begin the send loop at simulated time ``at``."""
        if self._started:
            raise RuntimeError("splitter already started")
        self._started = True
        self.sim.call_at(at, self._try_send)

    # ------------------------------------------------------------- internal

    def _try_send(self) -> None:
        if self._pending is None:
            tup = self.source.next_tuple()
            if tup is None:
                self.finished = True
                return
            tup.born_at = self.sim.now
            self._pending = tup
            self._target = self.policy.next_connection()
            if not 0 <= self._target < len(self.connections):
                raise ValueError(
                    f"policy routed to invalid connection {self._target}"
                )

        target = self._target
        assert target is not None and self._pending is not None
        if self.connections[target].send_nowait(self._pending):
            self._sent(target)
            return

        if self.policy.allows_reroute:
            for alt in self.policy.reroute_candidates(target):
                if alt == target:
                    continue
                if self.connections[alt].send_nowait(self._pending):
                    self.rerouted += 1
                    self._sent(alt)
                    return

        # Elect to block on the originally chosen connection, recording for
        # how long (the MSG_DONTWAIT + select dance of Section 3).
        self.block_events += 1
        self._block_start = self.sim.now
        self.connections[target].wait_for_send_space(self._on_send_space)

    def _on_send_space(self) -> None:
        target = self._target
        assert target is not None and self._block_start is not None
        blocked = self.sim.now - self._block_start
        self._block_start = None
        self.connections[target].blocking.add(blocked)
        sent = self.connections[target].send_nowait(self._pending)
        if not sent:  # pragma: no cover - wakeup guarantees space
            raise RuntimeError("woken without send space")
        self._sent(target)

    def _sent(self, connection: int) -> None:
        self.sent_per_connection[connection] += 1
        self._pending = None
        self._target = None
        self.sim.schedule_after(self.send_overhead, self._try_send_cb)
