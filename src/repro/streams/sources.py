"""Tuple sources feeding the splitter.

The paper's experiments run a saturating source: the splitter always has
the next tuple ready, so region throughput is gated by the workers (or, at
high parallelism, by the splitter's own send cost). A
:class:`FiniteSource` bounds the run to a fixed tuple count — the paper's
"total execution time" metric is the time to drain such a source through
the region. :class:`InfiniteSource` supports open-ended runs that stop at a
time horizon instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

from repro.streams.tuples import StreamTuple
from repro.util.validation import check_positive

CostModel = Callable[[int], float]
"""Maps a tuple's sequence number to its base cost in integer multiplies."""


def constant_cost(multiplies: float) -> CostModel:
    """Cost model where every tuple costs the same (the paper's workload)."""
    check_positive("multiplies", multiplies)
    return lambda _seq: multiplies


class TupleSource(ABC):
    """Produces the totally ordered tuple stream entering the splitter."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._next_seq = 0

    @property
    def produced(self) -> int:
        """Tuples handed out so far."""
        return self._next_seq

    @abstractmethod
    def exhausted(self) -> bool:
        """Whether no further tuples will be produced."""

    def next_tuple(self) -> StreamTuple | None:
        """The next tuple in sequence order, or ``None`` when exhausted."""
        if self.exhausted():
            return None
        tup = StreamTuple(
            seq=self._next_seq,
            cost_multiplies=self._cost_model(self._next_seq),
        )
        self._next_seq += 1
        return tup


class FiniteSource(TupleSource):
    """Exactly ``total`` tuples; used for execution-time experiments."""

    def __init__(self, total: int, cost_model: CostModel) -> None:
        super().__init__(cost_model)
        check_positive("total", total)
        self.total = int(total)

    def exhausted(self) -> bool:
        return self._next_seq >= self.total


class InfiniteSource(TupleSource):
    """Unbounded stream; the run is stopped by a time horizon instead."""

    def exhausted(self) -> bool:
        return False
