"""Tuple sources feeding the splitter.

The paper's experiments run a saturating source: the splitter always has
the next tuple ready, so region throughput is gated by the workers (or, at
high parallelism, by the splitter's own send cost). A
:class:`FiniteSource` bounds the run to a fixed tuple count — the paper's
"total execution time" metric is the time to drain such a source through
the region. :class:`InfiniteSource` supports open-ended runs that stop at a
time horizon instead.

:class:`RatedSource` is the odd one out: an *open-loop* source with its
own arrival process, so offered load is decoupled from the region's
service rate and can exceed it — the overload regime the other sources
cannot express (a pull-based source always runs exactly at capacity).
It is also where admission control attaches: arrivals are offered to a
shedding policy *before* sequence assignment, so the admitted stream
stays gap-free and ordered-merge semantics are untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.streams.tuples import StreamTuple, TupleBlock, _column
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.overload.admission import AdmissionController
    from repro.sim.engine import Simulator

CostModel = Callable[[int], float]
"""Maps a tuple's sequence number to its base cost in integer multiplies."""


def constant_cost(multiplies: float) -> CostModel:
    """Cost model where every tuple costs the same (the paper's workload).

    The returned model carries a ``uniform_cost`` marker attribute so the
    block-native dataplane can build scalar-cost
    :class:`~repro.streams.tuples.TupleBlock` columns without evaluating
    the model once per tuple.
    """
    check_positive("multiplies", multiplies)

    def model(_seq: int) -> float:
        return multiplies

    model.uniform_cost = float(multiplies)
    return model


class TupleSource(ABC):
    """Produces the totally ordered tuple stream entering the splitter."""

    def __init__(self, cost_model: CostModel) -> None:
        self._cost_model = cost_model
        self._next_seq = 0
        # Constant-cost models carry the marker; cache it so the block
        # pull does not pay a getattr per dispatch cycle.
        self._uniform_cost = getattr(cost_model, "uniform_cost", None)

    @property
    def produced(self) -> int:
        """Tuples handed out so far."""
        return self._next_seq

    @abstractmethod
    def exhausted(self) -> bool:
        """Whether no further tuples will be produced."""

    def idle(self) -> bool:
        """Temporarily empty but not exhausted (more tuples will arrive).

        Pull-based sources are never idle: they either have the next
        tuple or are exhausted. Open-loop sources (:class:`RatedSource`)
        return ``True`` between arrivals; the splitter then parks and is
        woken by the source's availability callback instead of finishing.
        """
        return False

    def next_tuple(self) -> StreamTuple | None:
        """The next tuple in sequence order, or ``None`` when exhausted."""
        if self.exhausted():
            return None
        tup = StreamTuple(
            seq=self._next_seq,
            cost_multiplies=self._cost_model(self._next_seq),
        )
        self._next_seq += 1
        return tup

    def next_batch(self, max_n: int) -> list[StreamTuple]:
        """Up to ``max_n`` next tuples in sequence order (may be fewer).

        The batched splitter's bulk pull. Never waits: an exhausted or
        idle source yields a short (possibly empty) batch, and the caller
        falls back to the same park/finish handling as the per-tuple path.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        batch: list[StreamTuple] = []
        while len(batch) < max_n:
            tup = self.next_tuple()
            if tup is None:
                break
            batch.append(tup)
        return batch

    def _block_limit(self, max_n: int) -> int:
        """Tuples available for an immediate block pull (subclass hook)."""
        return 0 if self.exhausted() else max_n

    def next_block(self, max_n: int) -> "TupleBlock | None":
        """Up to ``max_n`` next tuples as one contiguous column block.

        The block-native splitter's bulk pull: sequence numbers never
        materialize (they are the block's implicit range) and a
        constant-cost model (``uniform_cost`` marker) yields a scalar-cost
        block with no per-tuple work at all. Returns ``None`` when the
        source is exhausted or idle — same park/finish handling as
        :meth:`next_batch` returning empty.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        n = self._block_limit(max_n)
        if n <= 0:
            return None
        start = self._next_seq
        uniform = self._uniform_cost
        if uniform is not None:
            block = TupleBlock.uniform(start, n, uniform)
        else:
            model = self._cost_model
            block = TupleBlock.from_costs(
                start, [model(seq) for seq in range(start, start + n)]
            )
        self._next_seq = start + n
        return block


class FiniteSource(TupleSource):
    """Exactly ``total`` tuples; used for execution-time experiments."""

    def __init__(self, total: int, cost_model: CostModel) -> None:
        super().__init__(cost_model)
        check_positive("total", total)
        self.total = int(total)

    def exhausted(self) -> bool:
        return self._next_seq >= self.total

    def _block_limit(self, max_n: int) -> int:
        return min(max_n, self.total - self._next_seq)


class InfiniteSource(TupleSource):
    """Unbounded stream; the run is stopped by a time horizon instead."""

    def exhausted(self) -> bool:
        return False


class RatedSource(TupleSource):
    """Open-loop arrivals at ``rate`` tuples/second, with admission control.

    Arrivals are scheduled on the simulator (deterministic inter-arrival
    ``1/rate``; :meth:`set_rate`/:meth:`scale_rate` change the pace from
    the next arrival on, which is how overload-burst faults are
    injected). Each arrival is offered to the attached
    :class:`~repro.overload.admission.AdmissionController` (if any)
    *before* it enters the backlog — shed tuples never receive a
    sequence number. Admitted arrivals queue with their arrival
    timestamp; :meth:`next_tuple` stamps that timestamp as the tuple's
    ``born_at``, so end-to-end latency includes the time spent waiting
    in the input queue (exactly the latency that grows without bound in
    the unprotected overload regime).

    The source must be :meth:`arm`-ed on a simulator before the region
    starts; ``on_available`` (typically
    :meth:`~repro.streams.splitter.Splitter.notify_available`) wakes a
    consumer that went idle between arrivals.
    """

    def __init__(
        self,
        rate: float,
        cost_model: CostModel,
        *,
        total: int | None = None,
    ) -> None:
        super().__init__(cost_model)
        check_positive("rate", rate)
        if total is not None:
            check_positive("total", total)
        self._rate = float(rate)
        #: Stop generating after this many arrivals (``None`` = open-ended).
        self.total = int(total) if total is not None else None
        #: Admission controller consulted per arrival (``None`` admits all).
        self.admission: "AdmissionController | None" = None
        #: Arrivals so far (admitted + shed).
        self.arrivals = 0
        #: Arrivals shed by admission control.
        self.tuples_shed = 0
        #: Peak backlog (admitted arrivals not yet pulled) — the memory
        #: bound the overload acceptance criteria assert on.
        self.max_backlog = 0
        self._queue: deque[float] = deque()
        self._sim: "Simulator | None" = None
        self._on_available: Callable[[], None] | None = None
        self._arrive_cb = self._arrive

    @property
    def rate(self) -> float:
        """Current offered rate in tuples/second."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the offered rate from the next arrival on."""
        check_positive("rate", rate)
        self._rate = float(rate)

    def scale_rate(self, factor: float) -> None:
        """Multiply the offered rate (overload bursts scale, then unscale)."""
        check_positive("factor", factor)
        self.set_rate(self._rate * factor)

    def backlog(self) -> int:
        """Admitted arrivals waiting to be pulled by the splitter."""
        return len(self._queue)

    def arm(
        self,
        sim: "Simulator",
        on_available: Callable[[], None] | None = None,
    ) -> None:
        """Start the arrival process on ``sim``."""
        if self._sim is not None:
            raise RuntimeError("rated source already armed")
        self._sim = sim
        self._on_available = on_available
        sim.schedule_after(1.0 / self._rate, self._arrive_cb)

    def exhausted(self) -> bool:
        return (
            self.total is not None
            and self.arrivals >= self.total
            and not self._queue
        )

    def idle(self) -> bool:
        return not self._queue and not self.exhausted()

    def next_tuple(self) -> StreamTuple | None:
        if not self._queue:
            return None
        born = self._queue.popleft()
        tup = StreamTuple(
            seq=self._next_seq,
            cost_multiplies=self._cost_model(self._next_seq),
            born_at=born,
        )
        self._next_seq += 1
        return tup

    def next_block(self, max_n: int) -> TupleBlock | None:
        """Drain up to ``max_n`` backlogged arrivals as one block.

        Arrival timestamps become the block's ``borns`` column, so the
        merger's latency accounting still starts at queue entry.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        queue = self._queue
        n = min(max_n, len(queue))
        if n <= 0:
            return None
        start = self._next_seq
        popleft = queue.popleft
        borns = [popleft() for _ in range(n)]
        uniform = self._uniform_cost
        if uniform is not None:
            block = TupleBlock.uniform(start, n, uniform)
            block.borns = _column(borns)
        else:
            block = TupleBlock.from_costs(
                start,
                [model(seq) for seq in range(start, start + n)],
                borns=borns,
            )
        self._next_seq = start + n
        return block

    def _arrive(self) -> None:
        sim = self._sim
        assert sim is not None
        self.arrivals += 1
        if self.admission is None or self.admission.offer(
            self.arrivals - 1, len(self._queue)
        ):
            self._queue.append(sim.now)
            if len(self._queue) > self.max_backlog:
                self.max_backlog = len(self._queue)
            if self._on_available is not None:
                self._on_available()
        else:
            self.tuples_shed += 1
        if self.total is None or self.arrivals < self.total:
            sim.schedule_after(1.0 / self._rate, self._arrive_cb)
