"""The ordered merger at the back of a parallel region.

Sequential semantics (Section 4.1): tuples must leave the region in exactly
the order they entered the splitter, as if a single PE had processed them
all. The merger therefore holds back any tuple whose predecessors have not
yet arrived — which is why the whole region is gated by its slowest worker,
and why per-connection throughput carries no information (Section 4.3).

The merger's reordering buffer is unbounded, matching the paper's
implementation choice to "block at the splitter" rather than at the merger
("it is an artifact of our implementation *where* we block. But we
fundamentally have to block *somewhere*"). Its occupancy stays bounded in
practice by the connections' bounded buffers.

Failure recovery: a crashed worker's unacknowledged tuples are normally
*replayed* to survivors by the splitter, so the merger never waits forever
on a lost sequence number and its invariants are untouched. Under the
bounded-timeout *skip* gap policy the recovery layer instead declares those
sequence numbers lost via :meth:`OrderedMerger.mark_lost`; the merger
advances past them (counting ``tuples_lost``) and tolerates any late
arrival of a skipped tuple as a counted drop rather than a
:class:`SequenceError`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.streams.tuples import StreamTuple, TupleBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class SequenceError(RuntimeError):
    """A tuple arrived that violates sequence bookkeeping (duplicate/stale)."""


class OrderedMerger:
    """Restores global sequence order across N worker outputs."""

    def __init__(
        self,
        sim: "Simulator",
        *,
        on_emit: Callable[[StreamTuple], None] | None = None,
    ) -> None:
        self.sim = sim
        self.on_emit = on_emit
        self._next_seq = 0
        self._pending: dict[int, StreamTuple] = {}
        #: Block-native reordering buffer: whole TupleBlocks parked intact,
        #: keyed by their starting seq. One dict entry holds B tuples.
        self._pending_runs: dict[int, TupleBlock] = {}
        #: Tuples (not blocks) held in ``_pending_runs``.
        self._pending_run_tuples = 0
        #: Tuples emitted downstream, in order.
        self.emitted = 0
        #: Simulated time of the most recent emission.
        self.last_emit_time: float | None = None
        #: Peak size of the reordering buffer (diagnostic).
        self.max_pending = 0
        #: Tuples received per upstream worker (diagnostic).
        self.received_per_worker: dict[int, int] = {}
        #: Sum of end-to-end region latencies (seconds) of emitted tuples
        #: that carried a ``born_at`` stamp, and their count. The ratio is
        #: the mean region latency; samplers difference it per interval.
        self.latency_seconds = 0.0
        self.latency_count = 0
        self._completion_target: int | None = None
        self._on_complete: Callable[[], None] | None = None
        #: Sequence numbers declared lost (skip gap policy), not yet passed.
        self._lost: set[int] = set()
        #: Sequence numbers already skipped over (kept to classify a late
        #: arrival of a skipped tuple as a drop, not a sequence violation).
        self._skipped: set[int] = set()
        #: Gaps skipped over instead of waiting/replaying (skip gap policy).
        self.tuples_lost = 0
        #: Tuples that arrived after their seq had been declared lost.
        self.late_arrivals = 0
        #: Merger->splitter backpressure gate (overload protection only).
        self._flow_gate = None
        #: When set (overload protection), per-emit end-to-end latencies
        #: are appended here; the experiment sampler drains it per
        #: interval to track p99 over time.
        self.latency_samples: list[float] | None = None
        #: When set (observability), per-emit end-to-end latencies are
        #: additionally recorded into this fixed-bucket histogram.
        self.latency_histogram = None

    @property
    def next_seq(self) -> int:
        """Sequence number the merger is waiting for."""
        return self._next_seq

    @property
    def pending_count(self) -> int:
        """Tuples held back waiting for predecessors."""
        return len(self._pending) + self._pending_run_tuples

    def attach_observability(self, hub) -> None:
        """Register the merger's instruments on ``hub``."""
        registry = hub.registry
        self.latency_histogram = registry.histogram(
            "merger_latency_seconds",
            help="End-to-end region latency of emitted tuples",
        )
        registry.gauge_fn(
            "merger_tuples_emitted_total",
            lambda: self.emitted,
            help="Tuples emitted downstream in order",
        )
        registry.gauge_fn(
            "merger_pending_tuples",
            lambda: self.pending_count,
            help="Tuples held back waiting for predecessors",
        )
        registry.gauge_fn(
            "merger_max_pending",
            lambda: self.max_pending,
            help="Peak reordering-buffer occupancy",
        )
        registry.gauge_fn(
            "merger_tuples_lost_total",
            lambda: self.tuples_lost,
            help="Sequence gaps skipped under the skip gap policy",
        )
        registry.gauge_fn(
            "merger_late_arrivals_total",
            lambda: self.late_arrivals,
            help="Tuples arriving after their seq was declared lost",
        )

    def attach_flow_gate(self, gate) -> None:
        """Report pending-buffer occupancy to a flow-control ``gate``.

        The gate is updated after every batch of accepts/skips; when
        occupancy crosses the gate's high watermark the splitter stops
        pulling tuples until it drains to the low one.
        """
        self._flow_gate = gate

    def on_completion(self, target: int, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once ``target`` tuples have been disposed of.

        Emitted and declared-lost tuples both count: a finite budget under
        the skip gap policy still drains even when its tail is lost.
        """
        if target <= 0:
            raise ValueError(f"target must be positive, got {target}")
        self._completion_target = target
        self._on_complete = callback

    def accept(self, worker_id: int, tup: StreamTuple) -> None:
        """Receive a processed tuple from worker ``worker_id``."""
        pending = self._pending
        seq = tup.seq
        if seq < self._next_seq or seq in pending:
            if seq in self._skipped or seq in self._lost:
                # A tuple the recovery layer already gave up on (skip gap
                # policy) straggled in — drop it, order is preserved.
                self._lost.discard(seq)
                self.late_arrivals += 1
                return
            raise SequenceError(
                f"tuple seq {seq} already merged or pending "
                f"(next expected: {self._next_seq})"
            )
        if seq in self._lost:
            self._lost.discard(seq)
            self.late_arrivals += 1
            return
        received = self.received_per_worker
        received[worker_id] = received.get(worker_id, 0) + 1
        pending[seq] = tup
        occupancy = len(pending)
        if occupancy > self.max_pending:
            self.max_pending = occupancy
        while self._next_seq in pending:
            ready = pending.pop(self._next_seq)
            self._next_seq += 1
            self._emit(ready)
        if self._pending_runs and self._next_seq in self._pending_runs:
            self._drain_ready()
        if self._lost and self._next_seq in self._lost:
            self._advance_past_lost()
        if self._flow_gate is not None:
            self._flow_gate.update(len(pending) + self._pending_run_tuples)

    def accept_run(self, worker_id: int, run: "list[StreamTuple]") -> None:
        """Receive a whole run of processed tuples from one worker.

        The batched dataplane's bulk :meth:`accept`: per-tuple sequence
        bookkeeping is identical, but the run is inserted in one pass and
        the ready prefix drained once at the end — emitting a contiguous
        sequence range with a single occupancy/flow-gate update instead of
        one per tuple. A batched worker completes its whole run at one
        simulated instant, so deferring the drain to the end of the run is
        observationally equivalent to accepting the tuples one by one.
        """
        if not run:
            return
        pending = self._pending
        accepted = 0
        for tup in run:
            seq = tup.seq
            if seq < self._next_seq or seq in pending:
                if seq in self._skipped or seq in self._lost:
                    # A tuple the recovery layer already gave up on (skip
                    # gap policy) straggled in — drop it, order preserved.
                    self._lost.discard(seq)
                    self.late_arrivals += 1
                    continue
                raise SequenceError(
                    f"tuple seq {seq} already merged or pending "
                    f"(next expected: {self._next_seq})"
                )
            if seq in self._lost:
                self._lost.discard(seq)
                self.late_arrivals += 1
                continue
            pending[seq] = tup
            accepted += 1
        if accepted:
            received = self.received_per_worker
            received[worker_id] = received.get(worker_id, 0) + accepted
            occupancy = len(pending)
            if occupancy > self.max_pending:
                self.max_pending = occupancy
        while self._next_seq in pending:
            ready = pending.pop(self._next_seq)
            self._next_seq += 1
            self._emit(ready)
        if self._pending_runs and self._next_seq in self._pending_runs:
            self._drain_ready()
        if self._lost and self._next_seq in self._lost:
            self._advance_past_lost()
        if self._flow_gate is not None:
            self._flow_gate.update(len(pending) + self._pending_run_tuples)

    def accept_runs(self, worker_id: int, runs: "list[TupleBlock]") -> None:
        """Receive whole column blocks of processed tuples from one worker.

        The block-native bulk accept: an in-order block is parked intact —
        one dict entry for B tuples, no per-tuple objects — and emitted as
        a unit when its turn comes. Per-seq scrutiny happens only on
        fault-path arrivals (lost/skipped bookkeeping active, a stale
        replay, or an overlap with an already-parked run), where the block
        is expanded and fed through the per-tuple checks.
        """
        if not runs:
            return
        pending_runs = self._pending_runs
        if (
            len(runs) == 1
            and runs[0].start == self._next_seq
            and not self._lost
            and not self._skipped
            and not self._pending
            and not (pending_runs and self._covered_by_run(runs[0].end - 1))
        ):
            # Steady-state fast path: a single block arriving exactly in
            # order emits directly — no park in the reordering buffer, no
            # drain round-trip. Occupancy peaks at the same value the
            # park-then-drain path would have recorded.
            block = runs[0]
            count = block.count
            received = self.received_per_worker
            received[worker_id] = received.get(worker_id, 0) + count
            occupancy = self._pending_run_tuples + count
            if occupancy > self.max_pending:
                self.max_pending = occupancy
            self._next_seq = block.start + count
            if (
                self.on_emit is None
                and self.latency_samples is None
                and self.latency_histogram is None
            ):
                # Inlined :meth:`_emit_run` bulk branch — this is the
                # per-service-run hot spot, where the extra call frames
                # are measurable.
                now = self.sim.now
                self.emitted += count
                self.last_emit_time = now
                borns = block.borns
                if borns is not None:
                    total = 0.0
                    for born in borns.tolist():
                        total += now - born
                    self.latency_seconds += total
                    self.latency_count += count
                elif block.born is not None:
                    self.latency_seconds += (now - block.born) * count
                    self.latency_count += count
                target = self._completion_target
                if (
                    target is not None
                    and self.emitted + self.tuples_lost >= target
                ):
                    self._check_completion()
            else:
                self._emit_run(block)
            if pending_runs:
                self._drain_ready()
            if self._flow_gate is not None:
                self._flow_gate.update(
                    len(self._pending) + self._pending_run_tuples
                )
            return
        fast = 0
        slow = 0
        for block in runs:
            if (
                self._lost
                or self._skipped
                or block.start < self._next_seq
                or (
                    pending_runs
                    and (
                        self._covered_by_run(block.start)
                        or self._covered_by_run(block.end - 1)
                    )
                )
            ):
                slow += self._accept_block_slow(block)
            else:
                pending_runs[block.start] = block
                fast += block.count
        self._pending_run_tuples += fast
        accepted = fast + slow
        if accepted:
            received = self.received_per_worker
            received[worker_id] = received.get(worker_id, 0) + accepted
            occupancy = len(self._pending) + self._pending_run_tuples
            if occupancy > self.max_pending:
                self.max_pending = occupancy
        self._drain_ready()
        if self._lost and self._next_seq in self._lost:
            self._advance_past_lost()
        if self._flow_gate is not None:
            self._flow_gate.update(
                len(self._pending) + self._pending_run_tuples
            )

    def _accept_block_slow(self, block: "TupleBlock") -> int:
        """Per-tuple insertion of a block that needs fault bookkeeping."""
        pending = self._pending
        accepted = 0
        for tup in block.materialize():
            seq = tup.seq
            if (
                seq < self._next_seq
                or seq in pending
                or self._covered_by_run(seq)
            ):
                if seq in self._skipped or seq in self._lost:
                    # A tuple the recovery layer already gave up on (skip
                    # gap policy) straggled in — drop it, order preserved.
                    self._lost.discard(seq)
                    self.late_arrivals += 1
                    continue
                raise SequenceError(
                    f"tuple seq {seq} already merged or pending "
                    f"(next expected: {self._next_seq})"
                )
            if seq in self._lost:
                self._lost.discard(seq)
                self.late_arrivals += 1
                continue
            pending[seq] = tup
            accepted += 1
        return accepted

    def _covered_by_run(self, seq: int) -> bool:
        """Whether ``seq`` lies inside a block parked in ``_pending_runs``."""
        for block in self._pending_runs.values():
            if block.start <= seq < block.start + block.count:
                return True
        return False

    def _drain_ready(self) -> None:
        """Emit the ready prefix from both reordering buffers, in order."""
        pending = self._pending
        runs = self._pending_runs
        while True:
            nxt = self._next_seq
            block = runs.pop(nxt, None) if runs else None
            if block is not None:
                self._pending_run_tuples -= block.count
                self._next_seq = nxt + block.count
                self._emit_run(block)
            elif nxt in pending:
                ready = pending.pop(nxt)
                self._next_seq = nxt + 1
                self._emit(ready)
            else:
                return

    def mark_lost(self, seqs: "Iterable[int]") -> int:
        """Declare ``seqs`` lost: never wait for them (skip gap policy).

        Sequence numbers already emitted or currently pending are ignored
        (they are not lost). Returns how many were newly marked. The merger
        then advances past any lost prefix immediately, releasing every
        held-back successor.
        """
        marked = 0
        for seq in seqs:
            if (
                seq < self._next_seq
                or seq in self._pending
                or (self._pending_runs and self._covered_by_run(seq))
            ):
                continue
            if seq not in self._lost:
                self._lost.add(seq)
                marked += 1
        if self._lost and self._next_seq in self._lost:
            self._advance_past_lost()
        if self._flow_gate is not None:
            self._flow_gate.update(
                len(self._pending) + self._pending_run_tuples
            )
        return marked

    def _advance_past_lost(self) -> None:
        """Skip lost seqs (and any pending tuples/blocks they unblock)."""
        pending = self._pending
        runs = self._pending_runs
        lost = self._lost
        while True:
            nxt = self._next_seq
            if nxt in lost:
                lost.discard(nxt)
                self._skipped.add(nxt)
                self.tuples_lost += 1
                self._next_seq = nxt + 1
                self._check_completion()
            elif nxt in pending:
                ready = pending.pop(nxt)
                self._next_seq = nxt + 1
                self._emit(ready)
            elif runs and nxt in runs:
                block = runs.pop(nxt)
                self._pending_run_tuples -= block.count
                self._next_seq = nxt + block.count
                self._emit_run(block)
            else:
                return

    def _emit(self, tup: StreamTuple) -> None:
        self.emitted += 1
        now = self.sim.now
        self.last_emit_time = now
        if tup.born_at is not None:
            self.latency_seconds += now - tup.born_at
            self.latency_count += 1
            if self.latency_samples is not None:
                self.latency_samples.append(now - tup.born_at)
            if self.latency_histogram is not None:
                self.latency_histogram.observe(now - tup.born_at)
        if self.on_emit is not None:
            self.on_emit(tup)
        self._check_completion()

    def _emit_run(self, block: "TupleBlock") -> None:
        """Emit a whole in-order block without materializing tuples.

        Only possible when no per-tuple observer is installed; with an
        ``on_emit`` hook, latency sampling, or a histogram attached the
        block is expanded so downstream sees individual tuples exactly as
        the per-tuple path would deliver them.
        """
        if (
            self.on_emit is not None
            or self.latency_samples is not None
            or self.latency_histogram is not None
        ):
            for tup in block.materialize():
                self._emit(tup)
            return
        count = block.count
        now = self.sim.now
        self.emitted += count
        self.last_emit_time = now
        borns = block.borns
        if borns is not None:
            # .tolist() yields plain Python floats on both column
            # backends, so the accumulation is bit-identical with and
            # without numpy.
            total = 0.0
            for born in borns.tolist():
                total += now - born
            self.latency_seconds += total
            self.latency_count += count
        elif block.born is not None:
            self.latency_seconds += (now - block.born) * count
            self.latency_count += count
        self._check_completion()

    def _check_completion(self) -> None:
        if (
            self._completion_target is not None
            and self.emitted + self.tuples_lost >= self._completion_target
        ):
            callback, self._on_complete = self._on_complete, None
            self._completion_target = None
            if callback is not None:
                callback()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OrderedMerger(emitted={self.emitted}, next_seq={self._next_seq}, "
            f"pending={len(self._pending)})"
        )


class UnorderedMerger(OrderedMerger):
    """A pass-through merger: no sequential semantics.

    Models the regions the paper mentions in passing — "Some parallel
    regions end without merges, in parallel sinks" — and the production
    version of IBM Streams, which "does not maintain tuple order" for
    annotated parallel regions. Tuples are forwarded downstream the moment
    a worker finishes them.

    Without the in-order merge, a fast worker's completions are no longer
    held hostage to a slow sibling's queue: per-connection throughput
    becomes informative again, and transport-level re-routing actually
    works. The ordering ablation bench uses this class to demonstrate that
    the ordered merge is precisely what makes the paper's problem hard
    (Sections 4.1 and 4.3).
    """

    def accept(self, worker_id: int, tup: StreamTuple) -> None:
        """Forward ``tup`` downstream immediately."""
        if tup.seq in self._skipped:
            # Declared lost (skip gap policy) and already counted toward
            # completion — a straggling arrival is a drop, not an error.
            self.late_arrivals += 1
            return
        if tup.seq in self._seen:
            raise SequenceError(f"tuple seq {tup.seq} delivered twice")
        self._seen.add(tup.seq)
        self.received_per_worker[worker_id] = (
            self.received_per_worker.get(worker_id, 0) + 1
        )
        self._emit(tup)

    def accept_run(self, worker_id: int, run: "list[StreamTuple]") -> None:
        """Forward a run downstream immediately, tuple by tuple.

        Without sequential semantics there is no reordering state to
        batch, so the bulk path is the per-tuple one.
        """
        for tup in run:
            self.accept(worker_id, tup)

    def accept_runs(self, worker_id: int, runs: "list[TupleBlock]") -> None:
        """Forward blocks downstream immediately, tuple by tuple.

        Pass-through emission is inherently per tuple (every tuple goes
        straight out), so blocks are expanded on arrival.
        """
        for block in runs:
            for tup in block.materialize():
                self.accept(worker_id, tup)

    def mark_lost(self, seqs: "Iterable[int]") -> int:
        """Count ``seqs`` as lost (skip gap policy), without ordering.

        The ordered implementation defers the count until the gap is
        reached in sequence order; without sequential semantics there is
        no gap to wait behind, so never-seen seqs are counted (toward
        completion targets) immediately. Already-emitted seqs are not
        lost and are ignored.
        """
        marked = 0
        for seq in seqs:
            if seq in self._seen or seq in self._skipped:
                continue
            self._skipped.add(seq)
            self.tuples_lost += 1
            marked += 1
        if marked:
            self._check_completion()
        return marked

    def __init__(self, sim, *, on_emit=None) -> None:
        super().__init__(sim, on_emit=on_emit)
        self._seen: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"UnorderedMerger(emitted={self.emitted})"
