"""Assembly of a complete ordered data-parallel region.

``ParallelRegion`` wires source -> splitter -> N connections -> N worker
PEs -> ordered merger inside one simulator, with the placement mapping
workers to hosts. This is the object every experiment and example builds;
the load-balancing controller attaches to it via the blocking counters and
the routing policy's weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.connection import SimulatedConnection
from repro.streams.merger import OrderedMerger, UnorderedMerger
from repro.streams.pe import WorkerPE
from repro.streams.splitter import RegionStalledError, RoutingPolicy, Splitter
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.blocking import BlockingCounter
    from repro.sim.engine import Simulator
    from repro.streams.hosts import Placement
    from repro.streams.sources import TupleSource


@dataclass(slots=True)
class RegionParams:
    """Dataplane parameters shared by every connection in the region.

    The defaults model the paper's setup: two OS socket buffers per
    connection (sized in tuples), negligible wire latency (InfiniBand), and
    a splitter whose per-tuple send cost is small relative to worker
    service times, so workers are the bottleneck until parallelism is high.
    """

    send_capacity: int = 32
    recv_capacity: int = 32
    wire_delay: float = 0.0
    #: Enable the failure-recovery machinery: the splitter tracks in-flight
    #: tuples for replay, workers ack processed tuples and schedule
    #: cancellable completions so a crash can revoke the tuple in service.
    #: Off by default — the plain hot path is byte-identical to a region
    #: without fault support.
    fault_tolerant: bool = False
    #: Per-connection retransmit-buffer cap (``None`` sizes it to the
    #: connection's total queue capacity plus one in-service tuple, which
    #: can never overflow because acks retire entries synchronously).
    retransmit_capacity: int | None = None
    #: Coalesce same-pump in-flight transfers into one arrival event (see
    #: :class:`~repro.net.connection.SimulatedConnection`); semantics are
    #: identical either way, batching just schedules fewer events.
    batch_transfers: bool = True
    #: Allow the overload-management layer (:mod:`repro.overload`) to
    #: attach: admission control at the source, merger->splitter flow
    #: control, and the overload detector. Off by default — with it off
    #: no hook is installed and golden traces are byte-identical to a
    #: region without overload support.
    overload_protection: bool = False
    send_overhead: float = 1e-5
    #: Relative service-time noise per worker (0 = deterministic; see
    #: :class:`~repro.streams.pe.WorkerPE`). Seeded by ``seed``.
    service_jitter: float = 0.0
    seed: int = 0
    #: Batched dataplane fast path: the splitter pulls and apportions up
    #: to this many tuples per dispatch cycle, workers service runs with
    #: one completion event, and the merger bulk-accepts each run. 1 (the
    #: default) is the per-tuple path — golden traces are byte-identical
    #: to a region without batching support. Larger values amortize the
    #: per-tuple constant factor at the cost of coarser micro-timing (see
    #: EXPERIMENTS.md, "Batching").
    batch_size: int = 1
    #: Attach the observability subsystem (:mod:`repro.obs`): metrics
    #: registry, decision audit log, span tracing, and exporters. Off by
    #: default — no recorder is installed, every instrumentation check
    #: short-circuits on ``None``, and golden traces are byte-identical
    #: to a region without observability support.
    observability: bool = False
    #: Execution backend. ``"sim"`` (the default) is the discrete-event
    #: simulator — the workhorse for every experiment, byte-identical to
    #: the seed. ``"process"`` runs the region as real OS processes over
    #: real sockets (:mod:`repro.proc`): the supervisor spawns one worker
    #: process per slot, faults become real signals, and all timing is
    #: wall-clock. The experiment runner dispatches on this field.
    backend: str = "sim"

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose 'sim' or 'process'"
            )
        check_positive("send_capacity", self.send_capacity)
        check_positive("recv_capacity", self.recv_capacity)
        check_non_negative("wire_delay", self.wire_delay)
        check_positive("send_overhead", self.send_overhead)
        check_positive("batch_size", self.batch_size)
        if not 0.0 <= self.service_jitter <= 1.0:
            raise ValueError(
                f"service_jitter must be in [0, 1], got {self.service_jitter}"
            )


class ParallelRegion:
    """A splitter, N connections/workers, and an ordered merger."""

    def __init__(
        self,
        sim: "Simulator",
        source: "TupleSource",
        policy: RoutingPolicy,
        placement: "Placement",
        *,
        params: RegionParams | None = None,
        load_multipliers: list[float] | None = None,
        ordered: bool = True,
    ) -> None:
        n_workers = len(placement)
        if n_workers == 0:
            raise ValueError("placement must contain at least one worker")
        if load_multipliers is not None and len(load_multipliers) != n_workers:
            raise ValueError(
                f"load_multipliers has {len(load_multipliers)} entries "
                f"for {n_workers} workers"
            )
        self.sim = sim
        self.params = params or RegionParams()
        #: Whether sequential semantics are enforced at the back of the
        #: region (the paper's default; ``False`` models parallel sinks /
        #: the production annotation that drops ordering).
        self.ordered = ordered
        self.merger = OrderedMerger(sim) if ordered else UnorderedMerger(sim)
        self.connections = [
            SimulatedConnection(
                sim,
                i,
                send_capacity=self.params.send_capacity,
                recv_capacity=self.params.recv_capacity,
                wire_delay=self.params.wire_delay,
                batch_transfers=self.params.batch_transfers,
                coalesce_delivery=self.params.batch_size > 1,
                block_mode=self.params.batch_size > 1,
            )
            for i in range(n_workers)
        ]
        self.workers = [
            WorkerPE(
                sim,
                i,
                self.connections[i],
                placement[i],
                self.merger,
                load_multiplier=(
                    load_multipliers[i] if load_multipliers is not None else 1.0
                ),
                service_jitter=self.params.service_jitter,
                seed=self.params.seed,
                fault_tolerant=self.params.fault_tolerant,
                batch_size=self.params.batch_size,
            )
            for i in range(n_workers)
        ]
        retransmit_capacity = None
        if self.params.fault_tolerant:
            retransmit_capacity = self.params.retransmit_capacity
            if retransmit_capacity is None:
                # Everything a channel can hold unacknowledged: both system
                # buffers, plus one tuple in flight on the wire and one in
                # service at the worker.
                retransmit_capacity = (
                    self.params.send_capacity + self.params.recv_capacity + 2
                )
        self.splitter = Splitter(
            sim,
            source,
            self.connections,
            policy,
            send_overhead=self.params.send_overhead,
            fault_tolerant=self.params.fault_tolerant,
            retransmit_capacity=retransmit_capacity,
            batch_size=self.params.batch_size,
        )
        if self.params.fault_tolerant:
            if self.params.batch_size > 1:
                # Block mode acknowledges whole completed blocks.
                for worker in self.workers:
                    worker.on_processed_run = self.splitter.acknowledge_run
            else:
                for worker in self.workers:
                    worker.on_processed = self.splitter.acknowledge

    @property
    def n_workers(self) -> int:
        """Width of the parallel region."""
        return len(self.workers)

    @property
    def blocking_counters(self) -> list["BlockingCounter"]:
        """Per-connection cumulative blocking counters, in worker order."""
        return [conn.blocking for conn in self.connections]

    def attach_observability(self, hub) -> None:
        """Wire the observability hub through the whole dataplane.

        Registers splitter/merger/worker/connection instruments and arms
        span recording. Idempotent per hub (re-registration returns the
        existing instruments); never called unless
        ``RegionParams(observability=True)`` opted the run in.
        """
        self.splitter.attach_observability(hub)
        self.merger.attach_observability(hub)
        registry = hub.registry
        for j, conn in enumerate(self.connections):
            registry.gauge_fn(
                "connection_blocking_seconds_total",
                (lambda c: lambda: c.blocking.lifetime_seconds)(conn),
                help="Lifetime splitter blocking charged to the connection",
                connection=str(j),
            )
            registry.gauge_fn(
                "connection_blocking_episodes_total",
                (lambda c: lambda: c.blocking.lifetime_episodes)(conn),
                help="Lifetime blocking episodes on the connection",
                connection=str(j),
            )
        for worker in self.workers:
            label = str(worker.pe_id)
            registry.gauge_fn(
                "worker_tuples_processed_total",
                (lambda w: lambda: w.tuples_processed)(worker),
                help="Tuples fully processed by the PE",
                worker=label,
            )
            registry.gauge_fn(
                "worker_busy_seconds_total",
                (lambda w: lambda: w.busy_seconds)(worker),
                help="Seconds the PE spent servicing tuples",
                worker=label,
            )
            registry.gauge_fn(
                "worker_alive",
                (lambda w: lambda: 1.0 if w.alive else 0.0)(worker),
                help="Whether the PE process is up",
                worker=label,
            )

    def start(self, at: float = 0.0) -> None:
        """Begin streaming at simulated time ``at``."""
        self.splitter.start(at)

    # ------------------------------------------------------------- recovery

    def fail_channel(
        self, channel: int, *, replay: bool = True, allow_stall: bool = False
    ) -> list[int]:
        """Kill channel ``channel`` end to end and recover its tuples.

        Halts the worker (revoking any tuple in service — it is still in
        the retransmit buffer), drops the connection's buffered and
        in-flight tuples, and queues every unacknowledged tuple for replay
        to the surviving channels. With ``replay=False`` (the *skip* gap
        policy) nothing is replayed and the sequence numbers are returned.

        Failing the last live channel raises
        :class:`~repro.streams.splitter.RegionStalledError` before any
        state changes, unless ``allow_stall=True`` promises a later
        :meth:`restore_channel` (the recovery layer's case).

        Returns the sequence numbers that will **not** be replayed; the
        caller must route them to :meth:`OrderedMerger.mark_lost` (after
        its gap timeout) so the merger does not wait forever.
        """
        if not self.params.fault_tolerant:
            raise RuntimeError(
                "fail_channel requires RegionParams(fault_tolerant=True)"
            )
        splitter = self.splitter
        if (
            not allow_stall
            and splitter.live[channel]
            and sum(splitter.live) <= 1
        ):
            # Check before halting the worker: the splitter's own guard
            # would fire only after this method has mutated the channel.
            raise RegionStalledError(
                f"failing channel {channel} leaves no live channel: the "
                "region is stalled. Restore another channel first, or "
                "pass allow_stall=True if a recovery layer will restore "
                "one later."
            )
        self.workers[channel].halt()
        self.connections[channel].fail()
        _, lost = splitter.fail_channel(
            channel, replay=replay, allow_stall=allow_stall
        )
        return lost

    def restore_channel(self, channel: int) -> None:
        """Bring a failed channel back: fresh transport, worker resumed."""
        self.connections[channel].reset()
        self.workers[channel].resume()
        self.splitter.restore_channel(channel)

    def total_capacity(self) -> float:
        """Aggregate worker service capacity in tuples/sec for unit cost.

        Useful for sizing experiments; actual tuple rates divide this by
        the tuple cost in multiplies and each worker's load multiplier.
        """
        return sum(w.host.per_pe_speed() / w.load_multiplier for w in self.workers)
