"""Dataflow graphs of operators and streams (paper Section 2, Figure 1).

A :class:`StreamGraph` is the logical application: operators as nodes,
streams as directed edges. The three forms of parallelism the paper
describes all have direct expression:

* **pipeline parallelism** — a chain ``a >> b >> c``: different operators
  process different tuples concurrently;
* **task parallelism** — one upstream connected to several downstreams:
  each receives *the same* tuples ("they receive the same tuples, yet
  perform different operations");
* **data parallelism** — :meth:`StreamGraph.parallelize` marks an
  operator for replication; compilation inserts a splitter and (ordered)
  merger around ``width`` replicas, exactly the region the paper's load
  balancer controls.

Graphs are validated (acyclic, sources/sinks at the right ends, stateless
constraints for ordered regions) and compiled onto the simulator by
:mod:`repro.streams.application`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.streams.operators import Filter, Operator, SinkOp, SourceOp
from repro.util.validation import check_positive


class GraphError(ValueError):
    """The graph violates a structural rule."""


@dataclass(slots=True)
class ParallelAnnotation:
    """Replication request for one operator (a data-parallel region)."""

    width: int
    ordered: bool = True

    def __post_init__(self) -> None:
        check_positive("width", self.width)


@dataclass(slots=True)
class StreamGraph:
    """Operators plus streams; build with :meth:`add` and :meth:`connect`."""

    operators: list[Operator] = field(default_factory=list)
    #: Directed edges as (upstream index, downstream index).
    edges: list[tuple[int, int]] = field(default_factory=list)
    #: Parallel-region annotations by operator index.
    parallel: dict[int, ParallelAnnotation] = field(default_factory=dict)

    # ---------------------------------------------------------------- build

    def add(self, operator: Operator) -> int:
        """Add an operator; returns its node id."""
        if any(op.name == operator.name for op in self.operators):
            raise GraphError(f"duplicate operator name {operator.name!r}")
        self.operators.append(operator)
        return len(self.operators) - 1

    def connect(self, upstream: int, downstream: int) -> None:
        """Add a stream from ``upstream`` to ``downstream``."""
        for node in (upstream, downstream):
            if not 0 <= node < len(self.operators):
                raise GraphError(f"unknown operator id {node}")
        if upstream == downstream:
            raise GraphError("an operator cannot stream to itself")
        if (upstream, downstream) in self.edges:
            raise GraphError(
                f"duplicate stream {upstream} -> {downstream}"
            )
        self.edges.append((upstream, downstream))

    def chain(self, *nodes: int) -> None:
        """Connect ``nodes`` into a pipeline."""
        for a, b in zip(nodes, nodes[1:]):
            self.connect(a, b)

    def parallelize(
        self, node: int, width: int, *, ordered: bool = True
    ) -> None:
        """Mark ``node`` as a data-parallel region of ``width`` replicas."""
        if not 0 <= node < len(self.operators):
            raise GraphError(f"unknown operator id {node}")
        operator = self.operators[node]
        if isinstance(operator, (SourceOp, SinkOp)):
            raise GraphError("sources and sinks cannot be parallelized")
        if ordered and isinstance(operator, Filter):
            raise GraphError(
                "a Filter inside an ordered region would starve the merger; "
                "use ordered=False"
            )
        self.parallel[node] = ParallelAnnotation(width=width, ordered=ordered)

    # ------------------------------------------------------------- queries

    def upstream_of(self, node: int) -> list[int]:
        """Nodes streaming into ``node``."""
        return [a for a, b in self.edges if b == node]

    def downstream_of(self, node: int) -> list[int]:
        """Nodes ``node`` streams to."""
        return [b for a, b in self.edges if a == node]

    def sources(self) -> list[int]:
        """Nodes with no inputs (must all be :class:`SourceOp`)."""
        targets = {b for _a, b in self.edges}
        return [i for i in range(len(self.operators)) if i not in targets]

    def sinks(self) -> list[int]:
        """Nodes with no outputs (must all be :class:`SinkOp`)."""
        origins = {a for a, _b in self.edges}
        return [i for i in range(len(self.operators)) if i not in origins]

    def topological_order(self) -> list[int]:
        """Nodes in dependency order; raises on cycles."""
        indegree = [0] * len(self.operators)
        for _a, b in self.edges:
            indegree[b] += 1
        ready = [i for i, d in enumerate(indegree) if d == 0]
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in self.downstream_of(node):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.operators):
            raise GraphError("the graph contains a cycle")
        return order

    # ----------------------------------------------------------- validation

    def validate(self) -> None:
        """Check every structural rule; raises :class:`GraphError`."""
        if not self.operators:
            raise GraphError("empty graph")
        self.topological_order()
        for node in self.sources():
            if not isinstance(self.operators[node], SourceOp):
                raise GraphError(
                    f"operator {self.operators[node].name!r} has no inputs "
                    "but is not a SourceOp"
                )
        for node in self.sinks():
            if not isinstance(self.operators[node], SinkOp):
                raise GraphError(
                    f"operator {self.operators[node].name!r} has no outputs "
                    "but is not a SinkOp"
                )
        if not self.sources():
            raise GraphError("the graph needs at least one source")
        if not self.sinks():
            raise GraphError("the graph needs at least one sink")
        for node, annotation in self.parallel.items():
            # The splitter re-stamps region-local sequence numbers, so an
            # ordered region needs exactly one input stream to define the
            # order being preserved.
            if annotation.ordered and len(self.upstream_of(node)) != 1:
                raise GraphError(
                    f"ordered parallel region {self.operators[node].name!r} "
                    "must have exactly one input stream"
                )
            if not self.upstream_of(node):
                raise GraphError("a parallel region cannot be a source")
