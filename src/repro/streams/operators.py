"""Operators: the logical units of computation (paper Section 2).

SPL applications "are expressed in terms of *operators* and *streams*,
where the operators express a computation, and different operators are
connected by streams". An operator consumes a tuple from an input stream,
performs some computation (modelled as a cost in integer multiplies), and
potentially emits a result tuple downstream.

These classes are *logical* descriptions; :mod:`repro.streams.application`
compiles a graph of them into processing elements running on the
simulator, with real bounded streams and end-to-end backpressure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

from repro.streams.tuples import StreamTuple
from repro.util.validation import check_non_negative, check_positive


class Operator(ABC):
    """A logical operator: per-tuple cost plus an optional transform."""

    def __init__(self, name: str, cost_multiplies: float) -> None:
        if not name:
            raise ValueError("operators need a name")
        check_non_negative("cost_multiplies", cost_multiplies)
        self.name = name
        self.cost_multiplies = float(cost_multiplies)

    @abstractmethod
    def apply(self, tup: StreamTuple) -> StreamTuple | None:
        """Process one tuple; return the result tuple or ``None`` to drop.

        Implementations must be stateless for operators placed inside a
        data-parallel region (the paper's requirement: "stateless PEs are
        pure functions").
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, cost={self.cost_multiplies:g})"


class PassThrough(Operator):
    """Forwards tuples unchanged; pure per-tuple cost.

    The paper's evaluation workload is exactly this: "the base cost of
    processing a tuple is N integer multiplies".
    """

    def apply(self, tup: StreamTuple) -> StreamTuple:
        return tup


class Functor(Operator):
    """Transforms the payload with a user function (SPL's ``Functor``)."""

    def __init__(
        self,
        name: str,
        cost_multiplies: float,
        transform: Callable[[Any], Any],
    ) -> None:
        super().__init__(name, cost_multiplies)
        self.transform = transform

    def apply(self, tup: StreamTuple) -> StreamTuple:
        return StreamTuple(
            seq=tup.seq,
            cost_multiplies=tup.cost_multiplies,
            payload=self.transform(tup.payload),
        )


class Filter(Operator):
    """Drops tuples failing a predicate (SPL's ``Filter``).

    Filters may not appear inside an *ordered* parallel region: the merger
    would wait forever for dropped sequence numbers.
    """

    def __init__(
        self,
        name: str,
        cost_multiplies: float,
        predicate: Callable[[Any], bool],
    ) -> None:
        super().__init__(name, cost_multiplies)
        self.predicate = predicate

    def apply(self, tup: StreamTuple) -> StreamTuple | None:
        return tup if self.predicate(tup.payload) else None


class SourceOp(Operator):
    """Produces the stream: ``make_payload(seq)`` at ``cost`` per tuple.

    ``total`` bounds production (``None`` = unbounded, stopped by the
    simulation horizon). The per-tuple production cost is what gates the
    whole application when downstream capacity is ample — the sigma of
    the experiment configurations.
    """

    def __init__(
        self,
        name: str,
        cost_multiplies: float,
        *,
        tuple_cost: float,
        total: int | None = None,
        make_payload: Callable[[int], Any] | None = None,
    ) -> None:
        super().__init__(name, cost_multiplies)
        check_positive("tuple_cost", tuple_cost)
        if total is not None:
            check_positive("total", total)
        self.tuple_cost = float(tuple_cost)
        self.total = total
        self.make_payload = make_payload or (lambda seq: None)
        self._next_seq = 0

    @property
    def produced(self) -> int:
        """Tuples produced so far."""
        return self._next_seq

    def next_tuple(self) -> StreamTuple | None:
        """Produce the next tuple, or ``None`` when exhausted."""
        if self.total is not None and self._next_seq >= self.total:
            return None
        tup = StreamTuple(
            seq=self._next_seq,
            cost_multiplies=self.tuple_cost,
            payload=self.make_payload(self._next_seq),
        )
        self._next_seq += 1
        return tup

    def production_cost(self, seq: int) -> float:
        """Production cost (multiplies) for tuple ``seq``.

        Subclasses can vary this per tuple — see :class:`BurstySourceOp`.
        """
        return self.cost_multiplies

    def apply(self, tup: StreamTuple) -> StreamTuple:  # pragma: no cover
        raise RuntimeError("sources do not process tuples")


class BurstySourceOp(SourceOp):
    """A source alternating between bursts and lulls.

    The paper notes that "streaming systems can also be bursty" — offered
    load arrives in waves rather than a steady stream. This source
    produces ``burst_length`` tuples at the base production cost, then
    ``lull_length`` tuples at ``lull_factor`` times that cost (i.e. a
    quiet period), repeating. With ``lull_factor`` large the lull is
    effectively an idle gap.
    """

    def __init__(
        self,
        name: str,
        cost_multiplies: float,
        *,
        tuple_cost: float,
        burst_length: int,
        lull_length: int,
        lull_factor: float = 50.0,
        total: int | None = None,
        make_payload: Callable[[int], Any] | None = None,
    ) -> None:
        super().__init__(
            name,
            cost_multiplies,
            tuple_cost=tuple_cost,
            total=total,
            make_payload=make_payload,
        )
        check_positive("burst_length", burst_length)
        check_positive("lull_length", lull_length)
        check_positive("lull_factor", lull_factor)
        self.burst_length = int(burst_length)
        self.lull_length = int(lull_length)
        self.lull_factor = float(lull_factor)

    def in_burst(self, seq: int) -> bool:
        """Whether tuple ``seq`` falls inside a burst phase."""
        period = self.burst_length + self.lull_length
        return (seq % period) < self.burst_length

    def production_cost(self, seq: int) -> float:
        if self.in_burst(seq):
            return self.cost_multiplies
        return self.cost_multiplies * self.lull_factor


class SinkOp(Operator):
    """Consumes tuples at a per-tuple cost; counts and optionally calls out."""

    def __init__(
        self,
        name: str,
        cost_multiplies: float = 0.0,
        *,
        on_tuple: Callable[[StreamTuple], None] | None = None,
    ) -> None:
        super().__init__(name, cost_multiplies)
        self.on_tuple = on_tuple
        self.consumed = 0

    def apply(self, tup: StreamTuple) -> None:
        self.consumed += 1
        if self.on_tuple is not None:
            self.on_tuple(tup)
        return None
