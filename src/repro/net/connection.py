"""A simulated TCP connection between the splitter and one worker PE.

The model mirrors what matters about TCP for the paper's argument:

* a bounded **send buffer** on the splitter's host and a bounded **receive
  buffer** on the worker's host (two "system buffers" of queued tuples —
  exactly the latency that makes blocking a *late* congestion signal);
* **flow control**: data moves from send to receive buffer only while the
  receive buffer has space, so a slow consumer backs pressure up to the
  sender;
* a **non-blocking send** (`send_nowait`, the simulator's ``MSG_DONTWAIT``)
  that reports would-block instead of waiting, plus a wakeup for a blocked
  sender (the simulator's ``select``);
* a per-connection :class:`~repro.net.blocking.BlockingCounter` that the
  *sender* charges with the time it spent blocked.

An optional per-tuple ``wire_delay`` models network latency. The default of
zero matches the paper's InfiniBand cluster, where propagation is negligible
next to buffer-induced queueing.

Fault support (the fault-injection subsystem): a connection can be
**stalled** (transport frozen — tuples pile up in the send buffer, exactly
what a dead or wedged peer looks like to the sender), **failed** (both
buffers dropped, as when the peer's kernel discards its socket state), and
**reset** (buffers cleared and the transport revived for a restarted peer).
A generation counter invalidates in-flight wire transfers across a
fail/reset, so a delayed arrival from before the fault can never deliver
into the revived connection.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.net.blocking import BlockingCounter
from repro.net.buffers import BoundedBuffer, RunBuffer
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class SimulatedConnection:
    """One splitter-to-worker connection inside the event simulator."""

    def __init__(
        self,
        sim: "Simulator",
        conn_id: int,
        *,
        send_capacity: int = 32,
        recv_capacity: int = 32,
        wire_delay: float = 0.0,
        batch_transfers: bool = True,
        coalesce_delivery: bool = False,
        block_mode: bool = False,
    ) -> None:
        check_non_negative("wire_delay", wire_delay)
        self.sim = sim
        self.conn_id = conn_id
        self.wire_delay = wire_delay
        #: Array-native dataplane: buffers hold contiguous
        #: :class:`~repro.streams.tuples.TupleBlock` runs (capacity still
        #: denominated in tuples) and the transport moves whole blocks via
        #: :meth:`send_run`/:meth:`take_runs`. The per-item APIs
        #: (``send_nowait``/``take``/...) are not valid in this mode.
        self.block_mode = block_mode
        #: Coalesce all in-flight transfers started by one pump into a
        #: single arrival event (semantics-preserving; see :meth:`_pump`).
        #: Disable to schedule one event per tuple, as the pre-batching
        #: engine did — the determinism tests assert results are identical
        #: either way.
        self.batch_transfers = batch_transfers
        #: Batched-dataplane mode: notify the consumer once per delivered
        #: *run* instead of once per tuple, so a batched worker sees the
        #: whole run on its first wakeup. Off by default — per-tuple
        #: notification is the paper-faithful (and golden-traced) behavior.
        self.coalesce_delivery = coalesce_delivery
        if block_mode:
            self._send_buffer: Any = RunBuffer(send_capacity)
            self._recv_buffer: Any = RunBuffer(recv_capacity)
            # Shadow the per-item pump with the block pump so every
            # internal consumer (unstall, arrivals) moves blocks.
            self._pump = self._pump_runs
        else:
            self._send_buffer = BoundedBuffer(send_capacity)
            self._recv_buffer = BoundedBuffer(recv_capacity)
        #: Cumulative blocking time charged by the sender (Section 3).
        self.blocking = BlockingCounter()
        #: Called (with no arguments) each time a tuple lands in the
        #: receive buffer; set by the worker PE.
        self.on_deliver: Callable[[], None] | None = None
        self._send_space_waiter: Callable[[], None] | None = None
        self._pumping = False
        #: Transport frozen (peer wedged/dead): no transfers move until
        #: :meth:`unstall` or :meth:`reset`. Sends still fill the send
        #: buffer — the sender only notices once it elects to block.
        self.stalled = False
        #: Bumped by :meth:`fail`/:meth:`reset`; in-flight wire transfers
        #: carry the generation they started under and are dropped on
        #: arrival if it no longer matches.
        self._generation = 0
        #: Tuples accepted into the send buffer since construction.
        self.tuples_sent = 0
        #: Tuples that have landed in the receive buffer since construction.
        self.tuples_delivered = 0

    # ----------------------------------------------------------------- send

    def can_send(self) -> bool:
        """Whether a ``send_nowait`` would currently succeed."""
        return not self._send_buffer.is_full()

    def send_nowait(self, item: Any) -> bool:
        """Non-blocking send: accept ``item`` or report would-block.

        This is the simulator's ``send(..., MSG_DONTWAIT)``. Returns
        ``False`` when the send buffer is full (the caller may then elect
        to block and charge :attr:`blocking`, as the paper's splitter
        does).
        """
        if not self._send_buffer.try_push(item):
            return False
        self.tuples_sent += 1
        self._pump()
        return True

    def send_many(self, items: "list[Any]", start: int = 0) -> int:
        """Push ``items[start:]`` into the send buffer until it fills.

        The batched dataplane's bulk send: accepted tuples are pushed with
        one flow-control pump at the end instead of one per tuple. Returns
        how many were accepted (0 on would-block with a full buffer); the
        caller keeps the unaccepted tail and elects to block, exactly like
        a partial ``sendmsg``.
        """
        buffer = self._send_buffer
        accepted = 0
        n = len(items)
        i = start
        while i < n and buffer.try_push(items[i]):
            i += 1
            accepted += 1
        if accepted:
            self.tuples_sent += accepted
            self._pump()
        return accepted

    def wait_for_send_space(self, callback: Callable[[], None]) -> None:
        """Register a one-shot wakeup for when the send buffer has space.

        The simulator's ``select``: the blocked sender parks here and is
        called back the instant a slot frees. Only one waiter may be
        outstanding (the splitter is single-threaded — the root cause of
        drafting, Section 4.2).
        """
        if self._send_space_waiter is not None:
            raise RuntimeError(f"connection {self.conn_id} already has a waiter")
        if self.can_send():
            raise RuntimeError("waiting for send space that is already available")
        self._send_space_waiter = callback

    # -------------------------------------------------------------- receive

    def recv_available(self) -> int:
        """Tuples currently waiting in the receive buffer."""
        return len(self._recv_buffer)

    def take(self) -> Any:
        """Remove and return the oldest received tuple (worker side)."""
        item = self._recv_buffer.pop()
        self._pump()
        return item

    def take_many(self, max_n: int) -> "list[Any]":
        """Remove and return up to ``max_n`` received tuples, oldest first.

        One flow-control pump per run instead of one per tuple; the
        batched worker's counterpart to :meth:`send_many`.
        """
        items = self._recv_buffer.pop_many(max_n)
        if items:
            self._pump()
        return items

    def requeue_front(self, item: Any) -> None:
        """Return a taken-but-unprocessed tuple to the head of the queue.

        Crash redelivery: the worker died mid-service, so the tuple goes
        back where it came from and is re-serviced on restart (or swept up
        by :meth:`fail` and replayed if the channel is failed over
        instead). Not counted in :attr:`tuples_delivered` again.
        """
        self._recv_buffer.push_front(item)

    # ------------------------------------------------- block-mode transport

    def send_run(self, block) -> int:
        """Bulk send of a tuple block; returns tuples accepted.

        The block-native counterpart of :meth:`send_many`: as much of the
        block as fits enters the send buffer (the caller keeps the split
        tail on partial accept), followed by one flow-control pump.

        Steady state — zero wire delay, nothing queued or stalled, and
        the whole block fits in free receive space — skips the send
        buffer entirely: the block lands in the receive buffer and the
        consumer is notified in one step, which is exactly what the
        push-then-pump sequence would have done block by block.
        """
        count = block.count
        if (
            count
            <= (
                (recv := self._recv_buffer).capacity
                - recv._tuples
                - recv._reserved
            )
            and not self._send_buffer._tuples
            and self.wire_delay == 0.0
            and not self.stalled
            and not self._pumping
        ):
            recv._runs.append(block)
            recv._tuples += count
            self.tuples_sent += count
            self.tuples_delivered += count
            # No send space was freed (the send buffer stayed empty, so
            # no waiter can exist) — deliver and return. The consumer's
            # take cannot re-enter a pump here: with an empty send buffer
            # take_runs skips it.
            if self.on_deliver is not None:
                self.on_deliver()
            return count
        accepted = self._send_buffer.push_run(block)
        if accepted:
            self.tuples_sent += accepted
            self._pump_runs()
        return accepted

    def take_runs(self, max_n: int) -> list:
        """Remove and return up to ``max_n`` received tuples as blocks.

        The worker's block-mode take: whole blocks, with the boundary
        block split, then one flow-control pump.
        """
        runs = self._recv_buffer.pop_runs(max_n)
        if runs and self._send_buffer._tuples:
            # Pump only when queued data can actually advance into the
            # space just freed: an empty send buffer can neither deliver
            # nor free send space, so the pump would be a no-op.
            self._pump_runs()
        return runs

    def requeue_front_run(self, block) -> None:
        """Return a taken-but-unprocessed block to the head of the queue."""
        self._recv_buffer.push_front_run(block)

    def _pump_runs(self) -> None:
        """Block-mode :meth:`_pump`: move whole runs, notify per delivery.

        Always coalesced: a batched region's worker consumes runs, so one
        notification per pump round is the only sensible granularity (the
        per-tuple notification schedule is a ``batch_size=1`` behavior).
        Capacity accounting is still per tuple — blocks split at the
        receive buffer's free-slot boundary exactly where per-tuple flow
        control would have stopped.
        """
        if self._pumping or self.stalled:
            return
        self._pumping = True
        freed_send_space = False
        send_buffer = self._send_buffer
        recv_buffer = self._recv_buffer
        try:
            if self.wire_delay == 0.0:
                # Move-then-notify rounds: the consumer's take may free
                # receive space, so loop until a round moves nothing.
                while True:
                    moved = send_buffer.transfer_to(recv_buffer)
                    if moved == 0:
                        break
                    freed_send_space = True
                    self.tuples_delivered += moved
                    if self.on_deliver is None:
                        break
                    self.on_deliver()
                    if not send_buffer._tuples:
                        # The consumer drained everything queued; no next
                        # round can move more.
                        break
            else:
                batch: list | None = None
                while send_buffer and not recv_buffer.is_full():
                    for block in send_buffer.pop_runs(recv_buffer.free_slots):
                        recv_buffer.reserve_run(block.count)
                        freed_send_space = True
                        if batch is None:
                            batch = [block]
                        else:
                            batch.append(block)
                if batch is not None:
                    generation = self._generation
                    self.sim.schedule_after(
                        self.wire_delay,
                        lambda runs=batch, gen=generation: (
                            self._arrive_runs(runs, gen)
                        ),
                    )
        finally:
            self._pumping = False
        if freed_send_space:
            self._wake_sender()

    def _arrive_runs(self, runs: list, generation: int) -> None:
        """Complete delayed in-flight block transfers in one landing.

        The whole pump's worth of blocks lands, the consumer is notified
        once, then flow control catches up — the block-mode analogue of
        the coalesced :meth:`_arrive_batch`. A generation mismatch means
        the transfers died with a failed connection; drop them.
        """
        if generation != self._generation:
            return
        delivered = 0
        recv_buffer = self._recv_buffer
        for block in runs:
            recv_buffer.push_reserved_run(block)
            delivered += block.count
        self.tuples_delivered += delivered
        if self.on_deliver is not None:
            self.on_deliver()
        self._pump_runs()

    # ------------------------------------------------------------ inspection

    def queued_tuples(self) -> int:
        """Total tuples buffered in the connection (send + in flight + recv).

        This is the "at least two system buffers worth of unprocessed
        tuples" of Section 4.4.
        """
        return (
            len(self._send_buffer)
            + self._recv_buffer.reserved
            + len(self._recv_buffer)
        )

    # ---------------------------------------------------------------- faults

    def stall(self) -> None:
        """Freeze the transport: no tuple moves until unstalled or reset.

        Models a wedged or dead peer as the sender experiences it: sends
        keep landing in the (splitter-side) send buffer until it fills,
        then the sender blocks — and stays blocked, because nothing drains.
        """
        self.stalled = True

    def unstall(self) -> None:
        """Thaw a stalled transport and let flow control catch up."""
        if not self.stalled:
            return
        self.stalled = False
        self._pump()

    def cancel_wait(self) -> "Callable[[], None] | None":
        """Drop the parked send-space waiter, returning it (or ``None``).

        Recovery path: when the splitter abandons a dead channel it must
        un-park from its ``select`` before it can route elsewhere.
        """
        waiter = self._send_space_waiter
        self._send_space_waiter = None
        return waiter

    def fail(self) -> int:
        """Kill the transport: drop all buffered and in-flight tuples.

        Returns how many tuples were dropped (send + in-flight + receive).
        The connection stays stalled afterwards; :meth:`reset` revives it.
        Replay of the dropped tuples is the splitter's job — it holds the
        retransmit buffer of everything unacknowledged.
        """
        dropped = self.queued_tuples()
        self._generation += 1
        self._send_buffer.clear()
        self._recv_buffer.clear()
        self.stalled = True
        return dropped

    def reset(self) -> None:
        """Revive a failed/stalled connection with empty buffers.

        The restarted peer comes up with fresh socket state; any tuple
        from the old generation that is still in flight is dropped on
        arrival.
        """
        self._generation += 1
        self._send_buffer.clear()
        self._recv_buffer.clear()
        self._send_space_waiter = None
        self.stalled = False

    # -------------------------------------------------------------- internal

    def _pump(self) -> None:
        """Move tuples from send to receive buffer while flow control allows.

        Reentrant calls (a delivery callback that synchronously takes a
        tuple, which frees receive space) are flattened into the outer
        loop via the ``_pumping`` guard.

        With a nonzero ``wire_delay``, every transfer this pump starts
        shares the same start time and arrives after the same delay, and
        the pre-batching engine queued those arrivals as consecutive
        same-time events nothing could interleave with. Batching them into
        one event (:meth:`_arrive_batch`, the ``batch_transfers`` default)
        therefore preserves semantics exactly while scheduling one event
        per pump instead of one per tuple. Blocking accounting is
        untouched: space is reserved per tuple when its transfer starts,
        and delivery/counters advance per tuple on arrival.
        """
        if self._pumping or self.stalled:
            return
        self._pumping = True
        freed_send_space = False
        send_buffer = self._send_buffer
        recv_buffer = self._recv_buffer
        try:
            if self.wire_delay == 0.0:
                if self.coalesce_delivery:
                    # Batched mode: move the whole run, then notify once.
                    # The consumer's take may free receive space, so loop
                    # move-then-notify rounds until nothing moves.
                    while True:
                        moved = 0
                        while send_buffer and not recv_buffer.is_full():
                            recv_buffer.push(send_buffer.pop())
                            moved += 1
                        if moved == 0:
                            break
                        freed_send_space = True
                        self.tuples_delivered += moved
                        if self.on_deliver is None:
                            break
                        self.on_deliver()
                else:
                    while send_buffer and not recv_buffer.is_full():
                        item = send_buffer.pop()
                        freed_send_space = True
                        recv_buffer.push(item)
                        self.tuples_delivered += 1
                        if self.on_deliver is not None:
                            self.on_deliver()
            else:
                batch: list[Any] | None = None
                while send_buffer and not recv_buffer.is_full():
                    item = send_buffer.pop()
                    freed_send_space = True
                    recv_buffer.reserve()
                    if batch is None:
                        batch = [item]
                    else:
                        batch.append(item)
                if batch is not None:
                    generation = self._generation
                    if self.batch_transfers:
                        self.sim.schedule_after(
                            self.wire_delay,
                            lambda items=batch, gen=generation: (
                                self._arrive_batch(items, gen)
                            ),
                        )
                    else:
                        for item in batch:
                            self.sim.schedule_after(
                                self.wire_delay,
                                lambda it=item, gen=generation: (
                                    self._arrive_batch((it,), gen)
                                ),
                            )
        finally:
            self._pumping = False
        if freed_send_space:
            self._wake_sender()

    def _arrive_batch(
        self,
        items: "tuple[Any, ...] | list[Any]",
        generation: int | None = None,
    ) -> None:
        """Complete delayed in-flight transfers, one tuple at a time.

        Each tuple runs the exact per-arrival sequence of the unbatched
        engine: convert its reservation, count it, notify the consumer,
        then let flow control catch up (the delivery callback may have
        consumed tuples and freed receive space).

        ``generation`` is the connection generation the transfer started
        under; a fail/reset in between invalidates the transfer (the bytes
        died with the old socket), so the arrival is dropped.
        """
        if generation is not None and generation != self._generation:
            return
        if self.coalesce_delivery:
            # Batched mode: land the whole run, notify the consumer once,
            # then let flow control catch up once.
            for item in items:
                self._recv_buffer.push_reserved(item)
            self.tuples_delivered += len(items)
            if self.on_deliver is not None:
                self.on_deliver()
            self._pump()
            return
        for item in items:
            self._recv_buffer.push_reserved(item)
            self.tuples_delivered += 1
            if self.on_deliver is not None:
                self.on_deliver()
            self._pump()

    def _wake_sender(self) -> None:
        """Fire the parked sender, if any and if space truly exists."""
        if self._send_space_waiter is None or not self.can_send():
            return
        waiter = self._send_space_waiter
        self._send_space_waiter = None
        waiter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimulatedConnection(id={self.conn_id}, "
            f"send={len(self._send_buffer)}/{self._send_buffer.capacity}, "
            f"recv={len(self._recv_buffer)}/{self._recv_buffer.capacity})"
        )
