"""Real-socket transport: the paper's blocking measurement on OS sockets.

Section 3 of the paper measures blocking like this: each tuple send is
attempted with ``MSG_DONTWAIT``; if the kernel reports it would block, the
sender issues ``select`` on that socket and records how long it waited.
:class:`BlockingSocketSender` implements exactly that syscall sequence on a
real non-blocking stream socket.

One substitution (documented in DESIGN.md): Linux ``select`` writes the
*remaining* time into its timeout argument, which the paper reads to get
the blocked duration. Python's ``select.select`` does not expose the
mutated struct, so we time the call with ``time.monotonic()`` — the same
quantity, measured one layer up.

:class:`SocketMiniRegion` is a miniature parallel region over OS socket
pairs with thread workers: enough dataplane to demonstrate that the
measured blocking rates reflect worker capacity on a real kernel, used by
the integration tests and the ``real_sockets`` example. The deterministic
experiments all run on the simulator.
"""

from __future__ import annotations

import os
import random
import select
import socket
import threading
import time
from collections.abc import Callable, Sequence

from repro.net.blocking import BlockingCounter
from repro.streams.splitter import RegionStalledError
from repro.util.validation import check_positive

#: MSG_DONTWAIT is Linux-specific; with a non-blocking socket the flag is
#: belt-and-braces, so fall back to 0 elsewhere.
_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)

#: ``sendmsg`` rejects more than IOV_MAX buffers per call with EMSGSIZE,
#: which would be misread as a dead peer; cap each scatter-gather call.
try:
    _IOV_MAX = os.sysconf("SC_IOV_MAX")
    if _IOV_MAX <= 0:  # pragma: no cover - "indeterminate" sysconf result
        _IOV_MAX = 1024
except (AttributeError, OSError, ValueError):  # pragma: no cover
    _IOV_MAX = 1024  # the Linux value; POSIX guarantees at least 16


class PeerDeadError(ConnectionError):
    """The receiving peer is gone (reset, closed, or socket exception)."""


class SendTimeoutError(TimeoutError):
    """A send did not become possible within the sender's ``send_timeout``."""


def connect_with_backoff(
    connect: Callable[[], socket.socket],
    *,
    deadline: float = 5.0,
    backoff_start: float = 0.02,
    backoff_max: float = 0.5,
    jitter: float = 0.5,
    rng: random.Random | None = None,
) -> socket.socket:
    """Call ``connect`` until it succeeds or ``deadline`` seconds elapse.

    A restarting worker races its own listener: the supervisor may dial
    before the fresh process has bound its socket, and the very first
    attempt gets ``ECONNREFUSED``. One refused dial is not a dead peer —
    this helper retries with jittered exponential backoff (full jitter on
    ``jitter`` of each sleep, so a fleet of reconnecting senders does not
    dial in lockstep) and only raises :class:`PeerDeadError` once the
    total ``deadline`` is spent.

    ``connect`` is any zero-argument callable returning a connected
    socket — typically ``lambda: socket.create_connection(addr)``.
    """
    check_positive("deadline", deadline)
    check_positive("backoff_start", backoff_start)
    check_positive("backoff_max", backoff_max)
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    rng = rng if rng is not None else random.Random()
    started = time.monotonic()
    give_up = started + deadline
    pause = backoff_start
    attempts = 0
    last: OSError | None = None
    while True:
        attempts += 1
        try:
            return connect()
        except OSError as exc:
            last = exc
        remaining = give_up - time.monotonic()
        if remaining <= 0:
            raise PeerDeadError(
                f"could not connect within {deadline:g}s "
                f"({attempts} attempts; last error: {last})"
            ) from last
        # Full jitter on the tail of the pause: sleep in
        # [pause*(1-jitter), pause], capped by the remaining budget.
        sleep = pause - (pause * jitter * rng.random())
        time.sleep(min(sleep, remaining))
        pause = min(pause * 2.0, backoff_max)


class BlockingSocketSender:
    """Send frames on a non-blocking socket, recording blocking time.

    The blocked wait is a **bounded** ``select`` loop: each poll has a
    timeout (growing exponentially from ``poll_start`` to ``poll_max``)
    and watches the exceptional set as well as writability, so a dead or
    errored peer raises :exc:`PeerDeadError` instead of parking the
    sender in one unbounded syscall forever. An optional ``send_timeout``
    bounds the whole wait, raising :exc:`SendTimeoutError` — the caller
    (a splitter's recovery layer) can then fail the channel over. After a
    failure, :meth:`replace_socket` resumes sending on a fresh socket
    without losing the cumulative blocking measurement.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        send_timeout: float | None = None,
        poll_start: float = 0.005,
        poll_max: float = 0.25,
    ) -> None:
        check_positive("poll_start", poll_start)
        check_positive("poll_max", poll_max)
        if send_timeout is not None:
            check_positive("send_timeout", send_timeout)
        sock.setblocking(False)
        self.sock = sock
        #: Overall bound on one blocked wait (None waits indefinitely,
        #: still in bounded polls so peer death is noticed between them).
        self.send_timeout = send_timeout
        self.poll_start = float(poll_start)
        self.poll_max = float(poll_max)
        #: Cumulative blocking time, exactly as the data transport layer
        #: of the paper maintains it.
        self.blocking = BlockingCounter()
        #: Frames fully sent.
        self.frames_sent = 0

    def replace_socket(self, sock: socket.socket) -> None:
        """Resume on a fresh socket (reconnect after a peer death).

        The old socket is closed; blocking counters and the frame count
        carry over — the measurement outlives the transport instance.
        """
        old = self.sock
        sock.setblocking(False)
        self.sock = sock
        try:
            old.close()
        except OSError:
            pass

    def reconnect(
        self,
        connect: Callable[[], socket.socket],
        *,
        deadline: float = 5.0,
        backoff_start: float = 0.02,
        backoff_max: float = 0.5,
        jitter: float = 0.5,
        rng: random.Random | None = None,
    ) -> None:
        """Re-establish the transport on a freshly dialed socket.

        :func:`connect_with_backoff` tolerates the restarting-listener
        race (``ECONNREFUSED`` on early dials) instead of failing on the
        first refused attempt; the winning socket is installed with
        :meth:`replace_socket`, so counters and frame counts carry over.
        Raises :class:`PeerDeadError` when the deadline is spent.
        """
        self.replace_socket(
            connect_with_backoff(
                connect,
                deadline=deadline,
                backoff_start=backoff_start,
                backoff_max=backoff_max,
                jitter=jitter,
                rng=rng,
            )
        )

    def try_send(self, frame: bytes) -> bool:
        """One non-blocking attempt; ``False`` means it would block.

        Partial sends are completed with further non-blocking attempts
        (blocking for the remainder if needed) so frames never interleave.
        """
        try:
            sent = self.sock.send(frame, _DONTWAIT)
        except (BlockingIOError, InterruptedError):
            return False
        except OSError as exc:
            raise PeerDeadError(f"peer is gone: {exc}") from exc
        self._finish(frame, sent)
        return True

    def send(self, frame: bytes) -> None:
        """Send a frame, electing to block (and timing it) when necessary."""
        if self.try_send(frame):
            return
        self._wait_writable()
        # After select reports writability a send can still be partial (or
        # in rare cases fail again); loop until the frame is out.
        self._finish(frame, 0)

    def send_batch(self, frames: Sequence[bytes]) -> None:
        """Send several frames coalesced into scatter-gather syscalls.

        The batched dataplane's frame coalescing: the whole batch is
        handed to the kernel with one ``sendmsg`` instead of one ``send``
        per frame, and partial sends are completed with ``memoryview``
        slices — no intermediate concatenation, no per-frame ``bytes``
        copies. Blocking mid-batch is timed exactly like :meth:`send`
        (the batch is one elect-to-block episode, not ``len(frames)``).
        Falls back to per-frame sends where ``sendmsg`` is unavailable.
        """
        if not frames:
            return
        sendmsg = getattr(self.sock, "sendmsg", None)
        if sendmsg is None:  # pragma: no cover - non-POSIX fallback
            for frame in frames:
                self.send(frame)
            return
        views = [memoryview(frame) for frame in frames]
        n = len(views)
        idx = 0
        while idx < n:
            try:
                sent = self.sock.sendmsg(views[idx : idx + _IOV_MAX])
            except (BlockingIOError, InterruptedError):
                self._wait_writable()
                continue
            except OSError as exc:
                raise PeerDeadError(f"peer is gone: {exc}") from exc
            while idx < n and sent >= len(views[idx]):
                sent -= len(views[idx])
                idx += 1
            if sent and idx < n:
                views[idx] = views[idx][sent:]
        self.frames_sent += n

    def _finish(self, frame: bytes, sent: int) -> None:
        offset = sent
        while offset < len(frame):
            try:
                offset += self.sock.send(frame[offset:], _DONTWAIT)
            except (BlockingIOError, InterruptedError):
                self._wait_writable()
            except OSError as exc:
                raise PeerDeadError(f"peer is gone: {exc}") from exc
        self.frames_sent += 1

    def _wait_writable(self) -> None:
        """Wait until the socket is writable, timing the blocked interval.

        Bounded polls with exponential backoff replace the previous
        unbounded ``select.select([], [sock], [])``, and the exceptional
        set is no longer ignored: a socket error raises instead of
        reporting a write that would fail.
        """
        started = time.monotonic()
        deadline = (
            None if self.send_timeout is None else started + self.send_timeout
        )
        poll = self.poll_start
        try:
            while True:
                timeout = poll
                if deadline is not None:
                    timeout = min(poll, max(0.0, deadline - time.monotonic()))
                _, writable, exceptional = select.select(
                    [], [self.sock], [self.sock], timeout
                )
                if exceptional:
                    raise PeerDeadError(
                        "socket entered an exceptional state while blocked"
                    )
                if writable:
                    return
                if deadline is not None and time.monotonic() >= deadline:
                    raise SendTimeoutError(
                        f"send not possible within {self.send_timeout:g}s"
                    )
                poll = min(poll * 2.0, self.poll_max)
        finally:
            self.blocking.add(time.monotonic() - started)


class _FrameAssembler:
    """Reassembles fixed-size frames from a stream of received chunks.

    The previous receive loop sliced ``buffer = buffer[frame_size:]`` once
    per frame, copying the whole remaining tail each time — quadratic in
    the frames delivered per chunk (a 64 KiB recv of 512-byte frames
    copied ~4 MB to consume 64 KiB). The assembler instead consumes every
    whole frame in one arithmetic step and compacts the sub-frame leftover
    once per chunk, so bytes copied stay linear in bytes received.
    ``bytes_copied`` counts compaction copies for the regression test.
    """

    def __init__(self, frame_size: int) -> None:
        check_positive("frame_size", frame_size)
        self.frame_size = int(frame_size)
        #: Whole frames consumed so far.
        self.frames = 0
        #: Bytes moved by buffer compaction (always < frame_size per feed).
        self.bytes_copied = 0
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> int:
        """Absorb ``chunk``; return how many whole frames it completed."""
        buffer = self._buffer
        buffer += chunk
        frames = len(buffer) // self.frame_size
        if frames:
            del buffer[: frames * self.frame_size]
            self.bytes_copied += len(buffer)
            self.frames += frames
        return frames

    def eof(self) -> None:
        """Declare the stream ended; raises if a partial frame remains.

        A clean shutdown lands on a frame boundary; EOF mid-frame means
        the peer died while writing and the tail can never complete. The
        caller gets a :class:`~repro.net.framing.TruncatedStreamError`
        naming the stranded bytes — never a silently dropped partial
        tuple.
        """
        if self._buffer:
            from repro.net.framing import TruncatedStreamError

            raise TruncatedStreamError(
                f"stream ended mid-frame with {len(self._buffer)} of "
                f"{self.frame_size} bytes after {self.frames} whole frames"
            )


class _SocketWorker(threading.Thread):
    """Reads fixed-size frames and simulates per-tuple processing cost."""

    def __init__(
        self, sock: socket.socket, frame_size: int, service_time: float
    ) -> None:
        super().__init__(daemon=True)
        self.sock = sock
        self.frame_size = frame_size
        self.service_time = service_time
        self.assembler = _FrameAssembler(frame_size)
        self.processed = 0
        self._failure: BaseException | None = None

    def run(self) -> None:  # pragma: no cover - exercised via integration
        try:
            assembler = self.assembler
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    return
                for _ in range(assembler.feed(chunk)):
                    if self.service_time > 0:
                        time.sleep(self.service_time)
                    self.processed += 1
        except OSError:
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via join
            self._failure = exc


class SocketMiniRegion:
    """A tiny real-socket parallel region: one sender, N thread workers.

    ``service_times`` gives each worker's simulated per-tuple cost. Socket
    buffers are shrunk so backpressure (and therefore measurable blocking)
    appears after a handful of frames, like the paper's two-system-buffer
    pipeline.
    """

    def __init__(
        self,
        service_times: Sequence[float],
        *,
        frame_size: int = 512,
        buffer_bytes: int = 4096,
        send_timeout: float | None = None,
        join_timeout: float = 5.0,
    ) -> None:
        if not service_times:
            raise ValueError("need at least one worker")
        check_positive("frame_size", frame_size)
        check_positive("buffer_bytes", buffer_bytes)
        check_positive("join_timeout", join_timeout)
        self.frame_size = frame_size
        self.frame = b"x" * frame_size
        self.join_timeout = float(join_timeout)
        self.senders: list[BlockingSocketSender] = []
        self.workers: list[_SocketWorker] = []
        self._closed = False
        for service in service_times:
            left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
            self.senders.append(
                BlockingSocketSender(left, send_timeout=send_timeout)
            )
            worker = _SocketWorker(right, frame_size, service)
            worker.start()
            self.workers.append(worker)

    @property
    def blocking_counters(self) -> list[BlockingCounter]:
        """Per-connection cumulative blocking counters."""
        return [sender.blocking for sender in self.senders]

    def attach_observability(self, hub) -> None:
        """Register per-sender transport instruments on ``hub``.

        The one component whose observations are wall-clock, not
        sim-clock: blocking here is measured with ``time.monotonic``
        around real ``select`` waits, so these gauges are the only
        non-deterministic values an observed run can export.
        """
        registry = hub.registry
        for j, sender in enumerate(self.senders):
            registry.gauge_fn(
                "socket_frames_sent_total",
                (lambda s: lambda: s.frames_sent)(sender),
                help="Frames pushed into the socket",
                connection=str(j),
            )
            registry.gauge_fn(
                "socket_blocking_seconds_total",
                (lambda s: lambda: s.blocking.lifetime_seconds)(sender),
                help="Wall-clock seconds blocked in select (monotonic)",
                connection=str(j),
            )
            registry.gauge_fn(
                "socket_blocking_episodes_total",
                (lambda s: lambda: s.blocking.lifetime_episodes)(sender),
                help="Blocking episodes on the socket",
                connection=str(j),
            )

    def send_weighted(
        self,
        n_frames: int,
        weights: Sequence[int],
        *,
        batch_size: int = 1,
    ) -> None:
        """Send ``n_frames`` frames distributed by weight.

        ``batch_size=1`` routes each frame with smooth weighted RR and one
        ``send`` per frame (the paper-faithful path). Larger values
        apportion each batch with one policy call and coalesce each
        connection's share into a single scatter-gather
        :meth:`~BlockingSocketSender.send_batch`.
        """
        from repro.core.policies import WeightedPolicy

        check_positive("batch_size", batch_size)
        policy = WeightedPolicy(list(weights))
        if batch_size == 1:
            for _ in range(n_frames):
                self.senders[policy.next_connection()].send(self.frame)
            return
        remaining = n_frames
        while remaining > 0:
            count = min(batch_size, remaining)
            remaining -= count
            for j, share in enumerate(policy.allocate_batch(count)):
                if share:
                    self.senders[j].send_batch([self.frame] * share)

    def close(self) -> None:
        """Shut the region down and join the workers. Idempotent.

        A worker that fails to exit within ``join_timeout`` or that died
        with an exception is an error, not a silent leak — and no worker
        hides another: *every* stuck and dead worker is gathered before
        anything is raised. A single dead worker re-raises its original
        exception (full traceback preserved); any other combination
        raises one aggregated
        :class:`~repro.streams.splitter.RegionStalledError` listing all
        stuck/dead workers. References to stuck worker threads are
        dropped so they cannot pin their sockets (the threads are
        daemons; the interpreter reaps them at exit). Sockets are closed
        either way, and a second :meth:`close` is a no-op — failures
        already reported once are not re-raised (the common
        ``with``-block pattern closes once in the body on error and once
        again in ``__exit__``).
        """
        if self._closed:
            return
        self._closed = True
        for sender in self.senders:
            try:
                sender.sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        stuck: list[int] = []
        for index, worker in enumerate(self.workers):
            worker.join(timeout=self.join_timeout)
            if worker.is_alive():
                stuck.append(index)
        for sender in self.senders:
            sender.sock.close()
        for worker in self.workers:
            worker.sock.close()
        dead = [
            (index, worker._failure)
            for index, worker in enumerate(self.workers)
            if worker._failure is not None
        ]
        if stuck:
            # A stuck daemon thread must not keep the dead region (and
            # its sockets) reachable through the workers list.
            self.workers = [
                w for i, w in enumerate(self.workers) if i not in set(stuck)
            ]
        if dead and not stuck and len(dead) == 1:
            raise dead[0][1]
        if stuck or dead:
            problems = []
            if stuck:
                problems.append(
                    f"workers {stuck} did not exit within "
                    f"{self.join_timeout:g}s of shutdown"
                )
            problems += [
                f"worker {index} died with {type(exc).__name__}: {exc}"
                for index, exc in dead
            ]
            raise RegionStalledError(
                "region shutdown failed: " + "; ".join(problems)
            )

    def __enter__(self) -> "SocketMiniRegion":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
