"""Real-socket transport: the paper's blocking measurement on OS sockets.

Section 3 of the paper measures blocking like this: each tuple send is
attempted with ``MSG_DONTWAIT``; if the kernel reports it would block, the
sender issues ``select`` on that socket and records how long it waited.
:class:`BlockingSocketSender` implements exactly that syscall sequence on a
real non-blocking stream socket.

One substitution (documented in DESIGN.md): Linux ``select`` writes the
*remaining* time into its timeout argument, which the paper reads to get
the blocked duration. Python's ``select.select`` does not expose the
mutated struct, so we time the call with ``time.monotonic()`` — the same
quantity, measured one layer up.

:class:`SocketMiniRegion` is a miniature parallel region over OS socket
pairs with thread workers: enough dataplane to demonstrate that the
measured blocking rates reflect worker capacity on a real kernel, used by
the integration tests and the ``real_sockets`` example. The deterministic
experiments all run on the simulator.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from collections.abc import Sequence

from repro.net.blocking import BlockingCounter
from repro.util.validation import check_positive

#: MSG_DONTWAIT is Linux-specific; with a non-blocking socket the flag is
#: belt-and-braces, so fall back to 0 elsewhere.
_DONTWAIT = getattr(socket, "MSG_DONTWAIT", 0)


class BlockingSocketSender:
    """Send frames on a non-blocking socket, recording blocking time."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        self.sock = sock
        #: Cumulative blocking time, exactly as the data transport layer
        #: of the paper maintains it.
        self.blocking = BlockingCounter()
        #: Frames fully sent.
        self.frames_sent = 0

    def try_send(self, frame: bytes) -> bool:
        """One non-blocking attempt; ``False`` means it would block.

        Partial sends are completed with further non-blocking attempts
        (blocking for the remainder if needed) so frames never interleave.
        """
        try:
            sent = self.sock.send(frame, _DONTWAIT)
        except (BlockingIOError, InterruptedError):
            return False
        self._finish(frame, sent)
        return True

    def send(self, frame: bytes) -> None:
        """Send a frame, electing to block (and timing it) when necessary."""
        if self.try_send(frame):
            return
        self._wait_writable()
        # After select reports writability a send can still be partial (or
        # in rare cases fail again); loop until the frame is out.
        offset = 0
        while offset < len(frame):
            try:
                offset += self.sock.send(frame[offset:], _DONTWAIT)
            except (BlockingIOError, InterruptedError):
                self._wait_writable()
        self.frames_sent += 1

    def _finish(self, frame: bytes, sent: int) -> None:
        offset = sent
        while offset < len(frame):
            try:
                offset += self.sock.send(frame[offset:], _DONTWAIT)
            except (BlockingIOError, InterruptedError):
                self._wait_writable()
        self.frames_sent += 1

    def _wait_writable(self) -> None:
        started = time.monotonic()
        select.select([], [self.sock], [])
        self.blocking.add(time.monotonic() - started)


class _SocketWorker(threading.Thread):
    """Reads fixed-size frames and simulates per-tuple processing cost."""

    def __init__(
        self, sock: socket.socket, frame_size: int, service_time: float
    ) -> None:
        super().__init__(daemon=True)
        self.sock = sock
        self.frame_size = frame_size
        self.service_time = service_time
        self.processed = 0
        self._failure: BaseException | None = None

    def run(self) -> None:  # pragma: no cover - exercised via integration
        try:
            buffer = b""
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    return
                buffer += chunk
                while len(buffer) >= self.frame_size:
                    buffer = buffer[self.frame_size:]
                    if self.service_time > 0:
                        time.sleep(self.service_time)
                    self.processed += 1
        except OSError:
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via join
            self._failure = exc


class SocketMiniRegion:
    """A tiny real-socket parallel region: one sender, N thread workers.

    ``service_times`` gives each worker's simulated per-tuple cost. Socket
    buffers are shrunk so backpressure (and therefore measurable blocking)
    appears after a handful of frames, like the paper's two-system-buffer
    pipeline.
    """

    def __init__(
        self,
        service_times: Sequence[float],
        *,
        frame_size: int = 512,
        buffer_bytes: int = 4096,
    ) -> None:
        if not service_times:
            raise ValueError("need at least one worker")
        check_positive("frame_size", frame_size)
        check_positive("buffer_bytes", buffer_bytes)
        self.frame_size = frame_size
        self.frame = b"x" * frame_size
        self.senders: list[BlockingSocketSender] = []
        self.workers: list[_SocketWorker] = []
        for service in service_times:
            left, right = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
            for sock in (left, right):
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
            self.senders.append(BlockingSocketSender(left))
            worker = _SocketWorker(right, frame_size, service)
            worker.start()
            self.workers.append(worker)

    @property
    def blocking_counters(self) -> list[BlockingCounter]:
        """Per-connection cumulative blocking counters."""
        return [sender.blocking for sender in self.senders]

    def send_weighted(self, n_frames: int, weights: Sequence[int]) -> None:
        """Send ``n_frames`` frames distributed by smooth weighted RR."""
        from repro.core.policies import WeightedPolicy

        policy = WeightedPolicy(list(weights))
        for _ in range(n_frames):
            self.senders[policy.next_connection()].send(self.frame)

    def close(self) -> None:
        """Shut the region down and join the workers."""
        for sender in self.senders:
            try:
                sender.sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
        for worker in self.workers:
            worker.join(timeout=5.0)
        for sender in self.senders:
            sender.sock.close()
        for worker in self.workers:
            worker.sock.close()

    def __enter__(self) -> "SocketMiniRegion":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
