"""Data transport substrate.

The paper's data transport layer is TCP: one connection from the splitter to
each parallel worker PE, with a bounded send buffer on the splitter's host
and a bounded receive buffer on the worker's host. When both are full, a
send blocks — and the transport layer records for how long (Section 3).

Two implementations share that contract:

* :class:`SimulatedConnection` — deterministic, used by every experiment;
* :mod:`repro.net.socket_transport` — real OS sockets driven exactly as the
  paper describes (non-blocking send, then ``select`` and measure), used in
  integration tests and the ``real_sockets`` example.
"""

from repro.net.blocking import BlockingCounter
from repro.net.buffers import BoundedBuffer, BufferFullError
from repro.net.connection import SimulatedConnection

__all__ = [
    "BlockingCounter",
    "BoundedBuffer",
    "BufferFullError",
    "SimulatedConnection",
]
