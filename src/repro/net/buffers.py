"""Bounded FIFO buffers.

These model the OS socket buffers that make blocking a *late* indicator of
congestion (Section 4.4): "By the time a TCP connection for an overloaded
PE blocks, it already has at least two system buffers worth of unprocessed
tuples (locally on the splitter and remotely on the worker)."

Capacity is measured in tuples. Real TCP buffers are sized in bytes, but for
a fixed-size tuple stream the two are equivalent up to a constant, and tuple
units keep the simulator's accounting exact.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.util.validation import check_positive

T = TypeVar("T")


class BufferFullError(RuntimeError):
    """Unconditional push into a full buffer (a caller bug, never expected)."""


class BoundedBuffer(Generic[T]):
    """FIFO queue with a hard capacity and optional space reservations.

    Reservations model in-flight data: a transfer claims space in the
    receive buffer *when it starts* (TCP advertises the window before the
    bytes arrive), and converts the reservation to a real entry on
    delivery.
    """

    __slots__ = ("capacity", "_items", "_reserved")

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._items: deque[T] = deque()
        self._reserved = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def reserved(self) -> int:
        """Number of outstanding space reservations."""
        return self._reserved

    @property
    def free_slots(self) -> int:
        """Slots available for new pushes or reservations."""
        return self.capacity - len(self._items) - self._reserved

    def is_full(self) -> bool:
        """True when no push or reservation can be accepted."""
        # Inlined free-slot arithmetic: this runs per tuple on the
        # transport hot path, where a property access is measurable.
        return self.capacity - len(self._items) - self._reserved <= 0

    def try_push(self, item: T) -> bool:
        """Append ``item`` if there is space; return whether it was taken."""
        if self.capacity - len(self._items) - self._reserved <= 0:
            return False
        self._items.append(item)
        return True

    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`BufferFullError` when full."""
        if not self.try_push(item):
            raise BufferFullError(
                f"buffer full (capacity={self.capacity}, reserved={self._reserved})"
            )

    def reserve(self) -> None:
        """Claim one slot for an in-flight item."""
        if self.is_full():
            raise BufferFullError("cannot reserve space in a full buffer")
        self._reserved += 1

    def push_reserved(self, item: T) -> None:
        """Deliver an item into a slot previously claimed by :meth:`reserve`."""
        if self._reserved <= 0:
            raise BufferFullError("push_reserved without a reservation")
        self._reserved -= 1
        self._items.append(item)

    def push_front(self, item: T) -> None:
        """Put ``item`` back at the head, bypassing the capacity check.

        Redelivery path: a crashed worker's in-service tuple is returned
        to the receive buffer it was taken from (the take never completed,
        so logically the slot is still its own). The buffer may transiently
        exceed capacity by one; flow control absorbs it on the next pump.
        """
        self._items.appendleft(item)

    def clear(self) -> int:
        """Drop every item and outstanding reservation; return items dropped.

        Fault path: a failed connection's buffers die with it. Reservations
        are forgotten too — the in-flight transfers they backed are
        invalidated by the connection's generation bump.
        """
        dropped = len(self._items)
        self._items.clear()
        self._reserved = 0
        return dropped

    def pop(self) -> T:
        """Remove and return the oldest item."""
        if not self._items:
            raise IndexError("pop from empty buffer")
        return self._items.popleft()

    def pop_many(self, max_n: int) -> list[T]:
        """Remove and return up to ``max_n`` oldest items, in FIFO order.

        The batched dataplane's bulk take: one call drains a run where the
        per-tuple path would pop (and re-check emptiness) ``max_n`` times.
        Returns an empty list when the buffer is empty.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        items = self._items
        if len(items) <= max_n:
            drained = list(items)
            items.clear()
            return drained
        popleft = items.popleft
        return [popleft() for _ in range(max_n)]

    def peek(self) -> T:
        """The oldest item, without removing it."""
        if not self._items:
            raise IndexError("peek into empty buffer")
        return self._items[0]


class RunBuffer:
    """A bounded FIFO of :class:`~repro.streams.tuples.TupleBlock` runs.

    The block-native dataplane's buffer: capacity, occupancy and
    reservations are all denominated in **tuples** — exactly like
    :class:`BoundedBuffer` — so blocking dynamics (when a send buffer
    fills, how much a connection holds) are unchanged from the per-tuple
    engine; only the bookkeeping granularity is coarser. A push that does
    not fully fit is accepted partially (the caller splits the block at
    the accepted boundary), and a bounded pop splits the front block, so
    no operation ever distorts capacity accounting to block granularity.
    """

    __slots__ = ("capacity", "_runs", "_tuples", "_reserved")

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._runs: deque = deque()
        self._tuples = 0
        self._reserved = 0

    def __len__(self) -> int:
        """Occupancy in tuples (not blocks)."""
        return self._tuples

    def __bool__(self) -> bool:
        return self._tuples > 0

    @property
    def reserved(self) -> int:
        """Tuples of outstanding space reservations."""
        return self._reserved

    @property
    def free_slots(self) -> int:
        """Tuple slots available for new pushes or reservations."""
        return self.capacity - self._tuples - self._reserved

    def is_full(self) -> bool:
        """True when not a single further tuple can be accepted."""
        return self.capacity - self._tuples - self._reserved <= 0

    def push_run(self, block) -> int:
        """Accept as much of ``block`` as fits; return tuples accepted.

        A partial accept stores the block's head; the caller keeps the
        tail (``block.split(accepted)[1]``) — the run-level analogue of a
        partial ``sendmsg``.
        """
        free = self.capacity - self._tuples - self._reserved
        if free <= 0:
            return 0
        count = block.count
        if count <= free:
            self._runs.append(block)
            self._tuples += count
            return count
        self._runs.append(block.split(free)[0])
        self._tuples += free
        return free

    def reserve_run(self, n: int) -> None:
        """Claim ``n`` tuple slots for an in-flight run."""
        if n > self.capacity - self._tuples - self._reserved:
            raise BufferFullError("cannot reserve space in a full buffer")
        self._reserved += n

    def push_reserved_run(self, block) -> None:
        """Deliver a block into slots claimed by :meth:`reserve_run`."""
        if self._reserved < block.count:
            raise BufferFullError("push_reserved_run without a reservation")
        self._reserved -= block.count
        self._runs.append(block)
        self._tuples += block.count

    def push_front_run(self, block) -> None:
        """Put a block back at the head, bypassing the capacity check.

        Crash redelivery, exactly like :meth:`BoundedBuffer.push_front`:
        the buffer may transiently exceed capacity; flow control absorbs
        it on the next pump.
        """
        self._runs.appendleft(block)
        self._tuples += block.count

    def transfer_to(self, other: "RunBuffer") -> int:
        """Move blocks FIFO into ``other`` until its free slots run out.

        The zero-wire-delay pump's whole inner loop in one call: whole
        blocks move as single deque operations, the block straddling the
        receiver's free-slot boundary is split exactly where per-tuple
        flow control would have stopped, and both buffers' tuple counts
        are settled once. Returns tuples moved (0 when nothing fits or
        nothing is queued).
        """
        free = other.capacity - other._tuples - other._reserved
        if free <= 0 or not self._tuples:
            return 0
        runs = self._runs
        dst = other._runs
        moved = 0
        while runs:
            block = runs[0]
            count = block.count
            if moved + count <= free:
                runs.popleft()
                dst.append(block)
                moved += count
                if moved == free:
                    break
            else:
                head, tail = block.split(free - moved)
                runs[0] = tail
                dst.append(head)
                moved = free
                break
        self._tuples -= moved
        other._tuples += moved
        return moved

    def pop_runs(self, max_n: int) -> list:
        """Remove and return up to ``max_n`` tuples of blocks, in order.

        Whole blocks are popped while they fit; a block straddling the
        limit is split, its head returned and its tail left at the front.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        runs = self._runs
        if self._tuples <= max_n:
            # Everything fits — the steady-state take drains the buffer
            # whole, without per-block boundary checks.
            out = list(runs)
            runs.clear()
            self._tuples = 0
            return out
        out = []
        taken = 0
        while runs:
            block = runs[0]
            count = block.count
            if taken + count <= max_n:
                runs.popleft()
                out.append(block)
                taken += count
                if taken == max_n:
                    break
            else:
                head, tail = block.split(max_n - taken)
                runs[0] = tail
                out.append(head)
                taken = max_n
                break
        self._tuples -= taken
        return out

    def clear(self) -> int:
        """Drop every block and reservation; return tuples dropped."""
        dropped = self._tuples
        self._runs.clear()
        self._tuples = 0
        self._reserved = 0
        return dropped
