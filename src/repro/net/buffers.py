"""Bounded FIFO buffers.

These model the OS socket buffers that make blocking a *late* indicator of
congestion (Section 4.4): "By the time a TCP connection for an overloaded
PE blocks, it already has at least two system buffers worth of unprocessed
tuples (locally on the splitter and remotely on the worker)."

Capacity is measured in tuples. Real TCP buffers are sized in bytes, but for
a fixed-size tuple stream the two are equivalent up to a constant, and tuple
units keep the simulator's accounting exact.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.util.validation import check_positive

T = TypeVar("T")


class BufferFullError(RuntimeError):
    """Unconditional push into a full buffer (a caller bug, never expected)."""


class BoundedBuffer(Generic[T]):
    """FIFO queue with a hard capacity and optional space reservations.

    Reservations model in-flight data: a transfer claims space in the
    receive buffer *when it starts* (TCP advertises the window before the
    bytes arrive), and converts the reservation to a real entry on
    delivery.
    """

    __slots__ = ("capacity", "_items", "_reserved")

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._items: deque[T] = deque()
        self._reserved = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def reserved(self) -> int:
        """Number of outstanding space reservations."""
        return self._reserved

    @property
    def free_slots(self) -> int:
        """Slots available for new pushes or reservations."""
        return self.capacity - len(self._items) - self._reserved

    def is_full(self) -> bool:
        """True when no push or reservation can be accepted."""
        # Inlined free-slot arithmetic: this runs per tuple on the
        # transport hot path, where a property access is measurable.
        return self.capacity - len(self._items) - self._reserved <= 0

    def try_push(self, item: T) -> bool:
        """Append ``item`` if there is space; return whether it was taken."""
        if self.capacity - len(self._items) - self._reserved <= 0:
            return False
        self._items.append(item)
        return True

    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`BufferFullError` when full."""
        if not self.try_push(item):
            raise BufferFullError(
                f"buffer full (capacity={self.capacity}, reserved={self._reserved})"
            )

    def reserve(self) -> None:
        """Claim one slot for an in-flight item."""
        if self.is_full():
            raise BufferFullError("cannot reserve space in a full buffer")
        self._reserved += 1

    def push_reserved(self, item: T) -> None:
        """Deliver an item into a slot previously claimed by :meth:`reserve`."""
        if self._reserved <= 0:
            raise BufferFullError("push_reserved without a reservation")
        self._reserved -= 1
        self._items.append(item)

    def push_front(self, item: T) -> None:
        """Put ``item`` back at the head, bypassing the capacity check.

        Redelivery path: a crashed worker's in-service tuple is returned
        to the receive buffer it was taken from (the take never completed,
        so logically the slot is still its own). The buffer may transiently
        exceed capacity by one; flow control absorbs it on the next pump.
        """
        self._items.appendleft(item)

    def clear(self) -> int:
        """Drop every item and outstanding reservation; return items dropped.

        Fault path: a failed connection's buffers die with it. Reservations
        are forgotten too — the in-flight transfers they backed are
        invalidated by the connection's generation bump.
        """
        dropped = len(self._items)
        self._items.clear()
        self._reserved = 0
        return dropped

    def pop(self) -> T:
        """Remove and return the oldest item."""
        if not self._items:
            raise IndexError("pop from empty buffer")
        return self._items.popleft()

    def pop_many(self, max_n: int) -> list[T]:
        """Remove and return up to ``max_n`` oldest items, in FIFO order.

        The batched dataplane's bulk take: one call drains a run where the
        per-tuple path would pop (and re-check emptiness) ``max_n`` times.
        Returns an empty list when the buffer is empty.
        """
        if max_n <= 0:
            raise ValueError(f"max_n must be positive, got {max_n}")
        items = self._items
        if len(items) <= max_n:
            drained = list(items)
            items.clear()
            return drained
        popleft = items.popleft
        return [popleft() for _ in range(max_n)]

    def peek(self) -> T:
        """The oldest item, without removing it."""
        if not self._items:
            raise IndexError("peek into empty buffer")
        return self._items[0]
