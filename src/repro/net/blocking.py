"""Cumulative blocking-time accounting (Section 3 of the paper).

The data transport layer keeps, per connection, a counter of the total time
the sender has spent blocked on that connection. The counter "constantly
increases until it is periodically reset by the data transport layer"
(Figure 2); the load balancer samples it every second and differences
successive samples to estimate the blocking *rate*.

:class:`BlockingCounter` is that counter. It is shared by the simulated and
the real-socket transports, and read (never written) by the controller via
:class:`repro.core.blocking_rate.BlockingRateEstimator`.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative


class BlockingCounter:
    """Cumulative blocking time for one connection, in seconds.

    Also tracks the number of blocking episodes and lifetime totals (which
    survive resets), for diagnostics and for the "blocking is a rare event"
    analysis of Section 4.4.
    """

    __slots__ = ("cumulative_seconds", "episodes", "lifetime_seconds", "lifetime_episodes")

    def __init__(self) -> None:
        #: Seconds blocked since the last reset (what the sampler reads).
        self.cumulative_seconds = 0.0
        #: Blocking episodes since the last reset.
        self.episodes = 0
        #: Seconds blocked since construction (never reset).
        self.lifetime_seconds = 0.0
        #: Episodes since construction (never reset).
        self.lifetime_episodes = 0

    def add(self, seconds: float) -> None:
        """Record one blocking episode of ``seconds`` duration."""
        check_non_negative("seconds", seconds)
        self.cumulative_seconds += seconds
        self.episodes += 1
        self.lifetime_seconds += seconds
        self.lifetime_episodes += 1

    def read(self) -> float:
        """Current cumulative value (what the periodic sampler reads)."""
        return self.cumulative_seconds

    def reset(self) -> None:
        """Periodic reset by the transport layer (Figure 2's sawtooth)."""
        self.cumulative_seconds = 0.0
        self.episodes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlockingCounter(cumulative={self.cumulative_seconds:.6f}s, "
            f"episodes={self.episodes})"
        )
