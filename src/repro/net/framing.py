"""Typed message framing for the multi-process dataplane.

The process backend (:mod:`repro.proc`) speaks one duplex TCP stream per
worker, multiplexing data tuples, acknowledgements-by-result, and the
liveness heartbeat on the same channel — heartbeats piggyback on the data
connection instead of requiring a side channel, so a wedged data socket
*is* a missed heartbeat (the failure modes cannot diverge).

Every message is a fixed 5-byte header (``type: u8``, ``length: u32``,
network byte order) followed by ``length`` payload bytes. The payload
layouts are tiny ``struct`` packs; bodies beyond the fixed fields (the
tuple payload proper) ride as raw trailing bytes.

The hot path ships *runs*, not tuples: ``DATA_BATCH`` and
``RESULT_BATCH`` carry a whole run of sequenced tuples in one frame,
laid out as columns (the :class:`~repro.streams.tuples.TupleBlock`
idiom taken to the wire) — a base sequence number plus contiguous
seq-delta / cost / body-length columns and the concatenated bodies,
packed with a handful of ``struct`` calls and zero pickling. One frame
per run collapses the per-tuple header + ``sendall`` overhead that
made the unbatched process backend scale negatively, and the single
cumulative ``RESULT_BATCH`` per serviced run halves the frame count
again versus one ack per tuple. ``DATA``/``RESULT`` remain the
``batch_size=1`` wire format, byte-identical to the pre-batching
protocol.

:class:`MessageAssembler` reassembles messages from arbitrary chunk
boundaries — a 1-byte-at-a-time feed yields exactly the same messages as
a single feed of the concatenation — and :meth:`MessageAssembler.eof`
turns a connection that died mid-message into a clean
:class:`TruncatedStreamError` instead of a silently dropped tail.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator, Sequence

__all__ = [
    "MSG_HELLO",
    "MSG_DATA",
    "MSG_RESULT",
    "MSG_HEARTBEAT",
    "MSG_CONTROL",
    "MSG_EOS",
    "MSG_BYE",
    "MSG_DATA_BATCH",
    "MSG_RESULT_BATCH",
    "Message",
    "MessageAssembler",
    "TruncatedStreamError",
    "encode",
    "encode_hello",
    "encode_data",
    "encode_result",
    "encode_heartbeat",
    "encode_control",
    "encode_eos",
    "encode_bye",
    "encode_data_batch",
    "encode_result_batch",
]

#: Worker -> parent, first message on every (re)connect: who am I.
MSG_HELLO = 1
#: Parent -> worker: one sequenced tuple to process.
MSG_DATA = 2
#: Worker -> parent: one processed tuple (doubles as the ack).
MSG_RESULT = 3
#: Worker -> parent: periodic liveness beacon on the data channel.
MSG_HEARTBEAT = 4
#: Parent -> worker: runtime control (service-time multiplier).
MSG_CONTROL = 5
#: Parent -> worker: no more data; drain and exit cleanly.
MSG_EOS = 6
#: Worker -> parent: drained and exiting (response to EOS / SIGTERM).
MSG_BYE = 7
#: Parent -> worker: a run of sequenced tuples in one columnar frame.
MSG_DATA_BATCH = 8
#: Worker -> parent: one cumulative ack covering a run of results.
MSG_RESULT_BATCH = 9

_KNOWN_TYPES = frozenset(
    (MSG_HELLO, MSG_DATA, MSG_RESULT, MSG_HEARTBEAT, MSG_CONTROL,
     MSG_EOS, MSG_BYE, MSG_DATA_BATCH, MSG_RESULT_BATCH)
)

_HEADER = struct.Struct("!BI")
HEADER_SIZE = _HEADER.size

_HELLO = struct.Struct("!II")        # worker_id, incarnation
_DATA = struct.Struct("!Qd")         # seq, cost_seconds
_RESULT = struct.Struct("!Qd")       # seq, measured_service_seconds
_HEARTBEAT = struct.Struct("!QI")    # processed_total, incarnation
_CONTROL = struct.Struct("!d")       # service-time multiplier
_BYE = struct.Struct("!Q")           # processed_total

#: Batch frame layout (DATA_BATCH and RESULT_BATCH share it):
#: ``!QI`` base_seq + count, then three contiguous columns — ``count``
#: u32 seq deltas off the base, ``count`` f64 values (cost seconds on
#: the way out, measured service seconds on the way back), ``count``
#: u32 body lengths — then the bodies, concatenated in entry order.
_BATCH_HDR = struct.Struct("!QI")    # base_seq, count
#: Seq deltas within one run are bounded by the outstanding window
#: spread (a few thousand at most), so a u32 delta column is 4 bytes
#: per tuple cheaper than raw u64 seqs with headroom to spare.
_MAX_SEQ_DELTA = 0xFFFFFFFF

#: Hard cap on a single message payload: anything larger is a corrupt
#: header (a desynchronized stream read as a length), not a real frame.
MAX_PAYLOAD = 16 * 1024 * 1024


class TruncatedStreamError(ConnectionError):
    """The stream ended (or desynchronized) mid-message."""


class Message:
    """One decoded wire message: a type tag and its raw payload."""

    __slots__ = ("type", "payload")

    def __init__(self, type: int, payload: bytes) -> None:
        self.type = type
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message(type={self.type}, payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.type == other.type
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.type, self.payload))

    # ------------------------------------------------------------- decoding

    def hello(self) -> tuple[int, int]:
        """``(worker_id, incarnation)`` of a HELLO."""
        return _HELLO.unpack(self.payload)

    def data(self) -> tuple[int, float, bytes]:
        """``(seq, cost_seconds, body)`` of a DATA."""
        seq, cost = _DATA.unpack_from(self.payload)
        return seq, cost, self.payload[_DATA.size:]

    def result(self) -> tuple[int, float, bytes]:
        """``(seq, service_seconds, body)`` of a RESULT."""
        seq, service = _RESULT.unpack_from(self.payload)
        return seq, service, self.payload[_RESULT.size:]

    def heartbeat(self) -> tuple[int, int]:
        """``(processed_total, incarnation)`` of a HEARTBEAT."""
        return _HEARTBEAT.unpack(self.payload)

    def control(self) -> float:
        """The service-time multiplier of a CONTROL."""
        return _CONTROL.unpack(self.payload)[0]

    def bye(self) -> int:
        """The final processed count of a BYE."""
        return _BYE.unpack(self.payload)[0]

    def data_batch(self) -> list[tuple[int, float, bytes]]:
        """``[(seq, cost_seconds, body), ...]`` of a DATA_BATCH."""
        return _decode_batch(self.payload)

    def result_batch(self) -> list[tuple[int, float, bytes]]:
        """``[(seq, service_seconds, body), ...]`` of a RESULT_BATCH."""
        return _decode_batch(self.payload)


def encode(type: int, payload: bytes = b"") -> bytes:
    """Frame one message: header + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD"
        )
    return _HEADER.pack(type, len(payload)) + payload


def encode_hello(worker_id: int, incarnation: int) -> bytes:
    return encode(MSG_HELLO, _HELLO.pack(worker_id, incarnation))


def encode_data(seq: int, cost_seconds: float, body: bytes = b"") -> bytes:
    return encode(MSG_DATA, _DATA.pack(seq, cost_seconds) + body)


def encode_result(
    seq: int, service_seconds: float, body: bytes = b""
) -> bytes:
    return encode(MSG_RESULT, _RESULT.pack(seq, service_seconds) + body)


def encode_heartbeat(processed_total: int, incarnation: int) -> bytes:
    return encode(MSG_HEARTBEAT, _HEARTBEAT.pack(processed_total, incarnation))


def encode_control(multiplier: float) -> bytes:
    return encode(MSG_CONTROL, _CONTROL.pack(multiplier))


def encode_eos() -> bytes:
    return encode(MSG_EOS)


def encode_bye(processed_total: int) -> bytes:
    return encode(MSG_BYE, _BYE.pack(processed_total))


def _encode_batch(
    mtype: int, entries: "Sequence[tuple[int, float, bytes]]"
) -> bytes:
    """Pack a run of ``(seq, value, body)`` entries as one columnar frame."""
    count = len(entries)
    if count == 0:
        raise ValueError("a batch frame needs at least one entry")
    base = min(entry[0] for entry in entries)
    deltas = []
    values = []
    lengths = []
    bodies = []
    for seq, value, body in entries:
        delta = seq - base
        if delta > _MAX_SEQ_DELTA:
            raise ValueError(
                f"seq spread {delta} overflows the u32 delta column"
            )
        deltas.append(delta)
        values.append(value)
        lengths.append(len(body))
        bodies.append(body)
    payload = b"".join((
        _BATCH_HDR.pack(base, count),
        struct.pack(f"!{count}I", *deltas),
        struct.pack(f"!{count}d", *values),
        struct.pack(f"!{count}I", *lengths),
        *bodies,
    ))
    return encode(mtype, payload)


def _decode_batch(payload: bytes) -> list[tuple[int, float, bytes]]:
    """Unpack one columnar batch frame back into ``(seq, value, body)``."""
    try:
        base, count = _BATCH_HDR.unpack_from(payload)
    except struct.error as exc:
        raise TruncatedStreamError(
            f"batch frame header truncated: {exc}"
        ) from None
    if count == 0:
        raise TruncatedStreamError("batch frame with zero entries")
    offset = _BATCH_HDR.size
    try:
        deltas = struct.unpack_from(f"!{count}I", payload, offset)
        offset += 4 * count
        values = struct.unpack_from(f"!{count}d", payload, offset)
        offset += 8 * count
        lengths = struct.unpack_from(f"!{count}I", payload, offset)
        offset += 4 * count
    except struct.error as exc:
        raise TruncatedStreamError(
            f"batch frame columns truncated: {exc}"
        ) from None
    out = []
    for i in range(count):
        end = offset + lengths[i]
        out.append((base + deltas[i], values[i], payload[offset:end]))
        offset = end
    if offset != len(payload):
        raise TruncatedStreamError(
            f"batch frame bodies mismatch: consumed {offset} of "
            f"{len(payload)} payload bytes"
        )
    return out


def encode_data_batch(
    entries: "Sequence[tuple[int, float, bytes]]"
) -> bytes:
    """Frame a run of ``(seq, cost_seconds, body)`` tuples."""
    return _encode_batch(MSG_DATA_BATCH, entries)


def encode_result_batch(
    entries: "Sequence[tuple[int, float, bytes]]"
) -> bytes:
    """Frame one cumulative ack run of ``(seq, service_seconds, body)``."""
    return _encode_batch(MSG_RESULT_BATCH, entries)


class MessageAssembler:
    """Reassembles typed messages from arbitrary received chunks.

    Like the fixed-size :class:`~repro.net.socket_transport._FrameAssembler`
    this consumes every complete message per feed and keeps only the
    sub-message leftover buffered, so bytes copied stay linear in bytes
    received. Unlike it, frames here are variable-length (header-prefixed),
    and the assembler validates headers as it goes: an unknown type byte or
    an absurd length means the stream desynchronized, which raises
    :class:`TruncatedStreamError` immediately rather than waiting forever
    for a frame that will never complete.
    """

    __slots__ = ("messages", "_buffer", "_closed")

    def __init__(self) -> None:
        #: Whole messages consumed so far.
        self.messages = 0
        self._buffer = bytearray()
        self._closed = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete message."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Message]:
        """Absorb ``chunk``; return every message it completed, in order."""
        if self._closed:
            raise TruncatedStreamError("feed after eof()")
        buffer = self._buffer
        buffer += chunk
        out: list[Message] = []
        offset = 0
        available = len(buffer)
        while available - offset >= HEADER_SIZE:
            mtype, length = _HEADER.unpack_from(buffer, offset)
            if mtype not in _KNOWN_TYPES or length > MAX_PAYLOAD:
                raise TruncatedStreamError(
                    f"desynchronized stream: type={mtype} length={length}"
                )
            end = offset + HEADER_SIZE + length
            if end > available:
                break
            out.append(
                Message(mtype, bytes(buffer[offset + HEADER_SIZE:end]))
            )
            offset = end
        if offset:
            del buffer[:offset]
            self.messages += len(out)
        return out

    def eof(self) -> None:
        """Declare the stream ended; raises if a partial message remains.

        A clean close lands exactly on a message boundary. EOF mid-header
        or mid-payload means the peer died while writing — the caller gets
        a :class:`TruncatedStreamError` naming how many bytes were
        stranded instead of a silently vanished tail.
        """
        self._closed = True
        if self._buffer:
            raise TruncatedStreamError(
                f"stream ended mid-message with {len(self._buffer)} "
                f"bytes stranded after {self.messages} complete messages"
            )

    def iter_feed(self, chunk: bytes) -> Iterator[Message]:
        """Generator variant of :meth:`feed` (convenience for tests)."""
        yield from self.feed(chunk)
