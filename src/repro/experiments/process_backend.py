"""Run an :class:`ExperimentConfig` on the multi-process backend.

The simulator backend models time; this backend *spends* it: the same
configuration vocabulary (workers, hosts, tuple cost, fault schedule,
policy) is executed as real OS processes over real sockets via
:class:`repro.proc.region.ProcessRegion`, and the same
:class:`~repro.experiments.runner.RunResult` comes back — with
wall-clock time standing in for simulated time, and scheduled faults
delivered as real signals by
:class:`~repro.proc.faults.RealFaultDriver`.

Mapping from configuration to wall time: the fastest host's thread
speed sets the base per-tuple cost in seconds
(``tuple_cost / max_thread_speed``), and every worker gets a service
multiplier ``max_speed / its_speed * initial_load_multiplier`` — ratios
between workers, which is all the paper's results depend on, are
preserved exactly.

What does **not** map (and raises, loudly, instead of silently lying):
open-loop arrival rates, overload bursts, timed load-schedule events,
and the ``reroute``/``oracle`` policies — all are defined in terms of
simulator machinery with no process equivalent yet.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.balancer import LoadBalancer, even_split
from repro.experiments.config import ExperimentConfig, HostSpec
from repro.experiments.runner import RunResult
from repro.faults.schedule import FaultSchedule
from repro.obs.export import write_exports
from repro.obs.hub import ObservabilityHub, ObsReport
from repro.proc.faults import RealFaultDriver
from repro.proc.region import ProcessRegion
from repro.proc.supervisor import SupervisorConfig
from repro.streams.region import RegionParams
from repro.util.timeseries import TimeSeries

#: Policies the process backend can execute.
PROCESS_POLICIES = ("rr", "fixed", "lb-static", "lb-adaptive")


def run_process_experiment(
    config: ExperimentConfig,
    policy: str,
    *,
    record_series: bool = True,
    fixed_weights: list[int] | None = None,
    worker_mode: str = "sleep",
    window: int = 32,
    supervisor_config: SupervisorConfig | None = None,
    timeout: float | None = None,
) -> RunResult:
    """Execute ``config`` with real worker processes; return a RunResult.

    ``worker_mode="spin"`` makes workers burn CPU for their service time
    (true multi-core load); ``"sleep"`` (default) sleeps it, which keeps
    tests cheap and timing identical.
    """
    if policy not in PROCESS_POLICIES:
        raise ValueError(
            f"policy {policy!r} is not executable on the process backend; "
            f"choose from {PROCESS_POLICIES}"
        )
    if (policy == "fixed") != (fixed_weights is not None):
        raise ValueError("fixed_weights is required iff policy='fixed'")
    if config.total_tuples is None:
        raise ValueError(
            "the process backend runs finite tuple budgets: set "
            "total_tuples"
        )
    if config.arrival_rate is not None:
        raise ValueError(
            "the process backend has no open-loop rated source; unset "
            "arrival_rate"
        )
    if config.load_schedule.events or config.load_schedule.count_events:
        raise ValueError(
            "timed/progress load-schedule events are not supported on "
            "the process backend (initial multipliers are)"
        )

    n = config.n_workers
    speeds = [
        config.host_specs[h].thread_speed for h in config.worker_host
    ]
    base_speed = max(speeds)
    cost_seconds = config.tuple_cost / base_speed
    load = config.load_schedule.initial_multipliers(n)
    multipliers = [
        (base_speed / speeds[j]) * load[j] for j in range(n)
    ]

    resolution = config.balancer.resolution
    balancer: LoadBalancer | None = None
    initial_weights: list[float] | None = None
    if policy == "rr":
        initial_weights = [1.0] * n
    elif policy == "fixed":
        assert fixed_weights is not None
        initial_weights = [float(w) for w in fixed_weights]
    else:
        balancer_config = config.balancer
        if policy == "lb-static" and balancer_config.decay != 0.0:
            balancer_config = dataclasses.replace(balancer_config, decay=0.0)
        balancer = LoadBalancer(n, balancer_config)

    if supervisor_config is None:
        # Scale liveness detection off the recovery tunables so one
        # config describes both backends' failure handling.
        supervisor_config = SupervisorConfig(
            heartbeat_interval=max(
                0.02, config.recovery.staleness_timeout / 5.0
            ),
            heartbeat_timeout=config.recovery.staleness_timeout,
            monitor_interval=min(0.05, config.recovery.check_interval),
            worker_mode=worker_mode,
            seed=config.region.seed,
        )

    region = ProcessRegion(
        n,
        multipliers=multipliers,
        window=window,
        batch_size=config.region.batch_size,
        supervisor_config=supervisor_config,
        balancer=balancer,
        balancer_interval=config.sample_interval,
        initial_weights=initial_weights,
    )

    hub: ObservabilityHub | None = None
    if config.region.observability:
        hub = ObservabilityHub(region.clock, config.obs)
        region.attach_observability(hub)
        if balancer is not None:
            balancer.attach_audit(hub.audit, region.clock)
            hub.link_round_source(lambda: balancer.rounds)

    driver: RealFaultDriver | None = None
    if not config.fault_schedule.empty():
        driver = RealFaultDriver(region)
        config.fault_schedule.arm_real(driver)

    total = config.total_tuples
    budget = timeout if timeout is not None else config.horizon()
    wall_start = time.perf_counter()
    completed = False
    region.start()
    if driver is not None:
        driver.start()
    try:
        for _ in range(total):
            region.submit(cost_seconds)
        region.drain(timeout=budget)
        completed = True
    finally:
        if driver is not None:
            driver.stop()
        region.close()
    wall_seconds = time.perf_counter() - wall_start
    stats = region.stats()

    obs_report: ObsReport | None = None
    if hub is not None:
        hub.finalize(region.clock())
        obs_report = hub.report()
        write_exports(obs_report, config.obs)

    if balancer is not None:
        final_weights = balancer.weights
    elif initial_weights is not None:
        total_w = sum(initial_weights)
        final_weights = [
            round(w * resolution / total_w) for w in initial_weights
        ]
    else:  # pragma: no cover - unreachable given the policy gate
        final_weights = even_split(resolution, n)

    throughput = TimeSeries("throughput")
    if record_series and stats.wall_seconds > 0:
        throughput.record(
            stats.wall_seconds, stats.results / stats.wall_seconds
        )

    return RunResult(
        name=config.name,
        policy=policy,
        n_workers=n,
        execution_time=stats.wall_seconds if completed else None,
        completed=completed,
        emitted=stats.results,
        sim_time=stats.wall_seconds,
        throughput_series=throughput,
        latency_series=TimeSeries("latency"),
        weight_series=[TimeSeries(f"weight[{j}]") for j in range(n)],
        rate_series=[TimeSeries(f"blocking_rate[{j}]") for j in range(n)],
        cluster_snapshots=[],
        rerouted=0,
        total_sent=stats.tuples + stats.replayed,
        block_events=sum(
            c.lifetime_episodes for c in region.block_counters
        ),
        final_weights=final_weights,
        quarantines=stats.episodes,
        time_to_quarantine=stats.time_to_quarantine,
        time_to_reconverge=stats.time_to_reconverge,
        tuples_replayed=stats.replayed,
        tuples_lost=0,
        events_processed=0,
        wall_seconds=wall_seconds,
        worker_restarts=stats.restarts,
        obs=obs_report,
    )


def process_scenario(
    *,
    n_workers: int = 4,
    total_tuples: int = 400,
    tuple_cost_seconds: float = 0.002,
    crash_worker: int | None = 1,
    crash_at_emitted: int | None = None,
    crash_at: float = 0.3,
    batch_size: int = 1,
) -> ExperimentConfig:
    """The canonical process-backend scenario: real workers, one kill.

    By default worker ``crash_worker`` is SIGKILLed at ``crash_at``
    seconds of wall time; pass ``crash_at_emitted`` to trigger on merger
    progress instead, and ``crash_worker=None`` for a fault-free run.
    The tuple cost is given directly in seconds of service time (the
    host spec is derived so that ``tuple_cost / thread_speed`` lands on
    it exactly). ``batch_size`` selects the batched wire protocol
    (``DATA_BATCH``/``RESULT_BATCH`` runs); 1 keeps the per-tuple wire.
    """
    schedule = FaultSchedule.none()
    if crash_worker is not None:
        if crash_at_emitted is not None:
            schedule = FaultSchedule.crash_after_emitted(
                crash_worker, crash_at_emitted
            )
        else:
            schedule = FaultSchedule.crash(crash_worker, at=crash_at)
    speed = 1e6
    return ExperimentConfig(
        name="process-kill-recovery",
        n_workers=n_workers,
        tuple_cost=tuple_cost_seconds * speed,
        host_specs=[HostSpec("local", thread_speed=speed)],
        worker_host=[0] * n_workers,
        total_tuples=total_tuples,
        splitter_cost_multiplies=None,
        region=RegionParams(backend="process", batch_size=batch_size),
        fault_schedule=schedule,
    )
