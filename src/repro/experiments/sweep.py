"""Run a grid of (PE count x policy) experiments.

This is the engine behind Figures 9, 10, 11 (bottom) and 13: for every
region width, run every policy on an otherwise identical configuration,
collect execution time and final throughput, and normalize times to the
figure's baseline.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import SweepRow, normalize_to
from repro.experiments.runner import run_experiment

ConfigFactory = Callable[[int], ExperimentConfig]
"""Builds the configuration for a given PE count."""


def run_sweep(
    config_factory: ConfigFactory,
    pe_counts: Sequence[int],
    policies: Sequence[str],
    *,
    normalize_baseline: str | None = "oracle",
    record_series: bool = False,
) -> list[SweepRow]:
    """Run the full grid and return one row per (PE count, policy)."""
    rows: list[SweepRow] = []
    for n_pes in pe_counts:
        for policy in policies:
            config = config_factory(n_pes)
            result = run_experiment(
                config, policy, record_series=record_series
            )
            rows.append(SweepRow.from_result(result))
    if normalize_baseline is not None:
        normalize_to(rows, normalize_baseline)
    return rows
