"""Run a grid of (PE count x policy) experiments.

This is the engine behind Figures 9, 10, 11 (bottom) and 13: for every
region width, run every policy on an otherwise identical configuration,
collect execution time and final throughput, and normalize times to the
figure's baseline.

Sweep points are independent simulations, so the grid runs on a process
pool by default (one worker per core). Determinism is unaffected: every
point's randomness comes from seeds inside its own configuration, results
are collected back in grid order, and normalization happens after the
whole grid finishes — ``REPRO_JOBS=1`` (or ``jobs=1``) produces
byte-identical rows to the parallel run. Set ``REPRO_JOBS`` to cap the
worker count, or ``REPRO_JOBS=1`` to opt out of the pool entirely.

The pool uses the ``fork`` start method so the configuration factory (a
closure, typically) reaches the workers without pickling; platforms or
sandboxes where forking a pool fails simply fall back to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import SweepRow, normalize_to
from repro.experiments.runner import run_experiment

ConfigFactory = Callable[[int], ExperimentConfig]
"""Builds the configuration for a given PE count."""

#: Environment variable capping sweep workers (1 disables the pool).
JOBS_ENV_VAR = "REPRO_JOBS"

#: State inherited by forked pool workers: (factory, points, record_series).
#: Set immediately before the pool is created; fork snapshots it, so
#: nothing (in particular the factory closure) is ever pickled.
_FORK_STATE: tuple[ConfigFactory, list[tuple[int, str]], bool] | None = None


def _resolve_jobs(jobs: int | None) -> int:
    """Worker count: explicit ``jobs`` > ``REPRO_JOBS`` > CPU count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    return jobs


def _run_point(index: int) -> SweepRow:
    """Run one grid point in a pool worker (reads the forked state)."""
    assert _FORK_STATE is not None
    config_factory, points, record_series = _FORK_STATE
    n_pes, policy = points[index]
    result = run_experiment(
        config_factory(n_pes), policy, record_series=record_series
    )
    return SweepRow.from_result(result)


def _run_grid_parallel(
    config_factory: ConfigFactory,
    points: list[tuple[int, str]],
    record_series: bool,
    n_jobs: int,
) -> list[SweepRow] | None:
    """Run the grid on a fork-based process pool; ``None`` if unavailable."""
    global _FORK_STATE
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    _FORK_STATE = (config_factory, points, record_series)
    try:
        with ProcessPoolExecutor(
            max_workers=n_jobs, mp_context=mp_context
        ) as pool:
            # map() preserves submission order, so rows come back in the
            # exact grid order the serial path produces.
            return list(pool.map(_run_point, range(len(points))))
    except Exception:
        # Pools need working fork + semaphores; restricted environments
        # deny either. The sweep still completes — serially.
        return None
    finally:
        _FORK_STATE = None


def run_sweep(
    config_factory: ConfigFactory,
    pe_counts: Sequence[int],
    policies: Sequence[str],
    *,
    normalize_baseline: str | None = "oracle",
    record_series: bool = False,
    jobs: int | None = None,
) -> list[SweepRow]:
    """Run the full grid and return one row per (PE count, policy).

    ``jobs`` caps the process-pool width (default: ``REPRO_JOBS`` or the
    CPU count; 1 runs serially in-process).
    """
    points = [(n_pes, policy) for n_pes in pe_counts for policy in policies]
    rows: list[SweepRow] | None = None
    if points:
        n_jobs = min(_resolve_jobs(jobs), len(points))
        if n_jobs > 1:
            rows = _run_grid_parallel(
                config_factory, points, record_series, n_jobs
            )
    if rows is None:
        rows = []
        for n_pes, policy in points:
            result = run_experiment(
                config_factory(n_pes), policy, record_series=record_series
            )
            rows.append(SweepRow.from_result(result))
    if normalize_baseline is not None:
        normalize_to(rows, normalize_baseline)
    return rows
