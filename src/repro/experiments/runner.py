"""Execute one experiment configuration under one policy.

``run_experiment(config, policy)`` builds a fresh simulator + region,
arms the external-load schedule, attaches the chosen policy —

* ``"rr"``          — round-robin, no balancing (the paper's ``RR``);
* ``"reroute"``     — transport-level re-routing (the Section 4.4 baseline);
* ``"lb-static"``   — the model without exploration decay;
* ``"lb-adaptive"`` — the full model (10% decay);
* ``"oracle"``      — ``Oracle*`` capacity-proportional weights, switched
  exactly at load-change times

— then samples everything once per ``config.sample_interval`` (the paper
samples each second) and returns a :class:`RunResult` with the scalar
metrics and time series the paper's figures plot.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

from repro.core.balancer import BalancerConfig, LoadBalancer, even_split
from repro.core.blocking_rate import BlockingRateEstimator
from repro.core.policies import (
    OraclePolicy,
    ReroutingPolicy,
    RoundRobinPolicy,
    WeightedPolicy,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.oracle import (
    oracle_schedule,
    proportional_weights,
    worker_capacities,
)
from repro.faults.injector import FaultInjector
from repro.faults.recovery import RecoveryCoordinator
from repro.obs.console import ConsoleReporter
from repro.obs.export import write_exports
from repro.obs.hub import ObservabilityHub, ObsReport
from repro.overload.manager import OverloadManager
from repro.sim.engine import Simulator
from repro.streams.region import ParallelRegion
from repro.streams.sources import (
    FiniteSource,
    InfiniteSource,
    RatedSource,
    constant_cost,
)
from repro.util.perf import COUNTERS
from repro.util.timeseries import TimeSeries

POLICIES = ("rr", "reroute", "lb-static", "lb-adaptive", "oracle", "fixed")


@dataclass(slots=True)
class RunResult:
    """Everything measured in one run."""

    name: str
    policy: str
    n_workers: int
    #: Simulated time at which the finite tuple budget drained (None when
    #: the run had no budget or hit the horizon first).
    execution_time: float | None
    #: Whether a finite budget drained before the horizon.
    completed: bool
    #: Tuples emitted by the merger.
    emitted: int
    #: Simulated time when the run stopped.
    sim_time: float
    #: Region throughput per sampling interval (tuples/sec).
    throughput_series: TimeSeries
    #: Mean end-to-end region latency of tuples emitted per interval (s).
    latency_series: TimeSeries
    #: Allocation weight per connection over time (units of 1/resolution).
    weight_series: list[TimeSeries]
    #: Smoothed blocking rate per connection over time (sec blocked / sec).
    rate_series: list[TimeSeries]
    #: Clustering decisions over time: (time, clusters) snapshots.
    cluster_snapshots: list[tuple[float, list[list[int]]]]
    #: Tuples the splitter sent to a connection other than the routed one.
    rerouted: int
    #: Total tuples the splitter pushed into connections.
    total_sent: int
    #: Number of splitter blocking episodes.
    block_events: int
    #: Final allocation weights.
    final_weights: list[int] = field(default_factory=list)
    #: Failover episodes the recovery layer opened (0 without faults).
    quarantines: int = 0
    #: Fault-to-failover latency of the first episode (None without one).
    time_to_quarantine: float | None = None
    #: Failover-to-stable-weights latency of the first settled episode.
    time_to_reconverge: float | None = None
    #: Unacknowledged tuples resent to survivors at failovers.
    tuples_replayed: int = 0
    #: Sequence numbers skipped over instead of replayed (skip gap policy).
    tuples_lost: int = 0
    #: Simulator events fired during the run (performance diagnostic).
    events_processed: int = 0
    #: Wall-clock seconds the run took (performance diagnostic; excluded
    #: from any result digest — it varies run to run).
    wall_seconds: float = 0.0
    #: Open-loop arrivals offered to the region (0 without arrival_rate).
    tuples_offered: int = 0
    #: Arrivals shed by admission control before sequence assignment.
    tuples_shed: int = 0
    #: Peak source backlog — the input-queue memory bound.
    max_input_queue: int = 0
    #: Peak merger reordering-buffer occupancy.
    max_merger_pending: int = 0
    #: Flow-control pause episodes (merger -> splitter backpressure).
    flow_pauses: int = 0
    #: Simulated seconds the splitter spent paused by flow control.
    flow_paused_seconds: float = 0.0
    #: Overload-detector trips (healthy -> overloaded transitions).
    overload_trips: int = 0
    #: Simulated seconds the detector declared the region overloaded.
    overload_seconds: float = 0.0
    #: Control rounds the balancer's safe mode held the last-good weights.
    safe_mode_rounds: int = 0
    #: Times the balancer's safe mode tripped on oscillating adoptions.
    oscillation_trips: int = 0
    #: Source backlog over time (None unless the run tracked overload).
    queue_series: TimeSeries | None = None
    #: Merger pending occupancy over time (None unless tracked).
    pending_series: TimeSeries | None = None
    #: p99 end-to-end latency of tuples emitted per interval (None unless
    #: overload protection enabled the per-emit latency samples).
    p99_latency_series: TimeSeries | None = None
    #: Splitter dispatch cycles (0 unless the batched fast path ran).
    batches_dispatched: int = 0
    #: Mean realized tuples per dispatch batch (0.0 unless batched).
    batch_occupancy: float = 0.0
    #: Per-tuple events the batched dataplane avoided scheduling.
    events_coalesced: int = 0
    #: Supervised worker-process restarts (0 on the simulator backend,
    #: where crashed channels are revived by the recovery coordinator
    #: rather than respawned by a supervisor).
    worker_restarts: int = 0
    #: Frozen observability report (None unless the run was observed
    #: via ``RegionParams(observability=True)``).
    obs: ObsReport | None = None

    def shed_ratio(self) -> float:
        """Fraction of offered tuples shed before sequence assignment."""
        if self.tuples_offered == 0:
            return 0.0
        return self.tuples_shed / self.tuples_offered

    def events_per_second(self) -> float:
        """Fired simulator events per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    def final_throughput(self, fraction: float = 0.1) -> float:
        """Mean throughput over the trailing ``fraction`` of the run.

        The paper's "final throughput ... indicative of the performance
        the configuration would achieve if it ran longer".
        """
        if not self.throughput_series:
            return 0.0
        return self.throughput_series.final_mean(fraction)

    def reroute_fraction(self) -> float:
        """Fraction of tuples re-routed (Section 4.4's headline numbers)."""
        return self.rerouted / self.total_sent if self.total_sent else 0.0

    def final_latency(self, fraction: float = 0.1) -> float:
        """Mean region latency over the trailing ``fraction`` of the run."""
        if not self.latency_series:
            return 0.0
        return self.latency_series.final_mean(fraction)

    def mean_weight(self, connection: int, start: float, end: float) -> float:
        """Average allocation weight of ``connection`` over a time window."""
        window = self.weight_series[connection].window(start, end)
        return window.mean()

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"run {self.name!r} policy={self.policy} workers={self.n_workers}",
            f"  emitted={self.emitted} tuples in {self.sim_time:.1f}s "
            f"(completed={self.completed})",
        ]
        if self.execution_time is not None:
            lines.append(f"  execution_time={self.execution_time:.2f}s")
        lines.append(
            f"  final_throughput={self.final_throughput():.1f} tuples/s, "
            f"block_events={self.block_events}, "
            f"rerouted={self.reroute_fraction():.2%}"
        )
        if self.final_weights:
            lines.append(f"  final_weights={self.final_weights}")
        if self.quarantines:
            ttq = (
                f"{self.time_to_quarantine:.2f}s"
                if self.time_to_quarantine is not None
                else "n/a"
            )
            ttr = (
                f"{self.time_to_reconverge:.2f}s"
                if self.time_to_reconverge is not None
                else "n/a"
            )
            lines.append(
                f"  quarantines={self.quarantines} "
                f"(detect={ttq}, reconverge={ttr}), "
                f"replayed={self.tuples_replayed}, lost={self.tuples_lost}"
            )
        if self.worker_restarts:
            lines.append(
                f"  worker_restarts={self.worker_restarts}"
            )
        if self.tuples_offered:
            lines.append(
                f"  offered={self.tuples_offered}, "
                f"shed={self.tuples_shed} ({self.shed_ratio():.1%}), "
                f"max_queue={self.max_input_queue}, "
                f"max_pending={self.max_merger_pending}, "
                f"flow_pauses={self.flow_pauses}, "
                f"overloaded={self.overload_seconds:.1f}s"
            )
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize every field to JSON (see ``repro.analysis.export``)."""
        from repro.analysis.export import result_to_json

        return result_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a run from :meth:`to_json` output."""
        from repro.analysis.export import result_from_json

        return result_from_json(text)


def run_experiment(
    config: ExperimentConfig,
    policy: str,
    *,
    record_series: bool = True,
    counter_reset_interval: float | None = None,
    fixed_weights: list[int] | None = None,
) -> RunResult:
    """Run ``config`` under ``policy`` and return the measurements.

    ``policy="fixed"`` applies ``fixed_weights`` for the whole run with no
    controller — the Figure 5 static-split experiments.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    if (policy == "fixed") != (fixed_weights is not None):
        raise ValueError("fixed_weights is required iff policy='fixed'")

    if config.region.backend == "process":
        # Real worker processes over real sockets (repro.proc). Imported
        # lazily so simulator runs never touch the process machinery.
        from repro.experiments.process_backend import run_process_experiment

        return run_process_experiment(
            config,
            policy,
            record_series=record_series,
            fixed_weights=fixed_weights,
        )

    sim = Simulator()
    placement = config.build_placement()
    cost_model = constant_cost(config.tuple_cost)
    rated_source: RatedSource | None = None
    if config.arrival_rate is not None:
        rated_source = RatedSource(
            config.arrival_rate, cost_model, total=config.total_tuples
        )
        source = rated_source
    elif config.total_tuples is not None:
        source = FiniteSource(config.total_tuples, cost_model)
    else:
        source = InfiniteSource(cost_model)

    n = config.n_workers
    resolution = config.balancer.resolution
    balancer: LoadBalancer | None = None
    oracle: OraclePolicy | None = None

    if policy == "rr":
        routing = RoundRobinPolicy(n)
    elif policy == "fixed":
        assert fixed_weights is not None
        routing = WeightedPolicy(fixed_weights)
    elif policy == "reroute":
        routing = ReroutingPolicy(n)
    elif policy == "oracle":
        oracle = OraclePolicy(oracle_schedule(config, resolution))
        routing = oracle
    else:
        balancer_config = config.balancer
        if policy == "lb-static" and balancer_config.decay != 0.0:
            balancer_config = dataclasses.replace(balancer_config, decay=0.0)
        balancer = LoadBalancer(n, balancer_config)
        routing = WeightedPolicy(balancer.weights)

    region = ParallelRegion(
        sim,
        source,
        routing,
        placement,
        params=config.region,
        load_multipliers=config.load_schedule.initial_multipliers(n),
        ordered=config.ordered,
    )
    config.load_schedule.arm(sim, region.workers)

    # Fault injection + recovery: only built when faults are scheduled, so
    # fault-free runs execute exactly the seed's code path (golden traces).
    injector: FaultInjector | None = None
    recovery: RecoveryCoordinator | None = None
    if not config.fault_schedule.empty():
        injector = FaultInjector(sim, region)
        recovery = RecoveryCoordinator(
            sim,
            region,
            balancer=balancer,
            routing=routing if balancer is not None else None,
            injector=injector,
            config=config.recovery,
        )
        recovery.start()
        config.fault_schedule.arm(sim, injector)

    # Overload management: only built when protection is on, so plain
    # runs execute exactly the seed's code path (golden traces). The
    # rated source itself is armed either way — an open-loop arrival
    # process is a workload choice, not a protection feature.
    overload_mgr: OverloadManager | None = None
    if config.region.overload_protection:
        overload_mgr = OverloadManager(
            sim, region, source=rated_source, config=config.overload
        )
        overload_mgr.start()
        region.merger.latency_samples = []
    if rated_source is not None:
        rated_source.arm(
            sim, on_available=region.splitter.notify_available
        )

    # Observability: only built when the region opted in, so default
    # runs install no recorder anywhere (golden traces byte-identical).
    hub: ObservabilityHub | None = None
    if config.region.observability:
        hub = ObservabilityHub(lambda: sim.now, config.obs)
        sim.attach_observability(hub)
        region.attach_observability(hub)
        # Legacy process-global model counters, routed through the
        # registry (they tally every balancer in the process; per-round
        # deltas live on the audit records).
        hub.registry.gauge_fn(
            "model_solver_calls_total",
            lambda: COUNTERS.solver_calls,
            help="Minimax RAP solver invocations (process-global)",
        )
        hub.registry.gauge_fn(
            "model_fits_total",
            lambda: COUNTERS.fits,
            help="Monotone-regression fits (process-global)",
        )
        hub.registry.gauge_fn(
            "model_table_builds_total",
            lambda: COUNTERS.table_builds,
            help="Full rate-function table materializations "
            "(process-global)",
        )
        if balancer is not None:
            balancer.attach_audit(hub.audit, lambda: sim.now)
            hub.link_round_source(lambda: balancer.rounds)
        if injector is not None:
            injector.attach_observability(hub)
        if recovery is not None:
            recovery.attach_observability(hub)
        if overload_mgr is not None:
            overload_mgr.attach_observability(hub)
        if config.obs.console_interval > 0:
            reporter = ConsoleReporter(hub)
            sim.call_every(config.obs.console_interval, reporter.tick)

    if oracle is not None:
        for when, weights in oracle.changes_after(0.0):
            sim.call_at(
                when, lambda ws=weights: oracle.set_weights(ws)
            )

    # Progress-triggered load changes (the "an eighth through the
    # experiment" removals of the dynamic sweeps). Oracle* recomputes its
    # capacity-proportional weights at the same trigger — exactly the
    # paper's "it will change the allocation weights earlier than is
    # optimal" behaviour, since queued backlog still reflects the old load.
    progress_hooks: list = []
    count_events = sorted(
        config.load_schedule.count_events, key=lambda e: e.emitted
    )
    if count_events:
        multipliers = config.load_schedule.initial_multipliers(n)
        pending = list(count_events)

        def on_progress(_tup) -> None:
            fired = False
            while pending and region.merger.emitted >= pending[0].emitted:
                event = pending.pop(0)
                multipliers[event.worker] = event.multiplier
                region.workers[event.worker].set_load_multiplier(
                    event.multiplier
                )
                fired = True
            if fired and oracle is not None:
                capacities = worker_capacities(
                    config, 0.0, multipliers=multipliers
                )
                oracle.set_weights(
                    proportional_weights(capacities, resolution)
                )

        progress_hooks.append(on_progress)

    # Progress-triggered crashes (the fault analogue of the count-based
    # load removals: "crash worker 2 an eighth of the way through").
    if injector is not None and config.fault_schedule.count_crashes:
        pending_crashes = sorted(
            config.fault_schedule.count_crashes, key=lambda e: e.emitted
        )

        def on_fault_progress(_tup) -> None:
            while (
                pending_crashes
                and region.merger.emitted >= pending_crashes[0].emitted
            ):
                event = pending_crashes.pop(0)
                injector.crash(event.worker, restart_after=event.restart_after)

        progress_hooks.append(on_fault_progress)

    if len(progress_hooks) == 1:
        region.merger.on_emit = progress_hooks[0]
    elif progress_hooks:
        def dispatch_progress(tup) -> None:
            for hook in progress_hooks:
                hook(tup)

        region.merger.on_emit = dispatch_progress

    # Recording infrastructure. Every policy gets a blocking-rate view so
    # in-depth figures can be drawn for baselines too; LB policies reuse
    # the balancer's own (identically configured) estimator.
    observer = (
        None
        if balancer is not None
        else BlockingRateEstimator(n, alpha=config.balancer.rate_alpha)
    )
    throughput_series = TimeSeries("throughput")
    latency_series = TimeSeries("latency")
    weight_series = [TimeSeries(f"weight[{j}]") for j in range(n)]
    rate_series = [TimeSeries(f"blocking_rate[{j}]") for j in range(n)]
    cluster_snapshots: list[tuple[float, list[list[int]]]] = []
    track_overload = rated_source is not None or overload_mgr is not None
    queue_series = TimeSeries("input_queue") if track_overload else None
    pending_series = TimeSeries("merger_pending") if track_overload else None
    p99_series = TimeSeries("p99_latency") if track_overload else None
    last_emitted = 0
    last_latency_sum = 0.0
    last_latency_count = 0

    def current_weights() -> list[int]:
        if balancer is not None:
            return balancer.weights
        if isinstance(routing, WeightedPolicy):
            return routing.weights
        return even_split(resolution, n)

    def sample() -> None:
        nonlocal last_emitted, last_latency_sum, last_latency_count
        now = sim.now
        emitted = region.merger.emitted
        throughput_series.record(
            now, (emitted - last_emitted) / config.sample_interval
        )
        last_emitted = emitted
        latency_delta = region.merger.latency_seconds - last_latency_sum
        count_delta = region.merger.latency_count - last_latency_count
        if count_delta > 0:
            latency_series.record(now, latency_delta / count_delta)
        last_latency_sum = region.merger.latency_seconds
        last_latency_count = region.merger.latency_count

        counters = [c.read() for c in region.blocking_counters]
        if balancer is not None:
            new_weights = balancer.update(now, counters)
            if new_weights is not None:
                routing.set_weights(new_weights)
            rates = balancer.last_rates
            if config.balancer.clustering:
                cluster_snapshots.append((now, balancer.last_clusters))
        else:
            assert observer is not None
            observer.sample(now, counters)
            rates = observer.rates

        if record_series:
            weights = current_weights()
            for j in range(n):
                weight_series[j].record(now, weights[j])
                rate_series[j].record(now, rates[j])

        if track_overload:
            # Drain per-emit latency samples every interval regardless of
            # record_series — the list must stay bounded over long runs.
            samples = region.merger.latency_samples
            p99: float | None = None
            if samples:
                samples.sort()
                p99 = samples[int(0.99 * (len(samples) - 1))]
                samples.clear()
            if record_series:
                backlog = (
                    rated_source.backlog() if rated_source is not None else 0
                )
                queue_series.record(now, backlog)
                pending_series.record(now, region.merger.pending_count)
                if p99 is not None:
                    p99_series.record(now, p99)

    sim.call_every(config.sample_interval, sample)

    if counter_reset_interval is not None:
        def reset_counters() -> None:
            for counter in region.blocking_counters:
                counter.reset()

        sim.call_every(counter_reset_interval, reset_counters)

    completed = False

    if config.total_tuples is not None:
        def on_done() -> None:
            nonlocal completed
            completed = True
            sim.stop()

        region.merger.on_completion(config.total_tuples, on_done)

    region.start()
    wall_start = time.perf_counter()
    sim.run_until(config.horizon())
    wall_seconds = time.perf_counter() - wall_start

    obs_report: ObsReport | None = None
    if hub is not None:
        hub.finalize(sim.now)
        obs_report = hub.report()
        write_exports(obs_report, config.obs)

    execution_time = (
        region.merger.last_emit_time if completed else None
    )
    return RunResult(
        name=config.name,
        policy=policy,
        n_workers=n,
        execution_time=execution_time,
        completed=completed,
        emitted=region.merger.emitted,
        sim_time=sim.now,
        throughput_series=throughput_series,
        latency_series=latency_series,
        weight_series=weight_series,
        rate_series=rate_series,
        cluster_snapshots=cluster_snapshots,
        rerouted=region.splitter.rerouted,
        total_sent=region.splitter.tuples_sent,
        block_events=region.splitter.block_events,
        final_weights=current_weights(),
        quarantines=recovery.quarantines if recovery is not None else 0,
        time_to_quarantine=(
            recovery.first_time_to_quarantine() if recovery is not None else None
        ),
        time_to_reconverge=(
            recovery.first_time_to_reconverge() if recovery is not None else None
        ),
        tuples_replayed=region.splitter.tuples_replayed,
        tuples_lost=region.merger.tuples_lost,
        events_processed=sim.events_processed,
        wall_seconds=wall_seconds,
        batches_dispatched=region.splitter.dispatch_stats.batches,
        batch_occupancy=region.splitter.dispatch_stats.mean_occupancy,
        events_coalesced=sim.events_coalesced,
        tuples_offered=(
            rated_source.arrivals if rated_source is not None else 0
        ),
        tuples_shed=(
            rated_source.tuples_shed if rated_source is not None else 0
        ),
        max_input_queue=(
            rated_source.max_backlog if rated_source is not None else 0
        ),
        max_merger_pending=region.merger.max_pending,
        flow_pauses=(
            overload_mgr.gate.pauses if overload_mgr is not None else 0
        ),
        flow_paused_seconds=region.splitter.flow_paused_seconds,
        overload_trips=(
            overload_mgr.detector.trips if overload_mgr is not None else 0
        ),
        overload_seconds=(
            overload_mgr.detector.overloaded_seconds
            if overload_mgr is not None
            else 0.0
        ),
        safe_mode_rounds=balancer.safe_rounds if balancer is not None else 0,
        oscillation_trips=(
            balancer.oscillation_trips if balancer is not None else 0
        ),
        queue_series=queue_series,
        pending_series=pending_series,
        p99_latency_series=p99_series,
        obs=obs_report,
    )
