"""Cluster-wide worker placement (the paper's Section 8 future work).

The paper closes with: "Our future work will consider cluster-wide load
balancing by assigning the parallel PE workers to many nodes." The local
balancer can only divide traffic among the workers it is given; *where*
those workers run bounds what it can achieve — Figure 11's punchline is
that 16 fast + 8 slow beats both all-fast and half-half.

This module provides that assignment step: a greedy marginal-capacity
placement that is provably optimal for the concave host capacity model
(each additional PE on a host contributes a non-increasing marginal
capacity: full threads, then SMT threads, then nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import HostSpec
from repro.util.validation import check_positive


@dataclass(slots=True, frozen=True)
class PlacementPlan:
    """Result of a cluster-wide placement decision."""

    #: Index into the host-spec list, per worker.
    worker_host: list[int]
    #: Number of workers placed on each host.
    per_host: list[int]
    #: Aggregate processing capacity in multiplies/sec.
    total_capacity: float

    def __len__(self) -> int:
        return len(self.worker_host)


def marginal_capacity(spec: HostSpec, placed: int) -> float:
    """Capacity gained by placing one more PE on a host of type ``spec``."""
    host = spec.build()
    return host.total_capacity(placed + 1) - host.total_capacity(placed)


def plan_placement(host_specs: list[HostSpec], n_workers: int) -> PlacementPlan:
    """Assign ``n_workers`` PEs across hosts, maximizing total capacity.

    Greedy by marginal capacity: each PE goes to the host where it adds
    the most. Because every host's capacity is concave in its PE count
    (full threads -> discounted SMT threads -> zero under
    oversubscription), the greedy assignment maximizes total capacity;
    ties break toward the lower host index, making plans deterministic.

    Capacity-optimal placement is the right objective *given* the paper's
    dynamic load balancer, which can exploit unequal per-PE speeds; under
    plain round-robin a slow co-placed PE gates the whole region instead
    (Figure 11's Even-RR row).
    """
    if not host_specs:
        raise ValueError("host_specs must be non-empty")
    check_positive("n_workers", n_workers)
    per_host = [0] * len(host_specs)
    worker_host: list[int] = []
    for _ in range(n_workers):
        best = max(
            range(len(host_specs)),
            key=lambda h: (marginal_capacity(host_specs[h], per_host[h]), -h),
        )
        per_host[best] += 1
        worker_host.append(best)
    total = sum(
        spec.build().total_capacity(count)
        for spec, count in zip(host_specs, per_host)
    )
    return PlacementPlan(
        worker_host=worker_host, per_host=per_host, total_capacity=total
    )


def capacity_of(host_specs: list[HostSpec], per_host: list[int]) -> float:
    """Aggregate capacity of an explicit per-host assignment."""
    if len(per_host) != len(host_specs):
        raise ValueError("per_host must match host_specs")
    return sum(
        spec.build().total_capacity(count)
        for spec, count in zip(host_specs, per_host)
    )
