"""Experiment harness: configs, the runner, Oracle* weights, and sweeps.

Everything here exists to regenerate the paper's evaluation (Section 6):
:mod:`repro.experiments.figures` holds one builder per paper figure;
:mod:`repro.experiments.runner` executes a configuration under a chosen
policy (``rr`` / ``reroute`` / ``lb-static`` / ``lb-adaptive`` /
``oracle``) and returns the time series and scalar metrics the paper
plots; :mod:`repro.experiments.sweep` runs the vary-the-PEs grids.
"""

from repro.experiments import figures
from repro.experiments.config import (
    ExperimentConfig,
    HostSpec,
    fault_recovery_scenario,
    overload_scenario,
)
from repro.experiments.oracle import oracle_schedule, proportional_weights
from repro.experiments.placement_opt import PlacementPlan, plan_placement
from repro.experiments.results import SweepRow, format_sweep_table, normalize_to
from repro.experiments.runner import POLICIES, RunResult, run_experiment
from repro.experiments.sweep import run_sweep

__all__ = [
    "figures",
    "ExperimentConfig",
    "HostSpec",
    "fault_recovery_scenario",
    "overload_scenario",
    "oracle_schedule",
    "proportional_weights",
    "PlacementPlan",
    "plan_placement",
    "SweepRow",
    "format_sweep_table",
    "normalize_to",
    "POLICIES",
    "RunResult",
    "run_experiment",
    "run_sweep",
]
