"""Per-figure experiment definitions (the paper's Section 6).

Every figure with data has a builder here returning ready-to-run
:class:`~repro.experiments.config.ExperimentConfig` objects. The benches
under ``benchmarks/`` call these builders and assert the paper's shapes.

Scaling discipline (see DESIGN.md and EXPERIMENTS.md):

* **Simulated time is free but events are not.** Host speeds are chosen per
  figure so that each bench regenerates in seconds of CPU while preserving
  every ratio the paper reports.
* **Separation of time scales.** The sampling interval must dwarf even the
  most expensive single service time (in the paper: 1 s vs ~2 ms; a ratio
  of hundreds). Each builder keeps ``interval >= ~10-20x`` the heaviest
  service time, stretching the experiment's time axis where needed.
* **Splitter rate calibration.** The region's per-tuple overhead rate
  ``sigma`` (send cost on the splitter host) is calibrated to the paper's
  observed knees: Figure 9 stops scaling at 8 PEs for 1 000-multiply tuples
  (``sigma ~= 8x`` one PE's rate, i.e. ~125 multiplies per send); in-depth
  figures use the moderately saturated regime in which blocking rates are
  informative (Figures 5 and 7 show knees, so the paper's ``sigma`` there
  is comparable to region capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import BalancerConfig
from repro.experiments.config import ExperimentConfig, HostSpec
from repro.streams.region import RegionParams
from repro.workloads.external_load import LoadSchedule

#: Baseline "slow host" thread speed for cheap in-depth runs.
SLOW_SPEED = 2e5


# --------------------------------------------------------------------- Fig 5


def fig05_fixed_split_config(split: tuple[int, int]) -> ExperimentConfig:
    """Figure 5: two homogeneous PEs at a fixed allocation split.

    The paper statically divides the load 80/20, 70/30, 60/40, 50/50 and
    plots each split's connection-1 blocking rate over time: flat within a
    run, monotone across splits, with a draft-leader swap at 50/50. The
    splitter rate is comparable to the two PEs' capacity so the rates stay
    informative (Figure 7's knees near 0.5 imply exactly that regime).
    """
    if len(split) != 2 or sum(split) != 1000:
        raise ValueError(f"split must be two weights summing to 1000: {split}")
    return ExperimentConfig(
        name=f"fig05-{split[0]}-{split[1]}",
        n_workers=2,
        tuple_cost=10_000,
        host_specs=[HostSpec("slow", thread_speed=SLOW_SPEED)],
        worker_host=[0, 0],
        duration=120.0,
        # sigma ~= 1.25x the two PEs' aggregate rate of 40 tuples/s.
        splitter_cost_multiplies=4_000,
    )


# --------------------------------------------------------------------- Fig 8


def fig08_top_config(*, duration: float = 400.0) -> ExperimentConfig:
    """Figure 8 (top): 3 PEs, 1 000-multiply tuples, one PE 100x loaded.

    The load is removed an eighth through the run. Expected behaviour:
    the loaded connection's weight collapses to ~0-3%, re-exploration
    spikes follow, and after the removal it climbs back toward an even
    split.
    """
    speed = 2e6  # heavy service 0.05 s << 1 s sampling interval
    return ExperimentConfig(
        name="fig08-top",
        n_workers=3,
        tuple_cost=1_000,
        host_specs=[HostSpec("slow", thread_speed=speed)],
        worker_host=[0, 0, 0],
        load_schedule=LoadSchedule.removed_at([0], 100.0, duration / 8.0),
        duration=duration,
        # sigma ~= 6_667 tuples/s vs 2 unloaded PEs at 4_000/s: moderately
        # saturated, and the loaded PE's sustainable share is ~3 per mille,
        # matching the weights the paper reports it settling at.
        splitter_cost_multiplies=300,
    )


def fig08_bottom_config(*, duration: float = 400.0) -> ExperimentConfig:
    """Figure 8 (bottom): 3 equal PEs, 10 000-multiply tuples, no load.

    Drafting dominates early (one connection absorbs all blocking); the
    model must still converge to an even split.
    """
    return ExperimentConfig(
        name="fig08-bottom",
        n_workers=3,
        tuple_cost=10_000,
        host_specs=[HostSpec("slow", thread_speed=SLOW_SPEED)],
        worker_host=[0, 0, 0],
        duration=duration,
        # sigma ~= 80/s vs 60/s capacity: high blocking is unavoidable,
        # exactly the regime the paper designed this experiment around.
        splitter_cost_multiplies=2_500,
    )


# --------------------------------------------------------------------- Fig 9


def fig09_config(
    n_workers: int,
    *,
    dynamic: bool,
    total_tuples: int = 60_000,
) -> ExperimentConfig:
    """Figure 9: 2-16 PEs, 1 000-multiply tuples, half the PEs 10x loaded.

    ``dynamic=False`` keeps the load for the whole run (left graph);
    ``dynamic=True`` removes it an eighth through (middle/right graphs).
    """
    if dynamic:
        schedule = LoadSchedule.half_loaded_until_emitted(
            n_workers, 10.0, max(1, total_tuples // 8)
        )
    else:
        schedule = LoadSchedule.half_loaded(n_workers, 10.0)
    # One PE per core: the paper spreads workers across enough 8-core
    # hosts ("when we use 16 PEs, we are using two machines"); identical
    # hosts at one PE per core are equivalent to one wide host.
    return ExperimentConfig(
        name=f"fig09-{'dyn' if dynamic else 'static'}-{n_workers}",
        n_workers=n_workers,
        tuple_cost=1_000,
        host_specs=[HostSpec("slow", cores=max(8, n_workers), thread_speed=SLOW_SPEED)],
        worker_host=[0] * n_workers,
        load_schedule=schedule,
        total_tuples=total_tuples,
        # The paper: scaling stops at 8 PEs for 1 000-multiply tuples, so
        # sigma = 8x one PE's rate -> 1000/8 = 125 multiplies per send.
        splitter_cost_multiplies=125,
    )


# -------------------------------------------------------------------- Fig 10


def fig10_config(
    n_workers: int,
    *,
    dynamic: bool,
    total_tuples: int = 400_000,
) -> ExperimentConfig:
    """Figure 10: 2-16 PEs, 10 000-multiply tuples, half the PEs 100x loaded.

    The 100x multiplier makes separation of time scales critical: the host
    speed is raised so a loaded service (0.1 s) still fits well inside the
    1 s sampling interval.
    """
    speed = 1e7  # heavy service 0.1 s << 1 s interval
    if dynamic:
        schedule = LoadSchedule.half_loaded_until_emitted(
            n_workers, 100.0, max(1, total_tuples // 8)
        )
    else:
        schedule = LoadSchedule.half_loaded(n_workers, 100.0)
    return ExperimentConfig(
        name=f"fig10-{'dyn' if dynamic else 'static'}-{n_workers}",
        n_workers=n_workers,
        tuple_cost=10_000,
        host_specs=[HostSpec("slow", cores=max(8, n_workers), thread_speed=speed)],
        worker_host=[0] * n_workers,
        load_schedule=schedule,
        total_tuples=total_tuples,
        # sigma = 20x one PE's rate: scaling continues through 16 PEs, as
        # the paper's Figure 10 shows.
        splitter_cost_multiplies=500,
    )


# -------------------------------------------------------------------- Fig 11


def hetero_hosts(slow_speed: float = SLOW_SPEED) -> tuple[HostSpec, HostSpec]:
    """The paper's slow (X5365-like) and fast (X5687-like) host pair."""
    return HostSpec.slow(slow_speed), HostSpec.fast(slow_speed)


def fig11_top_config(*, duration: float = 300.0) -> ExperimentConfig:
    """Figure 11 (top): 2 PEs, 20 000-multiply tuples, fast + slow host.

    Connection 1 goes to the fast host. The paper observes the split
    stabilizing around 65/35 after brief oscillations.
    """
    slow, fast = hetero_hosts()
    return ExperimentConfig(
        name="fig11-top",
        n_workers=2,
        tuple_cost=20_000,
        host_specs=[slow, fast],
        worker_host=[1, 0],  # connection 1 -> fast, connection 2 -> slow
        duration=duration,
        # sigma comparable to the pair's aggregate capacity (~28.6/s).
        splitter_cost_multiplies=7_000,
        splitter_thread_speed=SLOW_SPEED,
    )


def fig11_bottom_config(
    n_workers: int,
    placement: str,
    *,
    total_tuples: int = 90_000,
) -> ExperimentConfig:
    """Figure 11 (bottom): 2-24 PEs across heterogeneous hosts.

    ``placement`` is one of ``all-fast``, ``all-slow``, ``even``. "Even"
    alternates PEs between the hosts until the slow host's 8 cores are
    full, then the rest go to the fast host — at 24 PEs that is the
    paper's 16-fast + 8-slow configuration.
    """
    slow, fast = hetero_hosts()
    if placement == "all-fast":
        worker_host = [1] * n_workers
        specs = [slow, fast]
    elif placement == "all-slow":
        worker_host = [0] * n_workers
        specs = [slow, fast]
    elif placement == "even":
        specs = [slow, fast]
        worker_host = []
        slow_used = 0
        for i in range(n_workers):
            if i % 2 == 0 and slow_used < 8:
                worker_host.append(0)
                slow_used += 1
            else:
                worker_host.append(1)
    else:
        raise ValueError(f"unknown placement {placement!r}")
    return ExperimentConfig(
        name=f"fig11-bottom-{placement}-{n_workers}",
        n_workers=n_workers,
        tuple_cost=20_000,
        host_specs=specs,
        worker_host=worker_host,
        total_tuples=total_tuples,
        # sigma = 500/s: above the best configuration (16 fast + 8 slow
        # threads ~= 377/s) so host capacity gates, yet close enough that
        # blocking rates stay informative for the balancer.
        splitter_cost_multiplies=400,
        splitter_thread_speed=SLOW_SPEED,
        # Two capacity classes only 1.86x apart: clustering needs a finer
        # threshold than the load-class experiments (log 1.86 ~= 0.62).
        balancer=BalancerConfig(clustering=True, cluster_threshold=0.35),
    )


# --------------------------------------------------------------- Figs 12, 13


def _clustering_balancer() -> BalancerConfig:
    return BalancerConfig(clustering=True, cluster_threshold=1.0)


def fig12_config(*, duration: float = 900.0) -> ExperimentConfig:
    """Figure 12: 64 PEs, 60 000-multiply tuples, three load classes.

    20 PEs at 100x, 20 at 5x, 24 unloaded; clustering on. The expected
    dynamics: the 100x channels sort themselves out first, the 5x and
    unloaded channels differentiate later, and the final clusters are pure
    per class with weights ranked 100x < 5x < unloaded.

    The time axis is stretched (5 s sampling) so the 100x service time
    (0.3 s) stays well inside the interval; see the module docstring.
    """
    n = 64
    speed = 2e7
    loads = {j: 100.0 for j in range(20)} | {j: 5.0 for j in range(20, 40)}
    return ExperimentConfig(
        name="fig12",
        n_workers=n,
        tuple_cost=60_000,
        host_specs=[HostSpec("big", cores=n, thread_speed=speed)],
        worker_host=[0] * n,
        load_schedule=LoadSchedule(initial=loads),
        duration=duration,
        sample_interval=5.0,
        region=RegionParams(send_capacity=8, recv_capacity=8),
        # sigma = 3_333/s: just above the point where the 5x class starts
        # blocking at its fair share (so the 5x/1x classes stay
        # distinguishable) and exactly at the trickle-safety boundary
        # (resolution x the 100x PEs' 3.33/s rate; see DESIGN.md).
        splitter_cost_multiplies=6_000,
        balancer=_clustering_balancer(),
    )


def fig13_config(
    n_workers: int,
    *,
    total_tuples: int = 1_200_000,
) -> ExperimentConfig:
    """Figure 13: 8-64 PEs, 60 000-multiply tuples, half 100x loaded.

    The load is removed an eighth through; clustering on. The paper's
    headline: at 32-64 PEs both LB variants beat RR by ~9x in execution
    time, and LB-adaptive reaches higher final throughput than LB-static.
    """
    speed = 2e7
    return ExperimentConfig(
        name=f"fig13-{n_workers}",
        n_workers=n_workers,
        tuple_cost=60_000,
        host_specs=[HostSpec("big", cores=max(8, n_workers), thread_speed=speed)],
        worker_host=[0] * n_workers,
        load_schedule=LoadSchedule.half_loaded_until_emitted(
            n_workers, 100.0, max(1, total_tuples // 8)
        ),
        total_tuples=total_tuples,
        sample_interval=5.0,
        region=RegionParams(send_capacity=8, recv_capacity=8),
        # sigma ~= 13.3k/s: the asymptotic LB-vs-RR execution-time ratio
        # for half-100x-loaded PEs tends to (1/(8 r) + 7/(8 sigma)) /
        # (1/(8 lambda_loaded) + 7/(8 sigma)) ~= 9, matching the paper's
        # Figure 13; finite runs sit below that because the controller's
        # convergence time is a larger share of a scaled-down run (see
        # EXPERIMENTS.md).
        splitter_cost_multiplies=1_500,
        balancer=_clustering_balancer(),
    )


# ----------------------------------------------------------- Section 4.4


def sec44_config(
    base_cost: float,
    *,
    total_tuples: int = 40_000,
) -> ExperimentConfig:
    """The Section 4.4 in-text experiment: transport-level re-routing.

    2 PEs, one 100x more expensive. The paper reports that re-routing
    moves ~0.5% of tuples at base cost 1 000 (no improvement over RR) and
    ~7.5% at base cost 10 000 (~20% improvement) — "too little, too late".

    The driver of both numbers is how much of the run the OS buffers
    absorb before blocking (the late signal) ever appears: by the time the
    overloaded connection reports would-block, it already holds "two
    system buffers worth" of 100x tuples, which the ordered merge must
    still wait for. The paper never states its buffer sizes or totals, so
    the buffer-to-run ratio is calibrated to land at the reported reroute
    fractions; the claims under test are the qualitative ones (see
    EXPERIMENTS.md).
    """
    speed = 1e7  # heavy service: 0.01 s / 0.1 s, both << 1 s interval
    if base_cost <= 1_000:
        buffer_tuples = int(total_tuples * 0.245)  # ~0.5% rerouted
    else:
        buffer_tuples = int(total_tuples * 0.21)  # ~7.5% rerouted
    return ExperimentConfig(
        name=f"sec44-{int(base_cost)}",
        n_workers=2,
        tuple_cost=base_cost,
        host_specs=[HostSpec("slow", thread_speed=speed)],
        worker_host=[0, 0],
        load_schedule=LoadSchedule.static_load([0], 100.0),
        total_tuples=total_tuples,
        region=RegionParams(
            send_capacity=buffer_tuples, recv_capacity=buffer_tuples
        ),
        splitter_cost_multiplies=125,
    )


@dataclass(slots=True, frozen=True)
class FigureIndex:
    """One row of the experiment index (see DESIGN.md section 4)."""

    figure: str
    description: str
    bench: str


FIGURES: list[FigureIndex] = [
    FigureIndex("Fig. 2", "cumulative blocking time and rate", "bench_fig02_blocking_rate"),
    FigureIndex("Fig. 5", "blocking rates at fixed splits", "bench_fig05_fixed_weights"),
    FigureIndex("Fig. 7", "sample predictive functions", "bench_fig07_rate_functions"),
    FigureIndex("Fig. 8 top", "3 PEs, one 100x loaded, in-depth", "bench_fig08_top_indepth_load"),
    FigureIndex("Fig. 8 bottom", "3 equal PEs, drafting, in-depth", "bench_fig08_bottom_indepth_equal"),
    FigureIndex("Fig. 9", "2-16 PEs, 10x load sweep", "bench_fig09_sweep_medium"),
    FigureIndex("Fig. 10", "2-16 PEs, 100x load sweep", "bench_fig10_sweep_heavy"),
    FigureIndex("Fig. 11 top", "fast+slow hosts, in-depth", "bench_fig11_top_hetero_indepth"),
    FigureIndex("Fig. 11 bottom", "2-24 PEs across hetero hosts", "bench_fig11_bottom_hetero_sweep"),
    FigureIndex("Fig. 12", "64 PEs, 3 load classes, clustering", "bench_fig12_clustering_indepth"),
    FigureIndex("Fig. 13", "8-64 PEs, clustering sweep", "bench_fig13_clustering_sweep"),
    FigureIndex("Sec. 4.4", "transport-level re-routing baseline", "bench_sec44_rerouting"),
]
