"""Oracle* weight computation.

The paper's ``Oracle*`` baseline is "the best distribution for the
configuration, determined offline and by-hand". Offline, the best
steady-state distribution is capacity-proportional: with worker service
rates ``mu_j`` (tuples/sec), weights ``w_j proportional to mu_j`` maximize
region throughput ``min_j mu_j / w_j`` for any splitter speed.

For dynamic experiments Oracle* "will change the allocation weights
earlier than is optimal" — at exactly the moment the external load
changes, while queued backlog still reflects the old load. That is why the
paper stars the name and why ``LB-adaptive`` can beat it; we reproduce the
same switch-at-change-time behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig


def proportional_weights(capacities: Sequence[float], resolution: int) -> list[int]:
    """Integer weights proportional to ``capacities``, summing to ``resolution``.

    Uses largest-remainder rounding, which preserves the proportions as
    closely as integer weights allow and is deterministic (remainder ties
    break on the lower index).
    """
    if not capacities:
        raise ValueError("capacities must be non-empty")
    check_positive("resolution", resolution)
    total = float(sum(capacities))
    if total <= 0:
        raise ValueError("total capacity must be positive")
    exact = [c / total * resolution for c in capacities]
    floors = [int(x) for x in exact]
    shortfall = resolution - sum(floors)
    by_remainder = sorted(
        range(len(exact)), key=lambda j: (floors[j] - exact[j], j)
    )
    weights = list(floors)
    for j in by_remainder[:shortfall]:
        weights[j] += 1
    return weights


def worker_capacities(
    config: "ExperimentConfig",
    time: float,
    *,
    multipliers: Sequence[float] | None = None,
) -> list[float]:
    """True tuples/sec capacity of each worker at ``time``.

    Uses the host model (fair share of host capacity among its placed PEs)
    and the load schedule's multiplier in force at ``time`` — or the
    explicit ``multipliers``, for progress-triggered phases whose wall
    time is not known in advance.
    """
    assert config.worker_host is not None
    counts: dict[int, int] = {}
    for spec_idx in config.worker_host:
        counts[spec_idx] = counts.get(spec_idx, 0) + 1
    per_pe_speed: dict[int, float] = {}
    for spec_idx, n in counts.items():
        host = config.host_specs[spec_idx].build()
        per_pe_speed[spec_idx] = host.total_capacity(n) / n
    capacities = []
    for worker, spec_idx in enumerate(config.worker_host):
        if multipliers is not None:
            multiplier = multipliers[worker]
        else:
            multiplier = config.load_schedule.multiplier_at(worker, time)
        capacities.append(
            per_pe_speed[spec_idx] / (config.tuple_cost * multiplier)
        )
    return capacities


def oracle_schedule(
    config: "ExperimentConfig", resolution: int = 1000
) -> dict[float, list[int]]:
    """The Oracle* weight schedule for ``config``.

    One weight vector at time zero, plus one at every load-change time —
    each capacity-proportional for the loads in force from that moment.
    """
    times = [0.0] + [
        t for t in config.load_schedule.change_times() if t > 0.0
    ]
    return {
        t: proportional_weights(worker_capacities(config, t), resolution)
        for t in times
    }
