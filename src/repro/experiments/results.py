"""Result rows and tables for the sweep experiments.

The paper's Figures 9, 10, 11 (bottom) and 13 are grids over the number of
PEs with a handful of policies, reporting (a) total execution time
normalized to a baseline and (b) absolute final throughput. These helpers
hold, normalize, and render those grids as the textual tables the bench
harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import RunResult


@dataclass(slots=True)
class SweepRow:
    """One cell of a sweep grid."""

    n_pes: int
    policy: str
    execution_time: float | None
    final_throughput: float
    normalized_time: float | None = None
    #: Fraction of offered tuples shed by admission control (0.0 for
    #: closed-loop runs; meaningful in overload sweeps).
    shed_ratio: float = 0.0

    @classmethod
    def from_result(cls, result: RunResult) -> "SweepRow":
        return cls(
            n_pes=result.n_workers,
            policy=result.policy,
            execution_time=result.execution_time,
            final_throughput=result.final_throughput(),
            shed_ratio=result.shed_ratio(),
        )


def normalize_to(rows: list[SweepRow], baseline_policy: str) -> list[SweepRow]:
    """Fill ``normalized_time`` relative to ``baseline_policy`` per PE count.

    Matches the paper: "All execution times are normalized to Oracle* for
    that run" (Figures 9/10/13) or to Even-RR (Figure 11). Rows whose
    baseline or own time is missing get ``None``.
    """
    baseline: dict[int, float] = {}
    for row in rows:
        if row.policy == baseline_policy and row.execution_time is not None:
            baseline[row.n_pes] = row.execution_time
    for row in rows:
        base = baseline.get(row.n_pes)
        if base is not None and row.execution_time is not None and base > 0:
            row.normalized_time = row.execution_time / base
        else:
            row.normalized_time = None
    return rows


def format_sweep_table(
    rows: list[SweepRow],
    *,
    title: str = "",
    throughput_unit: float = 1.0,
) -> str:
    """Render a sweep as an aligned text table.

    ``throughput_unit`` divides final throughput for display (the paper
    reports millions of tuples per second; benches usually use 1.0 since
    simulated rates are scaled down).
    """
    policies: list[str] = []
    for row in rows:
        if row.policy not in policies:
            policies.append(row.policy)
    sizes = sorted({row.n_pes for row in rows})
    by_key = {(row.n_pes, row.policy): row for row in rows}

    def fmt_time(row: SweepRow | None) -> str:
        if row is None or row.execution_time is None:
            return "-"
        if row.normalized_time is not None:
            return f"{row.normalized_time:.2f}x"
        return f"{row.execution_time:.1f}s"

    def fmt_tput(row: SweepRow | None) -> str:
        if row is None:
            return "-"
        return f"{row.final_throughput / throughput_unit:.1f}"

    lines: list[str] = []
    if title:
        lines.append(title)
    header = ["PEs"] + [f"{p}(time)" for p in policies] + [
        f"{p}(tput)" for p in policies
    ]
    table = [header]
    for size in sizes:
        cells = [str(size)]
        cells += [fmt_time(by_key.get((size, p))) for p in policies]
        cells += [fmt_tput(by_key.get((size, p))) for p in policies]
        table.append(cells)
    widths = [
        max(len(row[col]) for row in table) for col in range(len(header))
    ]
    for row in table:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
