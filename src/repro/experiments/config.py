"""Experiment configuration.

An :class:`ExperimentConfig` fully describes one run: the region's width
and dataplane parameters, the hosts and the worker-to-host placement, the
tuple cost, the external-load schedule, and either a fixed tuple budget
(execution-time experiments) or a time horizon (in-depth experiments).

Host speeds are a free scale parameter: the paper's results depend only on
*ratios* (loads of 5x/10x/100x, fast-vs-slow hosts, splitter much faster
than any worker), so benches pick speeds that keep simulated runs cheap
while preserving every ratio. See DESIGN.md ("Time scaling").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.balancer import BalancerConfig
from repro.faults.recovery import RecoveryConfig
from repro.faults.schedule import FaultSchedule
from repro.obs.hub import ObservabilityConfig
from repro.overload.detector import OverloadConfig
from repro.streams.hosts import Host, Placement
from repro.streams.region import RegionParams
from repro.util.validation import check_positive
from repro.workloads.external_load import LoadSchedule


@dataclass(slots=True, frozen=True)
class HostSpec:
    """Recipe for a :class:`~repro.streams.hosts.Host`.

    ``slow()`` and ``fast()`` encode the paper's two machine types; the
    fast host has 2-way SMT (16 hardware threads) and a per-thread speed
    ratio matching the ~65/35 split the paper's Figure 11 converges to.
    """

    name: str
    cores: int = 8
    smt_per_core: int = 1
    thread_speed: float = 1e6
    smt_efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("smt_per_core", self.smt_per_core)
        check_positive("thread_speed", self.thread_speed)

    @classmethod
    def slow(cls, thread_speed: float, name: str = "slow") -> "HostSpec":
        """The paper's X5365 host: 8 cores, no SMT."""
        return cls(name=name, cores=8, smt_per_core=1, thread_speed=thread_speed)

    @classmethod
    def fast(cls, slow_thread_speed: float, name: str = "fast", *, speed_ratio: float = 1.857) -> "HostSpec":
        """The paper's X5687 host: 8 cores, 2-way SMT, faster per thread.

        ``speed_ratio`` is fast-vs-slow per-thread speed; the default
        reproduces Figure 11's observed ~65/35 stable split for one PE on
        each host type.
        """
        return cls(
            name=name,
            cores=8,
            smt_per_core=2,
            thread_speed=slow_thread_speed * speed_ratio,
        )

    def build(self) -> Host:
        """Instantiate a fresh :class:`Host` (one per run; hosts hold state)."""
        return Host(
            self.name,
            cores=self.cores,
            smt_per_core=self.smt_per_core,
            thread_speed=self.thread_speed,
            smt_efficiency=self.smt_efficiency,
        )


@dataclass(slots=True)
class ExperimentConfig:
    """A complete description of one experiment run."""

    name: str
    n_workers: int
    tuple_cost: float
    host_specs: list[HostSpec]
    #: Index into ``host_specs`` for each worker.
    worker_host: list[int] | None = None
    load_schedule: LoadSchedule = field(default_factory=LoadSchedule.none)
    #: Finite tuple budget -> "total execution time" experiments.
    total_tuples: int | None = None
    #: Time horizon in simulated seconds -> in-depth experiments. Also the
    #: safety cap for finite runs.
    duration: float | None = None
    region: RegionParams = field(default_factory=RegionParams)
    #: Per-tuple cost on the splitter's machine, in integer-multiply
    #: equivalents. This sets the region's maximum ingest rate
    #: (``splitter_thread_speed / splitter_cost_multiplies``) — the
    #: source/splitter/merger overhead that caps scaling in the paper's
    #: system ("for a base cost of 1,000 integer multiplies per tuple,
    #: 8 PEs is the point at which additional parallelism does not improve
    #: performance" implies a per-tuple region overhead of ~1000/8 = 125
    #: multiplies, the default). Set ``None`` to use ``region.send_overhead``
    #: directly.
    splitter_cost_multiplies: float | None = 125.0
    #: Speed of the machine hosting splitter+merger (the paper keeps them
    #: on a separate host of the "slow" type). ``None`` -> host_specs[0].
    splitter_thread_speed: float | None = None
    sample_interval: float = 1.0
    balancer: BalancerConfig = field(default_factory=BalancerConfig)
    #: Enforce sequential semantics at the merger (the paper's default).
    #: ``False`` models parallel sinks / unordered production regions.
    ordered: bool = True
    #: Faults to inject during the run (none by default). A non-empty
    #: schedule forces ``region.fault_tolerant`` on and attaches the
    #: recovery layer (liveness monitor, quarantine, replay/skip).
    fault_schedule: FaultSchedule = field(default_factory=FaultSchedule.none)
    #: Detection/reintegration tunables, used when faults are scheduled.
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: Open-loop offered load in tuples/sec. ``None`` (the default) keeps
    #: the paper's pull-based saturating source; a rate decouples demand
    #: from capacity, which is how overload experiments offer more than
    #: the region can serve.
    arrival_rate: float | None = None
    #: Detection/shedding/flow-control tunables, used when
    #: ``region.overload_protection`` is on.
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    #: Exporter/reporter tunables, used when ``region.observability``
    #: is on (off by default: no recorder is built, golden traces stay
    #: byte-identical).
    obs: ObservabilityConfig = field(default_factory=ObservabilityConfig)

    def __post_init__(self) -> None:
        check_positive("n_workers", self.n_workers)
        check_positive("tuple_cost", self.tuple_cost)
        if not self.host_specs:
            raise ValueError("host_specs must be non-empty")
        if self.worker_host is None:
            # Default placement: one PE per core, filling hosts in order
            # and cycling if workers outnumber total cores.
            assignment: list[int] = []
            spec_idx, used = 0, 0
            for _ in range(self.n_workers):
                if used >= self.host_specs[spec_idx].cores:
                    spec_idx = (spec_idx + 1) % len(self.host_specs)
                    used = 0
                assignment.append(spec_idx)
                used += 1
            self.worker_host = assignment
        if len(self.worker_host) != self.n_workers:
            raise ValueError(
                f"worker_host has {len(self.worker_host)} entries for "
                f"{self.n_workers} workers"
            )
        if any(not 0 <= h < len(self.host_specs) for h in self.worker_host):
            raise ValueError("worker_host references an unknown host spec")
        if self.total_tuples is None and self.duration is None:
            raise ValueError("set total_tuples and/or duration")
        check_positive("sample_interval", self.sample_interval)
        if self.arrival_rate is not None:
            check_positive("arrival_rate", self.arrival_rate)
        if self.fault_schedule.bursts and self.arrival_rate is None:
            raise ValueError(
                "overload bursts scale an open-loop source: set "
                "arrival_rate"
            )
        self.fault_schedule.validate(self.n_workers)
        if not self.fault_schedule.empty() and not self.region.fault_tolerant:
            self.region.fault_tolerant = True
        if self.splitter_cost_multiplies is not None:
            check_positive(
                "splitter_cost_multiplies", self.splitter_cost_multiplies
            )
            speed = (
                self.splitter_thread_speed
                if self.splitter_thread_speed is not None
                else self.host_specs[0].thread_speed
            )
            self.region.send_overhead = self.splitter_cost_multiplies / speed

    def max_ingest_rate(self) -> float:
        """The splitter's maximum send rate in tuples/sec."""
        return 1.0 / self.region.send_overhead

    def build_placement(self) -> Placement:
        """Fresh hosts + placement for one run."""
        hosts = [spec.build() for spec in self.host_specs]
        assert self.worker_host is not None
        return Placement(host_of=[hosts[h] for h in self.worker_host])

    def horizon(self) -> float:
        """Hard stop time for the simulation.

        Finite runs stop when the budget drains; the horizon is a safety
        net sized from a pessimistic throughput bound when ``duration``
        was not given.
        """
        if self.duration is not None:
            return self.duration
        assert self.total_tuples is not None
        # Pessimistic bound: the whole budget through the slowest worker.
        slowest = min(
            spec.thread_speed for spec in self.host_specs
        )
        worst_multiplier = max(
            [1.0] + [e.multiplier for e in self.load_schedule.events]
            + list(self.load_schedule.initial.values())
        )
        per_tuple = self.tuple_cost * worst_multiplier / slowest
        bound = 10.0 + 2.0 * self.total_tuples * per_tuple
        if self.arrival_rate is not None:
            # An open-loop source also paces the run: the budget cannot
            # drain faster than it arrives.
            bound = max(
                bound, 10.0 + 2.0 * self.total_tuples / self.arrival_rate
            )
        return bound

    def with_name(self, name: str) -> "ExperimentConfig":
        """Copy with a different name (sweeps reuse one template)."""
        return replace(self, name=name)

    def with_observability(
        self, obs: ObservabilityConfig | None = None
    ) -> "ExperimentConfig":
        """Copy with the observability recorder enabled.

        Flips ``region.observability`` on and (optionally) replaces the
        exporter configuration. The copy shares nothing mutable with the
        original, so a sweep can run instrumented and bare variants of
        one template side by side.
        """
        return replace(
            self,
            region=replace(self.region, observability=True),
            obs=obs if obs is not None else self.obs,
        )

    def with_batch_size(self, batch_size: int) -> "ExperimentConfig":
        """Copy with the region's batched fast path set to ``batch_size``.

        Everything else — workload, hosts, balancer, overheads — is
        unchanged, so a ``with_batch_size`` sweep isolates exactly the
        amortization effect (see EXPERIMENTS.md, "Batching").
        """
        check_positive("batch_size", batch_size)
        return replace(
            self, region=replace(self.region, batch_size=int(batch_size))
        )


def fault_recovery_scenario(
    *,
    n_workers: int = 4,
    crash_worker: int = 1,
    crash_at: float = 15.0,
    restart_after: float | None = 30.0,
    duration: float = 120.0,
    gap_policy: str = "replay",
) -> ExperimentConfig:
    """The canonical fault experiment: one PE crashes mid-run.

    A homogeneous region runs under moderate saturation; ``crash_worker``
    dies at ``crash_at`` and (by default) its process returns
    ``restart_after`` seconds later. The recovery layer quarantines the
    channel, replays its unacknowledged tuples to survivors (or skips them
    under ``gap_policy="skip"``), re-solves the allocation over survivors,
    and reintegrates the channel after the restart. The run's
    :class:`~repro.experiments.runner.RunResult` carries the recovery
    metrics: time-to-quarantine, time-to-reconverge, tuples replayed/lost.
    """
    speed = 2e5  # 0.05 s services, well under the 1 s sampling interval
    return ExperimentConfig(
        name=f"fault-recovery-{gap_policy}",
        n_workers=n_workers,
        tuple_cost=10_000,
        host_specs=[HostSpec("slow", thread_speed=speed)],
        worker_host=[0] * n_workers,
        duration=duration,
        # sigma ~= 1.25x the unloaded region's aggregate service rate:
        # saturated enough that blocking rates are informative, with slack
        # for survivors to absorb a failed channel's share.
        splitter_cost_multiplies=speed / (1.25 * n_workers * 20.0),
        fault_schedule=FaultSchedule.crash(
            crash_worker, at=crash_at, restart_after=restart_after
        ),
        recovery=RecoveryConfig(gap_policy=gap_policy),
    )


def overload_scenario(
    *,
    n_workers: int = 4,
    overload_factor: float = 2.0,
    duration: float = 120.0,
    shedding: str = "probabilistic",
    protection: bool = True,
    burst: tuple[float, float, float] | None = None,
    seed: int = 0,
) -> ExperimentConfig:
    """The canonical overload experiment: sustained demand past capacity.

    A homogeneous region with an aggregate capacity of ``20 * n_workers``
    tuples/sec faces an open-loop arrival stream at ``overload_factor``
    times that (2x by default — the regime where, unprotected, the input
    queue grows by a full capacity's worth every second). With
    ``protection=True`` the overload layer sheds the excess before
    sequence assignment, flow-controls the merger's reordering memory,
    and runs the balancer in safe mode; with ``protection=False`` the
    same offered load runs bare, which is the degradation contrast the
    acceptance criteria (and ``bench_overload_degradation``) measure.

    ``burst`` optionally schedules an extra ``(at, factor, duration)``
    demand burst on top via the fault layer's
    :class:`~repro.faults.schedule.OverloadBurstEvent`.
    """
    check_positive("overload_factor", overload_factor)
    speed = 2e5
    tuple_cost = 10_000  # 0.05 s per tuple -> 20 tuples/sec per worker
    capacity = n_workers * speed / tuple_cost
    fault_schedule = FaultSchedule.none()
    if burst is not None:
        at, factor, burst_duration = burst
        fault_schedule = FaultSchedule.overload_burst(
            at, factor, duration=burst_duration
        )
    suffix = "" if protection else "-unprotected"
    return ExperimentConfig(
        name=f"overload-{shedding}{suffix}",
        n_workers=n_workers,
        tuple_cost=tuple_cost,
        host_specs=[HostSpec("slow", thread_speed=speed)],
        worker_host=[0] * n_workers,
        duration=duration,
        arrival_rate=overload_factor * capacity,
        # Ingest far above any offered rate: the splitter must never be
        # the bottleneck, or blocking would measure the splitter instead
        # of the workers.
        splitter_cost_multiplies=speed / (8.0 * overload_factor * capacity),
        region=RegionParams(overload_protection=protection),
        overload=OverloadConfig(shedding=shedding, seed=seed),
        balancer=BalancerConfig(safe_mode=protection, max_churn=150),
        fault_schedule=fault_schedule,
    )
