"""Admission control: shed load *before* sequence assignment.

The one place load can be shed without touching ordered-merge semantics
is at the source, before a tuple receives its sequence number: the
admitted stream is then gap-free and totally ordered, so the splitter,
the retransmit buffers, and the merger are all oblivious to shedding.
(Shedding after sequence assignment would punch permanent holes in the
sequence that the merger could only survive via ``mark_lost`` — turning
every shed into a fault.)

Policies decide per arriving tuple, given the arrival index, the current
source backlog, and the detector's shed ``pressure``:

* :class:`DropTailShedding` — admit while the backlog is below a hard
  cap; the classic bounded-queue tail drop. Ignores pressure, so it
  sheds nothing until the queue is already long (worst latency for
  admitted tuples, zero shed below the cap).
* :class:`ProbabilisticShedding` — admit with probability
  ``1 - pressure`` (seeded RNG, deterministic runs). Self-regulating:
  the backlog settles where the admitted rate equals capacity.
* :class:`PriorityShedding` — admit iff the tuple's priority (a caller
  function of the arrival index, default a hashed uniform) is at least
  ``pressure``: under pressure *p* exactly the top ``1-p`` priority band
  survives, so shedding is deterministic per tuple and spread across the
  stream.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.overload.detector import OverloadConfig, OverloadDetector


@runtime_checkable
class SheddingPolicy(Protocol):
    """Per-tuple admit/shed decision."""

    def admit(self, index: int, backlog: int, pressure: float) -> bool:
        """Whether arrival number ``index`` is admitted.

        ``backlog`` is the source queue length *before* this arrival;
        ``pressure`` is the detector's shed pressure in ``[0, 1]``.
        """


class DropTailShedding:
    """Admit while the backlog is below ``queue_limit``; drop the tail."""

    def __init__(self, queue_limit: int) -> None:
        check_positive("queue_limit", queue_limit)
        self.queue_limit = int(queue_limit)

    def admit(self, index: int, backlog: int, pressure: float) -> bool:
        return backlog < self.queue_limit


class ProbabilisticShedding:
    """Admit with probability ``1 - pressure`` (seeded, deterministic)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def admit(self, index: int, backlog: int, pressure: float) -> bool:
        if pressure <= 0.0:
            return True
        if pressure >= 1.0:
            return False
        return self._rng.random() >= pressure


class PriorityShedding:
    """Admit the high-priority band; shed the low one first.

    ``priority_fn`` maps an arrival index to a priority in ``[0, 1]``;
    under pressure *p* only tuples with priority ≥ *p* are admitted. The
    default assigns a hashed pseudo-uniform priority (Knuth
    multiplicative hash), which spreads shedding evenly across the
    stream while staying deterministic.
    """

    def __init__(
        self, priority_fn: Callable[[int], float] | None = None
    ) -> None:
        self.priority_fn = priority_fn or _hashed_priority

    def admit(self, index: int, backlog: int, pressure: float) -> bool:
        if pressure <= 0.0:
            return True
        return self.priority_fn(index) >= pressure


def _hashed_priority(index: int) -> float:
    return ((index * 2654435761) & 0xFFFFFFFF) / 2.0**32


class AdmissionController:
    """Applies a shedding policy at the source and keeps the tallies."""

    def __init__(
        self,
        policy: SheddingPolicy,
        detector: "OverloadDetector | None" = None,
    ) -> None:
        self.policy = policy
        self.detector = detector
        #: Tuples the source offered (arrivals).
        self.offered = 0
        #: Tuples admitted into the region.
        self.admitted = 0
        #: Tuples shed before sequence assignment.
        self.shed = 0

    def offer(self, index: int, backlog: int) -> bool:
        """Decide arrival ``index`` with the current ``backlog``."""
        self.offered += 1
        pressure = (
            self.detector.pressure(backlog)
            if self.detector is not None
            else 0.0
        )
        if self.policy.admit(index, backlog, pressure):
            self.admitted += 1
            return True
        self.shed += 1
        return False

    def shed_ratio(self) -> float:
        """Fraction of offered tuples shed so far."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


def build_shedding_policy(config: "OverloadConfig") -> SheddingPolicy | None:
    """The policy named by ``config.shedding`` (``None`` for ``"none"``)."""
    kind = config.shedding
    if kind == "none":
        return None
    if kind == "drop-tail":
        return DropTailShedding(config.queue_limit)
    if kind == "probabilistic":
        return ProbabilisticShedding(seed=config.seed)
    if kind == "priority":
        return PriorityShedding()
    raise ValueError(f"unknown shedding policy {kind!r}")
