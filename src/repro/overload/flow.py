"""Credit-based flow control between the merger and the splitter.

The ordered merger's reordering buffer is unbounded by design (the paper
blocks at the splitter, not the merger) — its occupancy is normally
bounded by the connections' bounded buffers, but a skewed allocation or
a late channel can still park hundreds of tuples behind one missing
sequence number. The gate turns that into explicit backpressure: when
the merger's pending count crosses ``high`` the splitter pauses *before
pulling the next tuple* (never mid-send, so no tuple is stranded), and
resumes once pending drains to ``low``. Two watermarks instead of one
make the pause/resume cycle hysteretic rather than a flap per tuple.

The gate is observer-agnostic: the merger calls :meth:`update` with its
pending count, the splitter polls :attr:`paused` and registers
``on_resume``. Nothing here schedules simulator events, so a gate that
never pauses leaves the event stream untouched.
"""

from __future__ import annotations

from collections.abc import Callable


class FlowControlGate:
    """High/low-watermark pause signal from a consumer to a producer."""

    def __init__(self, high: int, low: int) -> None:
        if high <= 0:
            raise ValueError(f"high watermark must be positive, got {high}")
        if not 0 <= low < high:
            raise ValueError(
                f"low watermark must be in [0, high={high}), got {low}"
            )
        self.high = int(high)
        self.low = int(low)
        #: Whether the producer should hold off.
        self.paused = False
        #: Pause episodes so far.
        self.pauses = 0
        #: Invoked on the healthy->paused edge.
        self.on_pause: Callable[[], None] | None = None
        #: Invoked on the paused->resumed edge.
        self.on_resume: Callable[[], None] | None = None

    def update(self, level: int) -> None:
        """Feed the consumer's current occupancy; fires edge callbacks."""
        if not self.paused:
            if level >= self.high:
                self.paused = True
                self.pauses += 1
                if self.on_pause is not None:
                    self.on_pause()
        elif level <= self.low:
            self.paused = False
            if self.on_resume is not None:
                self.on_resume()
