"""Overload detection with hysteresis.

The detector's inputs are the three signals that actually move when
offered load exceeds capacity in this system:

* the **source backlog** (tuples that arrived but were not yet pulled by
  the splitter) and its growth between checks — the open-loop queue that
  grows without bound in the overload regime;
* the **merger pending count** — reordering memory, which a skewed or
  late channel inflates even when aggregate demand is fine;
* the **per-connection blocking fractions** derived from the splitter's
  cumulative blocking counters — Section 4.4's overload signature is
  *every* channel blocking at once (any single channel blocking is just
  imbalance, which is the balancer's job, not ours).

A single noisy sample must not flap admission control, so state changes
are debounced: the detector trips only after ``trip_confirmations``
consecutive overloaded checks and clears only after
``clear_confirmations`` consecutive healthy ones (clearing is slower than
tripping by default — re-admitting too early just re-trips).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.validation import check_fraction, check_positive

#: Admission policies :func:`~repro.overload.admission.build_shedding_policy`
#: knows how to build. ``"none"`` disables shedding (flow control only).
SHEDDING_KINDS = ("drop-tail", "probabilistic", "priority", "none")


@dataclass(slots=True)
class OverloadConfig:
    """Tunables for detection, shedding, and flow control.

    The watermarks are in tuples; the defaults suit the experiment-scale
    regions (tens of tuples/second per worker) used across this repo.
    """

    #: Detector period in simulated seconds.
    check_interval: float = 0.25
    #: Source backlog at/above which (while growing) a check is overloaded.
    queue_high: int = 256
    #: Source backlog at/below which a check can count toward clearing.
    queue_low: int = 64
    #: Merger pending watermark that pauses the splitter (flow control)
    #: and counts a check as overloaded.
    pending_high: int = 96
    #: Merger pending watermark at/below which the splitter resumes.
    pending_low: int = 24
    #: Per-connection blocked-time fraction treated as saturated; a check
    #: where *every* live channel exceeds it is overloaded (Section 4.4's
    #: all-blocking regime).
    saturation_threshold: float = 0.5
    #: Consecutive overloaded checks before the detector trips.
    trip_confirmations: int = 3
    #: Consecutive healthy checks before the detector clears.
    clear_confirmations: int = 8
    #: Shedding policy: one of :data:`SHEDDING_KINDS`.
    shedding: str = "probabilistic"
    #: Hard backlog cap for the drop-tail policy.
    queue_limit: int = 512
    #: Seed for the probabilistic policy's RNG (deterministic runs).
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("check_interval", self.check_interval)
        check_positive("queue_high", self.queue_high)
        check_positive("pending_high", self.pending_high)
        check_positive("trip_confirmations", self.trip_confirmations)
        check_positive("clear_confirmations", self.clear_confirmations)
        check_positive("queue_limit", self.queue_limit)
        check_fraction("saturation_threshold", self.saturation_threshold)
        if not 0 <= self.queue_low < self.queue_high:
            raise ValueError(
                f"queue_low must be in [0, queue_high={self.queue_high}), "
                f"got {self.queue_low}"
            )
        if not 0 <= self.pending_low < self.pending_high:
            raise ValueError(
                f"pending_low must be in [0, pending_high="
                f"{self.pending_high}), got {self.pending_low}"
            )
        if self.shedding not in SHEDDING_KINDS:
            raise ValueError(
                f"unknown shedding policy {self.shedding!r}; "
                f"choose from {SHEDDING_KINDS}"
            )


class OverloadDetector:
    """Declares (and un-declares) the overload state, with hysteresis."""

    def __init__(self, config: OverloadConfig | None = None) -> None:
        self.config = config or OverloadConfig()
        #: Current state: ``True`` while the region is declared overloaded.
        self.overloaded = False
        #: Healthy-to-overloaded transitions so far.
        self.trips = 0
        #: Simulated seconds spent in the overloaded state.
        self.overloaded_seconds = 0.0
        #: Most recent signals (diagnostics).
        self.last_backlog = 0
        self.last_pending = 0
        self.last_growth = 0
        self.last_blocked_fractions: list[float] = []
        self._trip_streak = 0
        self._clear_streak = 0
        self._last_now: float | None = None
        self._last_counters: tuple[float, ...] | None = None
        #: Called with the check time on each healthy->overloaded edge
        #: (observability hook; None = not recording).
        self.on_trip = None
        #: Called with the check time on each overloaded->healthy edge.
        self.on_clear = None

    def observe(
        self,
        now: float,
        *,
        backlog: int,
        pending: int,
        counters: Sequence[float] = (),
    ) -> bool:
        """Feed one check's signals; returns the (possibly new) state.

        ``counters`` are the cumulative per-connection blocking-time
        counters; the detector differences them against the previous
        check to get blocked-time fractions. The first check only primes
        the counter baseline.
        """
        cfg = self.config
        fractions: list[float] = []
        if (
            self._last_now is not None
            and now > self._last_now
            and self._last_counters is not None
            and len(counters) == len(self._last_counters)
        ):
            dt = now - self._last_now
            fractions = [
                max(0.0, (c - p) / dt)
                for c, p in zip(counters, self._last_counters)
            ]
        if self.overloaded and self._last_now is not None:
            self.overloaded_seconds += now - self._last_now
        growth = backlog - self.last_backlog
        self.last_backlog = backlog
        self.last_pending = pending
        self.last_growth = growth
        self.last_blocked_fractions = fractions
        self._last_now = now
        self._last_counters = tuple(counters)

        all_saturated = bool(fractions) and min(fractions) >= (
            cfg.saturation_threshold
        )
        overloaded_check = (
            (backlog >= cfg.queue_high and growth > 0)
            or pending >= cfg.pending_high
            or all_saturated
        )
        healthy_check = (
            backlog <= cfg.queue_low
            and pending <= cfg.pending_low
            and not all_saturated
        )
        if not self.overloaded:
            self._trip_streak = self._trip_streak + 1 if overloaded_check else 0
            if self._trip_streak >= cfg.trip_confirmations:
                self.overloaded = True
                self.trips += 1
                self._trip_streak = 0
                self._clear_streak = 0
                if self.on_trip is not None:
                    self.on_trip(now)
        else:
            self._clear_streak = self._clear_streak + 1 if healthy_check else 0
            if self._clear_streak >= cfg.clear_confirmations:
                self.overloaded = False
                self._trip_streak = 0
                self._clear_streak = 0
                if self.on_clear is not None:
                    self.on_clear(now)
        return self.overloaded

    def pressure(self, backlog: int | None = None) -> float:
        """How hard admission should shed, in ``[0, 1]``.

        Zero while healthy. While overloaded, the larger of the backlog's
        and the pending buffer's fractional distance to its high
        watermark, capped at 1. Probabilistic shedding admits with
        probability ``1 - pressure``, which self-regulates: the backlog
        settles where the admitted rate matches capacity, strictly below
        ``queue_high``.
        """
        if not self.overloaded:
            return 0.0
        q = self.last_backlog if backlog is None else backlog
        queue_frac = q / self.config.queue_high
        pending_frac = self.last_pending / self.config.pending_high
        return max(0.0, min(1.0, max(queue_frac, pending_frac)))
