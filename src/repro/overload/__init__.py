"""Overload management for ordered parallel regions.

The paper's model (and PR 2's fault layer) assume aggregate demand stays
below aggregate capacity; in the overload regime every blocking rate is
positive, the splitter's input queue and the ordered merger's reordering
buffer grow without bound, and the balancer chases saturated noise. This
package treats overload as a first-class state instead of an error, in
three coordinated layers:

* **detection** (:mod:`repro.overload.detector`) — an
  :class:`OverloadDetector` fed by splitter blocking rates, input-queue
  growth, and the merger pending watermark, with trip/clear hysteresis so
  transient bursts don't flap it;
* **admission control** (:mod:`repro.overload.admission`) — pluggable
  shedding policies applied at the source *before* sequence assignment,
  so the admitted stream stays gap-free and ordered-merge semantics are
  untouched;
* **flow control** (:mod:`repro.overload.flow`) — credit-based
  backpressure from the merger's pending buffer to the splitter, bounding
  merger memory when skewed or late channels inflate reordering.

:class:`OverloadManager` wires all three against a
:class:`~repro.streams.region.ParallelRegion`; construction requires
``RegionParams(overload_protection=True)``, mirroring how the fault layer
gates on ``fault_tolerant`` — with protection off, no hook is installed
and golden determinism traces are byte-identical.
"""

from repro.overload.admission import (
    AdmissionController,
    DropTailShedding,
    PriorityShedding,
    ProbabilisticShedding,
    SheddingPolicy,
    build_shedding_policy,
)
from repro.overload.detector import OverloadConfig, OverloadDetector
from repro.overload.flow import FlowControlGate
from repro.overload.manager import OverloadManager

__all__ = [
    "AdmissionController",
    "DropTailShedding",
    "FlowControlGate",
    "OverloadConfig",
    "OverloadDetector",
    "OverloadManager",
    "PriorityShedding",
    "ProbabilisticShedding",
    "SheddingPolicy",
    "build_shedding_policy",
]
