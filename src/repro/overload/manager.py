"""The overload manager: wires detection, shedding, and flow control.

One object per region, analogous to the fault layer's
:class:`~repro.faults.recovery.RecoveryCoordinator`: construct it with
the region (and the :class:`~repro.streams.sources.RatedSource` when
admission control is wanted), call :meth:`start`, and it

* installs the merger->splitter :class:`FlowControlGate` at the
  configured pending watermarks,
* installs an :class:`AdmissionController` with the configured shedding
  policy on the source (sheds happen before sequence assignment), and
* runs the :class:`OverloadDetector` every ``check_interval`` simulated
  seconds on the live signals (source backlog, merger pending, lifetime
  blocking counters — the lifetime totals survive the transport layer's
  periodic counter resets).

Construction refuses a region without
``RegionParams(overload_protection=True)``: protection must be an
explicit choice, and with it off no hook exists anywhere on the hot
path, keeping golden determinism traces byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.overload.admission import AdmissionController, build_shedding_policy
from repro.overload.detector import OverloadConfig, OverloadDetector
from repro.overload.flow import FlowControlGate

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.streams.region import ParallelRegion
    from repro.streams.sources import RatedSource


class OverloadManager:
    """Keeps a region stable and memory-bounded past its capacity."""

    def __init__(
        self,
        sim: "Simulator",
        region: "ParallelRegion",
        *,
        source: "RatedSource | None" = None,
        config: OverloadConfig | None = None,
    ) -> None:
        if not region.params.overload_protection:
            raise ValueError(
                "overload management requires "
                "RegionParams(overload_protection=True)"
            )
        self.sim = sim
        self.region = region
        self.config = config or OverloadConfig()
        self.source = source
        self.detector = OverloadDetector(self.config)
        self.gate = FlowControlGate(
            self.config.pending_high, self.config.pending_low
        )
        region.merger.attach_flow_gate(self.gate)
        region.splitter.attach_flow_gate(self.gate)
        self.admission: AdmissionController | None = None
        if source is not None:
            policy = build_shedding_policy(self.config)
            if policy is not None:
                self.admission = AdmissionController(policy, self.detector)
                source.admission = self.admission
        self._cancel = None
        #: Observability hub (None = not recording).
        self._obs = None
        self._overload_span = -1
        self._shed_at_trip = 0

    def attach_observability(self, hub) -> None:
        """Register overload instruments and arm shed-interval spans.

        Each detector trip opens an ``overload`` span that the matching
        clear closes; the span carries the tuples shed during the
        interval, so summed span durations agree with the detector's
        ``overloaded_seconds`` (to within one check interval at run end,
        where a still-open span is truncated).
        """
        self._obs = hub
        registry = hub.registry
        detector = self.detector
        registry.gauge_fn(
            "overload_state",
            lambda: 1.0 if detector.overloaded else 0.0,
            help="Whether the region is currently declared overloaded",
        )
        registry.gauge_fn(
            "overload_trips_total",
            lambda: detector.trips,
            help="Healthy-to-overloaded transitions",
        )
        registry.gauge_fn(
            "overload_seconds_total",
            lambda: detector.overloaded_seconds,
            help="Simulated seconds spent overloaded",
        )
        registry.gauge_fn(
            "overload_pressure",
            detector.pressure,
            help="Current shed pressure in [0, 1]",
        )
        registry.gauge_fn(
            "admission_tuples_offered_total",
            lambda: self.tuples_offered,
            help="Arrivals seen by admission control",
        )
        registry.gauge_fn(
            "admission_tuples_shed_total",
            lambda: self.tuples_shed,
            help="Tuples shed before sequence assignment",
        )
        registry.gauge_fn(
            "flow_gate_paused",
            lambda: 1.0 if self.gate.paused else 0.0,
            help="Whether merger backpressure is pausing the splitter",
        )
        registry.gauge_fn(
            "flow_gate_pauses_total",
            lambda: self.gate.pauses,
            help="Flow-control pause episodes",
        )
        if self.source is not None:
            registry.gauge_fn(
                "source_backlog",
                self.source.backlog,
                help="Arrived tuples not yet pulled by the splitter",
            )
        detector.on_trip = self._on_trip
        detector.on_clear = self._on_clear

    def _on_trip(self, now: float) -> None:
        self._shed_at_trip = self.tuples_shed
        self._overload_span = self._obs.tracer.start("overload", now)

    def _on_clear(self, now: float) -> None:
        if self._overload_span >= 0:
            self._obs.tracer.finish(
                self._overload_span, now,
                shed=self.tuples_shed - self._shed_at_trip,
            )
            self._overload_span = -1

    def start(self, first: float | None = None) -> None:
        """Begin the periodic detector check."""
        if self._cancel is not None:
            raise RuntimeError("overload manager already started")
        self._cancel = self.sim.call_every(
            self.config.check_interval, self._check, start=first
        )

    def stop(self) -> None:
        """Cancel the periodic check."""
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    # -------------------------------------------------------------- metrics

    @property
    def tuples_offered(self) -> int:
        """Arrivals seen by admission control (0 without a rated source)."""
        return self.admission.offered if self.admission is not None else 0

    @property
    def tuples_shed(self) -> int:
        """Tuples shed before sequence assignment."""
        return self.admission.shed if self.admission is not None else 0

    def shed_ratio(self) -> float:
        """Fraction of offered tuples shed."""
        if self.admission is None:
            return 0.0
        return self.admission.shed_ratio()

    # ------------------------------------------------------------- internal

    def _check(self) -> None:
        backlog = self.source.backlog() if self.source is not None else 0
        counters = [
            c.lifetime_seconds for c in self.region.blocking_counters
        ]
        self.detector.observe(
            self.sim.now,
            backlog=backlog,
            pending=self.region.merger.pending_count,
            counters=counters,
        )
