"""Schema validation for the exported observability artifacts.

The documented contract (EXPERIMENTS.md "Observability") is enforced
here in plain Python — no jsonschema dependency — so CI can run

    python -m repro.obs.schema obs.jsonl obs.prom

against a real run's exports and fail on any drift between the docs,
the producers, and the files. Each validator returns a list of
problem strings (empty = valid) so tests can assert on specifics.
"""

from __future__ import annotations

import json
import re
import sys

from .audit import OUTCOMES, TRIGGERS

#: Required fields per event type; values are allowed Python types.
_NUMBER = (int, float)
_COMMON = {"type": str, "time": _NUMBER}
EVENT_SCHEMAS: dict[str, dict[str, type | tuple]] = {
    "audit": {
        **_COMMON,
        "round": int,
        "trigger": str,
        "outcome": str,
        "blocking_rates": list,
        "function_values": list,
        "predicted_rates": list,
        "decayed_channels": list,
        "solver": str,
        "solver_calls": int,
        "model_fits": int,
        "clusters": list,
        "quarantined": list,
        "old_weights": list,
        "candidate": list,
        "new_weights": list,
        "churn_limited": bool,
    },
    "span": {
        **_COMMON,
        "span_id": int,
        "kind": str,
        "start": _NUMBER,
        "end": _NUMBER,
        "duration": _NUMBER,
        "parent_round": int,
        "attrs": dict,
    },
    "fault": {
        **_COMMON,
        "kind": str,
        "channel": int,
    },
}

#: Span kinds the subsystem emits (attrs vary by kind).
SPAN_KINDS = (
    "blocking",        # splitter blocked on one connection's send queue
    "batch_dispatch",  # one batched dispatch cycle
    "detection",       # fault occurrence -> quarantine (duration == ttq)
    "quarantine",      # quarantine -> reintegration
    "reconvergence",   # quarantine -> weights re-settled (duration == ttr)
    "overload",        # overload detector trip -> clear
    "flow_pause",      # merger backpressure pause -> resume
    "restart",         # supervised respawn -> serving (process backend)
)

_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (NaN|[+-]Inf|[+-]?[0-9.eE+-]+)$"
)
_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def validate_event(event: dict) -> list[str]:
    """Check one decoded event against the documented schema."""
    problems: list[str] = []
    etype = event.get("type")
    if not isinstance(etype, str):
        return [f"event missing string 'type': {event!r}"]
    schema = EVENT_SCHEMAS.get(etype)
    if schema is None:
        # Custom events only need the common envelope.
        schema = _COMMON
    for field, expected in schema.items():
        if field not in event:
            # Open spans are truncated-closed before export, but a
            # span's 'end'/'duration' may be None mid-run.
            problems.append(f"{etype} event missing field {field!r}")
            continue
        value = event[field]
        if expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        elif expected is bool:
            ok = isinstance(value, bool)
        elif expected == _NUMBER:
            ok = (
                isinstance(value, _NUMBER) and not isinstance(value, bool)
            )
        else:
            ok = isinstance(value, expected)
        if not ok:
            problems.append(
                f"{etype} event field {field!r} has wrong type: {value!r}"
            )
    if etype == "audit":
        if event.get("trigger") not in TRIGGERS:
            problems.append(f"unknown audit trigger: {event.get('trigger')!r}")
        if event.get("outcome") not in OUTCOMES:
            problems.append(f"unknown audit outcome: {event.get('outcome')!r}")
    if etype == "span":
        if event.get("kind") not in SPAN_KINDS:
            problems.append(f"unknown span kind: {event.get('kind')!r}")
        start, end = event.get("start"), event.get("end")
        if (
            isinstance(start, _NUMBER)
            and isinstance(end, _NUMBER)
            and end < start
        ):
            problems.append(f"span ends before it starts: {event!r}")
    return problems


def validate_events_jsonl(text: str) -> list[str]:
    """Check a whole JSONL event stream; returns all problems found."""
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            problems.append(f"line {lineno}: blank line in JSONL stream")
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON: {exc}")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {lineno}: event is not an object")
            continue
        problems.extend(
            f"line {lineno}: {p}" for p in validate_event(event)
        )
    return problems


def validate_prometheus(text: str) -> list[str]:
    """Line-format check of a Prometheus text exposition snapshot."""
    problems: list[str] = []
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not _PROM_COMMENT.match(line):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            parts = line.split(None, 3)
            if parts[1] == "TYPE":
                name = parts[2]
                if name in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                typed.add(name)
                if len(parts) < 4 or parts[3] not in _PROM_TYPES:
                    problems.append(
                        f"line {lineno}: bad metric type in {line!r}"
                    )
            continue
        if not _PROM_SAMPLE.match(line):
            problems.append(f"line {lineno}: malformed sample: {line!r}")
    return problems


def main(argv: list[str]) -> int:
    """CLI: validate exported files by extension (.jsonl / anything else
    is treated as a Prometheus snapshot)."""
    if not argv:
        print(
            "usage: python -m repro.obs.schema FILE [FILE ...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        with open(path) as fh:
            text = fh.read()
        if path.endswith((".jsonl", ".ndjson")):
            problems = validate_events_jsonl(text)
            kind = "JSONL event stream"
        else:
            problems = validate_prometheus(text)
            kind = "Prometheus snapshot"
        if problems:
            failed = True
            print(f"{path}: INVALID {kind}:")
            for problem in problems[:50]:
                print(f"  {problem}")
            if len(problems) > 50:
                print(f"  ... and {len(problems) - 50} more")
        else:
            lines = len([ln for ln in text.splitlines() if ln.strip()])
            print(f"{path}: valid {kind} ({lines} lines)")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    raise SystemExit(main(sys.argv[1:]))
