"""Decision audit log: one structured record per control round.

The balancer already *makes* every decision this log captures — which
exit its ``update()`` took, what the sampled blocking rates were, what
the solver proposed, and what weights were actually applied. The audit
log makes that decision chain inspectable after the fact: every record
answers "why did round N move weight (or refuse to)?" without a
debugger.

Records are plain slots dataclasses so they serialize to JSON directly
(``as_dict``) and survive the fork-based sweep pool. ``old_weights``
and ``new_weights`` are the balancer's *applied* weights immediately
before and after the round — not the solver candidate, which is kept
separately in ``candidate`` so hysteresis rejections and churn-limited
adoptions stay visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every legal value of ``ControlRoundRecord.outcome``.
OUTCOMES = (
    "primed",               # estimator still warming up; no rates yet
    "adopted",              # candidate accepted and applied
    "no-change",            # candidate accepted but identical to current
    "rejected-hysteresis",  # candidate inside the hysteresis band
    "hold-degenerate",      # counters failed sanity checks (safe mode)
    "hold-nonfinite-rates", # sampled rates were not finite (safe mode)
    "hold-saturated",       # every channel saturated (safe mode)
    "hold-recovering",      # safe-mode recovery streak not yet met
    "hold-oscillation",     # A->B->A flip limit tripped (safe mode)
    "all-quarantined",      # no live channel to balance
)

#: Every legal value of ``ControlRoundRecord.trigger``.
TRIGGERS = ("periodic", "quarantine", "reintegrate")


@dataclass(slots=True)
class ControlRoundRecord:
    """One control round of the balancer, end to end."""

    round: int
    time: float
    trigger: str
    outcome: str
    #: Sampled per-channel blocking rates (empty while priming).
    blocking_rates: list[float] = field(default_factory=list)
    #: Post-regression rate-function value at the current weight.
    function_values: list[float] = field(default_factory=list)
    #: Rate predicted at the adopted weight, per channel.
    predicted_rates: list[float] = field(default_factory=list)
    #: Channels whose model received exploration decay this round.
    decayed_channels: list[int] = field(default_factory=list)
    solver: str = ""
    #: Minimax solver invocations attributable to this round.
    solver_calls: int = 0
    #: Model fits attributable to this round.
    model_fits: int = 0
    clusters: list[list[int]] = field(default_factory=list)
    quarantined: list[int] = field(default_factory=list)
    old_weights: list[float] = field(default_factory=list)
    #: The solver's proposal (kept even when rejected).
    candidate: list[float] = field(default_factory=list)
    new_weights: list[float] = field(default_factory=list)
    #: True when safe-mode churn limiting clipped the adoption.
    churn_limited: bool = False

    def as_dict(self) -> dict:
        return {
            "round": self.round,
            "time": self.time,
            "trigger": self.trigger,
            "outcome": self.outcome,
            "blocking_rates": list(self.blocking_rates),
            "function_values": list(self.function_values),
            "predicted_rates": list(self.predicted_rates),
            "decayed_channels": list(self.decayed_channels),
            "solver": self.solver,
            "solver_calls": self.solver_calls,
            "model_fits": self.model_fits,
            "clusters": [list(c) for c in self.clusters],
            "quarantined": list(self.quarantined),
            "old_weights": list(self.old_weights),
            "candidate": list(self.candidate),
            "new_weights": list(self.new_weights),
            "churn_limited": self.churn_limited,
        }


class DecisionAuditLog:
    """Append-only log of :class:`ControlRoundRecord`."""

    def __init__(self) -> None:
        self.records: list[ControlRoundRecord] = []

    def append(self, record: ControlRoundRecord) -> None:
        if record.trigger not in TRIGGERS:
            raise ValueError(f"unknown trigger: {record.trigger!r}")
        if record.outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome: {record.outcome!r}")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def last(self) -> ControlRoundRecord | None:
        return self.records[-1] if self.records else None

    def by_outcome(self, outcome: str) -> list[ControlRoundRecord]:
        return [r for r in self.records if r.outcome == outcome]

    def as_dicts(self) -> list[dict]:
        return [r.as_dict() for r in self.records]
