"""File exporters for :class:`~repro.obs.hub.ObsReport`.

Three formats, all derivable from the frozen report (no live hub
needed, so they also work on reports that crossed the sweep pool):

* JSONL — the full event stream, one JSON object per line, suitable
  for ``jq``/pandas ingestion and validated by ``repro.obs.schema``.
* CSV — the audit log and span list as flat tables for spreadsheet
  or dataframe analysis.
* Prometheus — the registry snapshot in text exposition format.
"""

from __future__ import annotations

import csv
import io
import json

from .hub import ObsReport

#: Column order of :func:`audit_to_csv`.
AUDIT_COLUMNS = (
    "round", "time", "trigger", "outcome", "solver", "solver_calls",
    "model_fits", "churn_limited", "blocking_rates", "function_values",
    "predicted_rates", "decayed_channels", "clusters", "quarantined",
    "old_weights", "candidate", "new_weights",
)

#: Column order of :func:`spans_to_csv`.
SPAN_COLUMNS = (
    "span_id", "kind", "start", "end", "duration", "parent_round", "attrs",
)


def events_to_jsonl(report: ObsReport, path: str) -> int:
    """Write the event stream as JSONL; returns the line count."""
    text = report.events_jsonl()
    with open(path, "w") as fh:
        fh.write(text)
    return len(report.events)


def prometheus_snapshot(report: ObsReport, path: str) -> None:
    """Write the Prometheus text-format snapshot."""
    with open(path, "w") as fh:
        fh.write(report.prometheus)


def _cell(value) -> str:
    if isinstance(value, (list, dict)):
        return json.dumps(value, sort_keys=True)
    if value is None:
        return ""
    return str(value)


def audit_to_csv(report: ObsReport, path: str | None = None) -> str:
    """The audit log as CSV; writes to ``path`` when given."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(AUDIT_COLUMNS)
    for record in report.audit:
        writer.writerow(_cell(record.get(col)) for col in AUDIT_COLUMNS)
    text = buf.getvalue()
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def spans_to_csv(report: ObsReport, path: str | None = None) -> str:
    """The span list as CSV; writes to ``path`` when given."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(SPAN_COLUMNS)
    for span in report.spans:
        writer.writerow(_cell(span.get(col)) for col in SPAN_COLUMNS)
    text = buf.getvalue()
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def write_exports(report: ObsReport, config) -> None:
    """Honor an :class:`ObservabilityConfig`'s export paths."""
    if config.jsonl_path:
        events_to_jsonl(report, config.jsonl_path)
    if config.prometheus_path:
        prometheus_snapshot(report, config.prometheus_path)
