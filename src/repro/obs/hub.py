"""The observability hub: one object per observed run.

The hub owns the four recorders — metrics registry, decision audit
log, span tracer, and the raw event stream — and stamps everything
with the simulation clock it was constructed with. Components never
see the hub unless the run opted in (``RegionParams(observability=
True)``); their instrumentation attributes stay ``None`` and the hot
path pays only dead ``is not None`` checks on episodic branches.

``report()`` freezes the whole hub into an :class:`ObsReport` of plain
lists/dicts/strings, which is what lands on ``RunResult.obs``: it
pickles across the fork-based sweep pool and serializes to JSON
without knowing anything about the live simulator it came from.
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field

from .audit import DecisionAuditLog
from .registry import MetricsRegistry
from .spans import SpanTracer


@dataclass(frozen=True, slots=True)
class ObservabilityConfig:
    """How an observed run records and exports.

    The booleans/paths only shape *exporting*; recording itself is
    switched by ``RegionParams.observability``.  ``console_interval``
    > 0 schedules a periodic reporter on the sim clock — the one obs
    feature that adds simulator events, so it defaults off to keep
    obs-on event traces identical to obs-off.
    """

    #: Seconds between console report lines; 0 disables the reporter.
    console_interval: float = 0.0
    #: Write the JSONL event stream here after the run (None = don't).
    jsonl_path: str | None = None
    #: Write a Prometheus text snapshot here after the run.
    prometheus_path: str | None = None
    #: Keep raw events in memory (audit/span/fault/custom stream).
    keep_events: bool = True

    def __post_init__(self) -> None:
        if self.console_interval < 0:
            raise ValueError(
                f"console_interval must be >= 0: {self.console_interval}"
            )


@dataclass(slots=True)
class ObsReport:
    """Frozen, picklable export of one run's observability data."""

    #: Raw event stream: audit rounds, spans, faults, custom events.
    events: list[dict] = field(default_factory=list)
    #: Flat ``name{labels}`` -> value snapshot of every instrument.
    metrics: dict[str, float] = field(default_factory=dict)
    #: Full Prometheus text-format rendering of the registry.
    prometheus: str = ""
    #: Audit records alone, in round order (subset of ``events``).
    audit: list[dict] = field(default_factory=list)
    #: Spans alone, in creation order (subset of ``events``).
    spans: list[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "metrics": self.metrics,
            "prometheus": self.prometheus,
            "audit": self.audit,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObsReport":
        return cls(
            events=list(data.get("events", [])),
            metrics=dict(data.get("metrics", {})),
            prometheus=data.get("prometheus", ""),
            audit=list(data.get("audit", [])),
            spans=list(data.get("spans", [])),
        )

    def events_jsonl(self) -> str:
        """The event stream as one JSON object per line."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.events
        )

    def spans_of_kind(self, kind: str) -> list[dict]:
        return [s for s in self.spans if s["kind"] == kind]


class ObservabilityHub:
    """Live recording surface handed to instrumented components."""

    #: Lets ``if hub is not None and hub.enabled`` read uniformly
    #: against :data:`NULL_HUB`.
    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        config: ObservabilityConfig | None = None,
    ) -> None:
        self.clock = clock
        self.config = config or ObservabilityConfig()
        self.registry = MetricsRegistry()
        self.audit = DecisionAuditLog()
        self.tracer = SpanTracer()
        self.events: list[dict] = []

    @property
    def now(self) -> float:
        return self.clock()

    def event(self, type: str, **fields) -> None:
        """Append one raw event, stamped with the sim clock."""
        if not self.config.keep_events:
            return
        record = {"type": type, "time": self.now}
        record.update(fields)
        self.events.append(record)

    # ----------------------------------------------------------- round links

    def link_round_source(self, fn: Callable[[], int]) -> None:
        """Install the audit-round linker used to parent new spans."""
        self.tracer.current_round = fn

    # -------------------------------------------------------------- freezing

    def finalize(self, end_time: float) -> None:
        """Close open spans and flush audit/span mirrors at run end.

        This is the *only* place audit records and spans enter the
        event stream, so components can't double-report them.
        """
        self.tracer.close(end_time)
        if self.config.keep_events:
            for record in self.audit:
                self.events.append({"type": "audit", **record.as_dict()})
            for span in self.tracer:
                self.events.append(
                    {"type": "span", "time": span.start, **span.as_dict()}
                )
            self.events.sort(
                key=lambda e: (e["time"], 0 if e["type"] != "span" else 1)
            )

    def report(self) -> ObsReport:
        """Freeze into plain data (call after :meth:`finalize`)."""
        return ObsReport(
            events=list(self.events),
            metrics=self.registry.snapshot(),
            prometheus=self.registry.to_prometheus(),
            audit=self.audit.as_dicts(),
            spans=self.tracer.as_dicts(),
        )


class _NullHub:
    """Inert stand-in: every recording call is a no-op.

    Components are written against ``self._obs is None`` fast checks,
    so the null hub is rarely touched in practice — it exists so code
    that *requires* a hub-shaped object (exporters, the runner's
    teardown) can run unconditionally.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def event(self, type: str, **fields) -> None:
        pass

    def finalize(self, end_time: float) -> None:
        pass

    def report(self) -> ObsReport:
        return ObsReport()


#: Shared inert hub; use instead of ``None`` where a hub is required.
NULL_HUB = _NullHub()
