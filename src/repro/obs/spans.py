"""Span tracing for long-lived episodes.

A span is a named interval on the *simulation* clock: a blocking
episode on one connection, a batch dispatch cycle, a recovery
detection/quarantine/reconvergence window, an overload shed interval.
Spans link to the owning control round (``parent_round``) so an
exported trace can be joined against the decision audit log.

Two recording styles, because the producers differ:

* live — ``start()`` returns an id, ``finish()`` closes it.  Used
  where the episode boundaries are discovered as they happen
  (splitter blocking, flow-control pauses, overload trips).
* retroactive — ``record()`` writes a finished span in one call.
  Used where the subsystem already tracks its own episode timestamps
  (recovery ttq/ttr), so the span is guaranteed to agree with the
  metric derived from the same timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Span:
    """One episode on the simulation clock."""

    span_id: int
    kind: str
    start: float
    end: float | None = None
    #: Control round in whose regime the episode ran (-1 = none).
    parent_round: int = -1
    attrs: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.span_id} ({self.kind}) still open")
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": None if self.end is None else self.duration,
            "parent_round": self.parent_round,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Collects spans; ids are assigned in creation order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        self._next_id = 0
        #: Round linker, set by the hub once a balancer is attached.
        self.current_round = lambda: -1

    def start(self, kind: str, start: float, **attrs) -> int:
        """Open a live span; returns its id for :meth:`finish`."""
        span = Span(
            span_id=self._next_id,
            kind=kind,
            start=start,
            parent_round=self.current_round(),
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._open[span.span_id] = span
        return span.span_id

    def finish(self, span_id: int, end: float, **attrs) -> Span:
        """Close a live span, merging any final attributes."""
        span = self._open.pop(span_id)
        if end < span.start:
            raise ValueError(
                f"span {span_id} ends before it starts: {end} < {span.start}"
            )
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        return span

    def record(
        self,
        kind: str,
        start: float,
        end: float,
        parent_round: int | None = None,
        **attrs,
    ) -> Span:
        """Write an already-finished span in one call."""
        if end < start:
            raise ValueError(f"span ends before it starts: {end} < {start}")
        span = Span(
            span_id=self._next_id,
            kind=kind,
            start=start,
            end=end,
            parent_round=(
                self.current_round() if parent_round is None else parent_round
            ),
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def close(self, end: float) -> int:
        """Close every still-open span (run teardown); returns how many."""
        open_spans = list(self._open.values())
        for span in open_spans:
            span.end = max(end, span.start)
            span.attrs["truncated"] = True
        self._open.clear()
        return len(open_spans)

    def by_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    def as_dicts(self) -> list[dict]:
        return [s.as_dict() for s in self.spans]
