"""The metrics registry: labeled counters, gauges, and histograms.

One registry per observed run. Instruments are cheap plain objects —
a counter increment is one attribute add — and *callback gauges* cost
nothing until the registry is collected: they read a live attribute
(``sim.events_processed``, ``merger.pending_count``) only at snapshot
time, which is how the hot path stays untouched when a run is observed.

Identity is ``(name, labels)``: registering the same instrument twice
returns the existing object, so independent components can share a
family (e.g. one ``splitter_tuples_sent_total`` per connection) without
coordinating. Names follow the Prometheus convention
(``snake_case``, ``_total`` suffix for counters), and
:meth:`MetricsRegistry.to_prometheus` renders the whole registry in the
Prometheus text exposition format.
"""

from __future__ import annotations

import math
import re
from collections.abc import Callable, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds-scale latencies).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in labels
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0: {amount}")
        self.value += amount

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, self.labels, self.value)]


class Gauge:
    """A value that can go up and down; optionally callback-backed."""

    __slots__ = ("name", "labels", "_value", "_fn")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (direct gauges only)."""
        if self._fn is not None:
            raise RuntimeError(
                f"gauge {self.name} is callback-backed; it cannot be set"
            )
        self._value = float(value)

    def add(self, amount: float) -> None:
        """Adjust the gauge by ``amount`` (direct gauges only)."""
        if self._fn is not None:
            raise RuntimeError(
                f"gauge {self.name} is callback-backed; it cannot be adjusted"
            )
        self._value += amount

    @property
    def value(self) -> float:
        """Current value (callback gauges read their source live)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, self.labels, self.value)]


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds in increasing order; an implicit
    ``+Inf`` bucket catches everything above the last bound. ``observe``
    is O(log buckets) via a linear scan over the (short, fixed) bound
    list — bucket counts are *non-cumulative* internally and summed at
    render time, so observation stays one increment.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: Sequence[float],
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must increase: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; the last slot is +Inf.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts, ending with the total count."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def samples(self) -> list[tuple[str, tuple, float]]:
        out: list[tuple[str, tuple, float]] = []
        cumulative = self.cumulative()
        for bound, c in zip(self.bounds, cumulative):
            le = _format_value(bound)
            out.append(
                (self.name + "_bucket", self.labels + (("le", le),), c)
            )
        out.append(
            (self.name + "_bucket", self.labels + (("le", "+Inf"),),
             cumulative[-1])
        )
        out.append((self.name + "_sum", self.labels, self.sum))
        out.append((self.name + "_count", self.labels, self.count))
        return out


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Holds every instrument of one observed run."""

    def __init__(self) -> None:
        #: (name, label_key) -> instrument.
        self._instruments: dict[tuple, Instrument] = {}
        #: name -> (kind, help) for the family metadata.
        self._families: dict[str, tuple[str, str]] = {}

    # ---------------------------------------------------------- registration

    def _register(
        self,
        cls: type,
        name: str,
        labels: dict[str, str],
        help: str,
        factory: Callable[[tuple], Instrument],
    ) -> Instrument:
        _check_name(name)
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        family = self._families.get(name)
        if family is not None and family[0] != cls.kind:
            raise ValueError(
                f"metric family {name!r} is a {family[0]}, not {cls.kind}"
            )
        instrument = factory(key[1])
        self._instruments[key] = instrument
        if family is None:
            self._families[name] = (cls.kind, help)
        return instrument

    def counter(
        self, name: str, help: str = "", **labels: str
    ) -> Counter:
        """Register (or fetch) a labeled counter."""
        return self._register(
            Counter, name, labels, help, lambda lk: Counter(name, lk)
        )

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """Register (or fetch) a directly-set labeled gauge."""
        return self._register(
            Gauge, name, labels, help, lambda lk: Gauge(name, lk)
        )

    def gauge_fn(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        **labels: str,
    ) -> Gauge:
        """Register a callback gauge: ``fn`` is read at collect time only."""
        return self._register(
            Gauge, name, labels, help, lambda lk: Gauge(name, lk, fn)
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram."""
        return self._register(
            Histogram, name, labels, help,
            lambda lk: Histogram(name, lk, buckets),
        )

    # ------------------------------------------------------------ collection

    def get(self, name: str, **labels: str) -> Instrument | None:
        """Fetch an existing instrument, or ``None``."""
        return self._instruments.get((name, _label_key(labels)))

    def read(self, name: str, **labels: str) -> float:
        """Value of a counter/gauge (0.0 when unregistered)."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its fields")
        return instrument.value

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, in registration order."""
        return list(self._instruments.values())

    def snapshot(self) -> dict[str, float]:
        """Flat ``name{labels}`` -> value map of every sample.

        Histograms contribute their ``_bucket``/``_sum``/``_count``
        expansion, exactly as the Prometheus rendering would.
        """
        out: dict[str, float] = {}
        for instrument in self._instruments.values():
            for name, labels, value in instrument.samples():
                out[name + _format_labels(labels)] = value
        return out

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        by_family: dict[str, list[Instrument]] = {}
        for (name, _), instrument in self._instruments.items():
            by_family.setdefault(name, []).append(instrument)
        lines: list[str] = []
        for name, instruments in by_family.items():
            kind, help = self._families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in instruments:
                for sample_name, labels, value in instrument.samples():
                    lines.append(
                        f"{sample_name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""
