"""Observability subsystem: metrics, decision audit, spans, exporters.

Everything here is driven by the *simulation* clock and gated behind
``RegionParams(observability=True)`` — a run that doesn't opt in pays
nothing and produces byte-identical golden traces. See EXPERIMENTS.md
"Observability" for the instrument catalog and export schemas.
"""

from .audit import OUTCOMES, TRIGGERS, ControlRoundRecord, DecisionAuditLog
from .console import ConsoleReporter
from .export import (
    audit_to_csv,
    events_to_jsonl,
    prometheus_snapshot,
    spans_to_csv,
    write_exports,
)
from .hub import NULL_HUB, ObservabilityConfig, ObservabilityHub, ObsReport
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
# NOTE: repro.obs.schema (validators + the ``python -m repro.obs.schema``
# CLI) is intentionally not imported here: importing it from the package
# __init__ would trip runpy's double-import warning when the module is
# executed with ``-m``. Import it directly: ``from repro.obs import schema``.
from .spans import Span, SpanTracer

__all__ = [
    "OUTCOMES",
    "TRIGGERS",
    "ControlRoundRecord",
    "DecisionAuditLog",
    "ConsoleReporter",
    "audit_to_csv",
    "events_to_jsonl",
    "prometheus_snapshot",
    "spans_to_csv",
    "write_exports",
    "NULL_HUB",
    "ObservabilityConfig",
    "ObservabilityHub",
    "ObsReport",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
]
