"""Periodic human-readable console reporter.

Installed by the runner when ``ObservabilityConfig.console_interval``
is positive; fires on the *simulation* clock, so a report line
describes the run at a deterministic sim time even though it prints
during wall-clock execution. One line per tick:

    [obs t=40.0s] round 79 adopted w=[0.31 0.23 0.23 0.23] | emitted=61440 pending=12 blocked=3 spans=41

The reporter never mutates recorder state, so enabling it changes the
simulator's event stream (its own timer) but not any recorded metric.
"""

from __future__ import annotations

from collections.abc import Callable

from .hub import ObservabilityHub


def _fmt_weights(weights: list[float]) -> str:
    return "[" + " ".join(f"{w:.2f}" for w in weights) + "]"


class ConsoleReporter:
    """Renders one status line per tick from the hub's recorders."""

    def __init__(
        self,
        hub: ObservabilityHub,
        out: Callable[[str], None] = print,
    ) -> None:
        self.hub = hub
        self.out = out
        self.lines_emitted = 0

    def line(self) -> str:
        """Compose the current status line (pure; no side effects)."""
        hub = self.hub
        now = hub.now
        record = hub.audit.last()
        if record is None:
            decision = "priming"
        else:
            decision = f"round {record.round} {record.outcome}"
            if record.new_weights:
                decision += f" w={_fmt_weights(record.new_weights)}"
        parts = [f"[obs t={now:.1f}s] {decision}"]
        stats = []
        emitted = hub.registry.read("merger_tuples_emitted_total")
        if emitted:
            stats.append(f"emitted={emitted:.0f}")
        pending = hub.registry.read("merger_pending_tuples")
        if pending:
            stats.append(f"pending={pending:.0f}")
        blocked = hub.registry.read("splitter_block_events_total")
        if blocked:
            stats.append(f"blocked={blocked:.0f}")
        if len(hub.tracer):
            stats.append(f"spans={len(hub.tracer)}")
        if stats:
            parts.append(" | " + " ".join(stats))
        return "".join(parts)

    def tick(self) -> None:
        """Emit one report line (scheduled via ``sim.call_every``)."""
        self.out(self.line())
        self.lines_emitted += 1
