"""repro — dynamic load balancing for ordered data-parallel regions.

A complete, from-scratch reproduction of *"Dynamic Load Balancing for
Ordered Data-Parallel Regions in Distributed Streaming Systems"*
(Schneider, Wolf, Hildrum, Wu, Khandekar; MIDDLEWARE 2016): the
TCP-blocking-rate metric, per-connection blocking rate functions, the
minimax separable resource-allocation optimizer, exploration decay,
function clustering — plus the streaming dataplane substrate (splitter,
bounded connections, worker PEs, ordered merger, host capacity model) the
paper evaluates on, here as a deterministic discrete-event simulator and a
real-socket transport.

Quick start::

    from repro import ExperimentConfig, HostSpec, run_experiment

    config = ExperimentConfig(
        name="demo",
        n_workers=3,
        tuple_cost=1_000,
        host_specs=[HostSpec("node", thread_speed=2e5)],
        worker_host=[0, 0, 0],
        duration=120.0,
    )
    result = run_experiment(config, policy="lb-adaptive")
    print(result.summary())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

import importlib

__version__ = "1.0.0"

#: Public name -> defining module. Resolved lazily (PEP 562) so that
#: importing ``repro`` costs nothing: worker processes of the
#: multi-process dataplane (``python -m repro.proc.worker``) must not
#: pay for numpy, the simulator, or the experiment harness just to run
#: a select loop — eager package imports were the dominant term in
#: worker spawn cost.
_EXPORTS = {
    "BalancerConfig": "repro.core",
    "BlockingRateEstimator": "repro.core",
    "BlockingRateFunction": "repro.core",
    "LoadBalancer": "repro.core",
    "OraclePolicy": "repro.core",
    "ReroutingPolicy": "repro.core",
    "RoundRobinPolicy": "repro.core",
    "WeightConstraints": "repro.core",
    "WeightedPolicy": "repro.core",
    "agglomerative_cluster": "repro.core",
    "function_distance": "repro.core",
    "monotone_regression": "repro.core",
    "solve_minimax_binary_search": "repro.core",
    "solve_minimax_fox": "repro.core",
    "ExperimentConfig": "repro.experiments",
    "HostSpec": "repro.experiments",
    "PlacementPlan": "repro.experiments",
    "RunResult": "repro.experiments",
    "fault_recovery_scenario": "repro.experiments",
    "oracle_schedule": "repro.experiments",
    "overload_scenario": "repro.experiments",
    "plan_placement": "repro.experiments",
    "run_experiment": "repro.experiments",
    "ControlRoundRecord": "repro.obs",
    "DecisionAuditLog": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "ObsReport": "repro.obs",
    "ObservabilityConfig": "repro.obs",
    "ObservabilityHub": "repro.obs",
    "SpanTracer": "repro.obs",
    "OverloadConfig": "repro.overload",
    "OverloadDetector": "repro.overload",
    "OverloadManager": "repro.overload",
    "FaultInjector": "repro.faults",
    "FaultSchedule": "repro.faults",
    "RecoveryConfig": "repro.faults",
    "RecoveryCoordinator": "repro.faults",
    "Simulator": "repro.sim",
    "FluidRegion": "repro.sim.fluid",
    "Application": "repro.streams",
    "BurstySourceOp": "repro.streams",
    "Filter": "repro.streams",
    "FiniteSource": "repro.streams",
    "Functor": "repro.streams",
    "Host": "repro.streams",
    "InfiniteSource": "repro.streams",
    "OrderedMerger": "repro.streams",
    "ParallelRegion": "repro.streams",
    "PassThrough": "repro.streams",
    "Placement": "repro.streams",
    "RatedSource": "repro.streams",
    "RegionParams": "repro.streams",
    "RegionStalledError": "repro.streams",
    "SinkOp": "repro.streams",
    "SourceOp": "repro.streams",
    "Splitter": "repro.streams",
    "StreamGraph": "repro.streams",
    "StreamTuple": "repro.streams",
    "UnorderedMerger": "repro.streams",
    "WorkerPE": "repro.streams",
    "LoadSchedule": "repro.workloads",
    "constant_cost": "repro.workloads",
}


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "BalancerConfig",
    "BlockingRateEstimator",
    "BlockingRateFunction",
    "LoadBalancer",
    "OraclePolicy",
    "ReroutingPolicy",
    "RoundRobinPolicy",
    "WeightConstraints",
    "WeightedPolicy",
    "agglomerative_cluster",
    "function_distance",
    "monotone_regression",
    "solve_minimax_binary_search",
    "solve_minimax_fox",
    "ExperimentConfig",
    "HostSpec",
    "PlacementPlan",
    "RunResult",
    "fault_recovery_scenario",
    "oracle_schedule",
    "overload_scenario",
    "plan_placement",
    "run_experiment",
    "ControlRoundRecord",
    "DecisionAuditLog",
    "MetricsRegistry",
    "ObsReport",
    "ObservabilityConfig",
    "ObservabilityHub",
    "SpanTracer",
    "OverloadConfig",
    "OverloadDetector",
    "OverloadManager",
    "FaultInjector",
    "FaultSchedule",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "Simulator",
    "FluidRegion",
    "Application",
    "BurstySourceOp",
    "Filter",
    "FiniteSource",
    "Functor",
    "Host",
    "InfiniteSource",
    "OrderedMerger",
    "ParallelRegion",
    "PassThrough",
    "Placement",
    "RatedSource",
    "RegionParams",
    "RegionStalledError",
    "SinkOp",
    "SourceOp",
    "Splitter",
    "StreamGraph",
    "StreamTuple",
    "UnorderedMerger",
    "WorkerPE",
    "LoadSchedule",
    "constant_cost",
    "__version__",
]
