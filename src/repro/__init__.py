"""repro — dynamic load balancing for ordered data-parallel regions.

A complete, from-scratch reproduction of *"Dynamic Load Balancing for
Ordered Data-Parallel Regions in Distributed Streaming Systems"*
(Schneider, Wolf, Hildrum, Wu, Khandekar; MIDDLEWARE 2016): the
TCP-blocking-rate metric, per-connection blocking rate functions, the
minimax separable resource-allocation optimizer, exploration decay,
function clustering — plus the streaming dataplane substrate (splitter,
bounded connections, worker PEs, ordered merger, host capacity model) the
paper evaluates on, here as a deterministic discrete-event simulator and a
real-socket transport.

Quick start::

    from repro import ExperimentConfig, HostSpec, run_experiment

    config = ExperimentConfig(
        name="demo",
        n_workers=3,
        tuple_cost=1_000,
        host_specs=[HostSpec("node", thread_speed=2e5)],
        worker_host=[0, 0, 0],
        duration=120.0,
    )
    result = run_experiment(config, policy="lb-adaptive")
    print(result.summary())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.core import (
    BalancerConfig,
    BlockingRateEstimator,
    BlockingRateFunction,
    LoadBalancer,
    OraclePolicy,
    ReroutingPolicy,
    RoundRobinPolicy,
    WeightConstraints,
    WeightedPolicy,
    agglomerative_cluster,
    function_distance,
    monotone_regression,
    solve_minimax_binary_search,
    solve_minimax_fox,
)
from repro.experiments import (
    ExperimentConfig,
    HostSpec,
    PlacementPlan,
    RunResult,
    fault_recovery_scenario,
    oracle_schedule,
    overload_scenario,
    plan_placement,
    run_experiment,
)
from repro.obs import (
    ControlRoundRecord,
    DecisionAuditLog,
    MetricsRegistry,
    ObsReport,
    ObservabilityConfig,
    ObservabilityHub,
    SpanTracer,
)
from repro.overload import (
    OverloadConfig,
    OverloadDetector,
    OverloadManager,
)
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    RecoveryConfig,
    RecoveryCoordinator,
)
from repro.sim import Simulator
from repro.sim.fluid import FluidRegion
from repro.streams import (
    Application,
    BurstySourceOp,
    Filter,
    FiniteSource,
    Functor,
    Host,
    InfiniteSource,
    OrderedMerger,
    ParallelRegion,
    PassThrough,
    Placement,
    RatedSource,
    RegionParams,
    RegionStalledError,
    SinkOp,
    SourceOp,
    Splitter,
    StreamGraph,
    StreamTuple,
    UnorderedMerger,
    WorkerPE,
)
from repro.workloads import LoadSchedule, constant_cost

__version__ = "1.0.0"

__all__ = [
    "BalancerConfig",
    "BlockingRateEstimator",
    "BlockingRateFunction",
    "LoadBalancer",
    "OraclePolicy",
    "ReroutingPolicy",
    "RoundRobinPolicy",
    "WeightConstraints",
    "WeightedPolicy",
    "agglomerative_cluster",
    "function_distance",
    "monotone_regression",
    "solve_minimax_binary_search",
    "solve_minimax_fox",
    "ExperimentConfig",
    "HostSpec",
    "PlacementPlan",
    "RunResult",
    "fault_recovery_scenario",
    "oracle_schedule",
    "overload_scenario",
    "plan_placement",
    "run_experiment",
    "ControlRoundRecord",
    "DecisionAuditLog",
    "MetricsRegistry",
    "ObsReport",
    "ObservabilityConfig",
    "ObservabilityHub",
    "SpanTracer",
    "OverloadConfig",
    "OverloadDetector",
    "OverloadManager",
    "FaultInjector",
    "FaultSchedule",
    "RecoveryConfig",
    "RecoveryCoordinator",
    "Simulator",
    "FluidRegion",
    "Application",
    "BurstySourceOp",
    "Filter",
    "FiniteSource",
    "Functor",
    "Host",
    "InfiniteSource",
    "OrderedMerger",
    "ParallelRegion",
    "PassThrough",
    "Placement",
    "RatedSource",
    "RegionParams",
    "RegionStalledError",
    "SinkOp",
    "SourceOp",
    "Splitter",
    "StreamGraph",
    "StreamTuple",
    "UnorderedMerger",
    "WorkerPE",
    "LoadSchedule",
    "constant_cost",
    "__version__",
]
