"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                    — list reproducible figures and their benches;
* ``figure <id>``             — run one figure's experiment(s) and print the
  report (e.g. ``figure fig8-top``, ``figure fig11-bottom``);
* ``demo``                    — the quickstart scenario;
* ``sweep --pes 2,4,8 ...``   — a custom half-loaded sweep.

The CLI is a thin veneer over :mod:`repro.experiments`; anything beyond a
quick look should use the library API or the benches.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from collections.abc import Sequence

from repro.analysis.heatmap import ClusterHeatmap
from repro.analysis.report import render_weight_table
from repro.experiments import figures
from repro.experiments.results import format_sweep_table
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_sweep
from repro.obs.hub import ObservabilityConfig


def _cmd_list(_args) -> int:
    print(f"{'figure':<14} {'bench':<36} description")
    for entry in figures.FIGURES:
        print(f"{entry.figure:<14} {entry.bench:<36} {entry.description}")
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the in-depth commands."""
    parser.add_argument(
        "--obs", action="store_true",
        help="record metrics, the decision audit log, and spans",
    )
    parser.add_argument(
        "--obs-jsonl", metavar="PATH", default=None,
        help="write the observability event stream as JSONL (implies --obs)",
    )
    parser.add_argument(
        "--obs-prom", metavar="PATH", default=None,
        help="write a Prometheus text snapshot (implies --obs)",
    )
    parser.add_argument(
        "--obs-console", metavar="SECS", type=float, default=0.0,
        help="print a console report line every SECS simulated seconds "
        "(implies --obs)",
    )


def _apply_obs(config, args):
    """Enable observability on ``config`` when any obs flag was given."""
    wanted = (
        getattr(args, "obs", False)
        or getattr(args, "obs_jsonl", None)
        or getattr(args, "obs_prom", None)
        or getattr(args, "obs_console", 0.0) > 0
    )
    if not wanted:
        return config
    return config.with_observability(ObservabilityConfig(
        console_interval=args.obs_console,
        jsonl_path=args.obs_jsonl,
        prometheus_path=args.obs_prom,
    ))


def _obs_summary(result) -> str:
    """A few lines digesting the run's observability report."""
    report = result.obs
    outcomes: dict[str, int] = {}
    for record in report.audit:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
    kinds: dict[str, int] = {}
    for span in report.spans:
        kinds[span["kind"]] = kinds.get(span["kind"], 0) + 1
    lines = [
        f"observability: {len(report.events)} events, "
        f"{len(report.audit)} audit rounds, {len(report.spans)} spans, "
        f"{len(report.metrics)} metric samples",
    ]
    if outcomes:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(outcomes.items())
        )
        lines.append(f"  audit outcomes: {pairs}")
    if kinds:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        lines.append(f"  span kinds: {pairs}")
    return "\n".join(lines)


def _run_indepth(config, *, times: Sequence[float], args=None) -> int:
    if args is not None:
        config = _apply_obs(config, args)
    result = run_experiment(config, "lb-adaptive")
    print(result.summary())
    print()
    print(render_weight_table(
        result.weight_series, times=times,
        title="allocation weights over time:",
    ))
    if result.obs is not None:
        print()
        print(_obs_summary(result))
        if args is not None and args.obs_jsonl:
            print(f"  wrote events -> {args.obs_jsonl}")
        if args is not None and args.obs_prom:
            print(f"  wrote metrics -> {args.obs_prom}")
    return 0


def _cmd_figure(args) -> int:
    name = args.id.lower().replace("_", "-").replace(".", "")
    if name in ("fig8-top", "fig08-top"):
        return _run_indepth(
            figures.fig08_top_config(),
            times=[5, 15, 30, 50, 100, 200, 300, 399],
            args=args,
        )
    if name in ("fig8-bottom", "fig08-bottom"):
        return _run_indepth(
            figures.fig08_bottom_config(),
            times=[10, 30, 60, 100, 200, 300, 399],
            args=args,
        )
    if name in ("fig11-top",):
        return _run_indepth(
            figures.fig11_top_config(),
            times=[10, 30, 60, 120, 200, 299],
            args=args,
        )
    if name in ("fig9", "fig09", "fig10"):
        builder = figures.fig09_config if name != "fig10" else figures.fig10_config
        pes = [2, 4, 8] if name != "fig10" else [4, 8]
        for dynamic in (False, True):
            rows = run_sweep(
                lambda n: builder(n, dynamic=dynamic),
                pes,
                ("oracle", "lb-static", "lb-adaptive", "rr"),
            )
            print(format_sweep_table(
                rows,
                title=f"{name} {'dynamic' if dynamic else 'static'} "
                "(times normalized to Oracle*):",
            ))
            print()
        return 0
    if name in ("fig11-bottom",):
        for n in (8, 16, 24):
            for label, placement, policy in (
                ("All-Fast", "all-fast", "rr"),
                ("All-Slow", "all-slow", "rr"),
                ("Even-RR", "even", "rr"),
                ("Even-LB", "even", "lb-adaptive"),
            ):
                result = run_experiment(
                    figures.fig11_bottom_config(n, placement),
                    policy,
                    record_series=False,
                )
                print(f"{n:>3} PEs {label:>9}: exec "
                      f"{result.execution_time:8.1f}s  tput "
                      f"{result.final_throughput():8.1f}/s")
        return 0
    if name in ("fig12",):
        result = run_experiment(figures.fig12_config(), "lb-adaptive")
        heatmap = ClusterHeatmap.from_snapshots(result.cluster_snapshots, 64)
        print(heatmap.render(max_rows=20))
        end = result.sim_time - 1.0
        for label, group in (("100x", range(20)), ("5x", range(20, 40)),
                             ("1x", range(40, 64))):
            mean = statistics.mean(
                result.weight_series[j].value_at(end) for j in group
            )
            print(f"mean final weight {label:>4}: {mean / 10:.2f}%")
        return 0
    if name in ("fig13",):
        rows = run_sweep(
            lambda n: figures.fig13_config(n),
            [32, 64],
            ("oracle", "lb-static", "lb-adaptive", "rr"),
        )
        print(format_sweep_table(rows, title="fig13:"))
        return 0
    if name in ("sec44", "sec4-4"):
        for cost in (1_000, 10_000):
            config = figures.sec44_config(cost)
            rr = run_experiment(config, "rr", record_series=False)
            rt = run_experiment(config, "reroute", record_series=False)
            print(f"base {cost}: rerouted {rt.reroute_fraction():.2%}, "
                  f"gain {rr.execution_time / rt.execution_time:.2f}x")
        return 0
    print(f"unknown figure {args.id!r}; try `python -m repro list`",
          file=sys.stderr)
    return 2


def _cmd_demo(args) -> int:
    if args.backend == "process":
        return _run_process_demo(args)
    return _run_indepth(
        figures.fig08_top_config(duration=200.0),
        times=[5, 15, 25, 50, 100, 150, 199],
        args=args,
    )


def _run_process_demo(args) -> int:
    """``demo --backend=process``: real workers, a real kill, recovery."""
    from repro.experiments.process_backend import process_scenario

    kill = None if args.kill < 0 else args.kill
    if kill is not None and kill >= args.workers:
        print(f"--kill {kill} needs a worker index below --workers "
              f"{args.workers}", file=sys.stderr)
        return 2
    config = process_scenario(
        n_workers=args.workers,
        total_tuples=args.tuples,
        crash_worker=kill,
        crash_at_emitted=(
            max(1, args.tuples // 8) if kill is not None else None
        ),
        batch_size=args.batch_size,
    )
    config = _apply_obs(config, args)
    wire = (
        f"batched wire (B={args.batch_size})"
        if args.batch_size > 1 else "per-tuple wire"
    )
    if kill is None:
        print(f"process backend: {args.workers} worker processes, "
              f"{args.tuples} tuples, {wire}")
    else:
        print(f"process backend: {args.workers} worker processes, "
              f"{args.tuples} tuples, {wire}; SIGKILL worker {kill} an "
              f"eighth of the way through")
    result = run_experiment(config, "rr")
    print(result.summary())
    if result.obs is not None:
        print()
        print(_obs_summary(result))
        if args.obs_jsonl:
            print(f"  wrote events -> {args.obs_jsonl}")
        if args.obs_prom:
            print(f"  wrote metrics -> {args.obs_prom}")
    return 0


def _cmd_sweep(args) -> int:
    pes = [int(x) for x in args.pes.split(",")]
    rows = run_sweep(
        lambda n: figures.fig09_config(n, dynamic=args.dynamic),
        pes,
        ("oracle", "lb-static", "lb-adaptive", "rr"),
    )
    print(format_sweep_table(rows, title="custom sweep:"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible figures").set_defaults(
        func=_cmd_list
    )
    figure = sub.add_parser("figure", help="run one figure's experiments")
    figure.add_argument("id", help="figure id, e.g. fig8-top, fig12, sec44")
    _add_obs_flags(figure)
    figure.set_defaults(func=_cmd_figure)
    demo = sub.add_parser("demo", help="a two-minute demonstration")
    demo.add_argument(
        "--backend", choices=("sim", "process"), default="sim",
        help="'sim' runs the simulator demo; 'process' runs real worker "
        "processes over sockets with a real mid-run SIGKILL",
    )
    demo.add_argument(
        "--workers", type=int, default=4,
        help="worker process count (process backend; default 4)",
    )
    demo.add_argument(
        "--tuples", type=int, default=400,
        help="tuple budget (process backend; default 400)",
    )
    demo.add_argument(
        "--kill", type=int, default=1, metavar="J",
        help="SIGKILL worker J an eighth of the way through "
        "(process backend; -1 disables; default 1)",
    )
    demo.add_argument(
        "--batch-size", type=int, default=1, metavar="B",
        help="tuples per DATA_BATCH wire frame (process backend; "
        "1 = per-tuple frames; default 1)",
    )
    _add_obs_flags(demo)
    demo.set_defaults(func=_cmd_demo)
    sweep = sub.add_parser("sweep", help="custom half-10x-loaded sweep")
    sweep.add_argument("--pes", default="2,4,8", help="comma-separated PE counts")
    sweep.add_argument("--dynamic", action="store_true",
                       help="remove the load an eighth through")
    sweep.set_defaults(func=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
