"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the event queue. Entities
(splitter, connections, worker PEs, merger, samplers) are plain objects that
schedule callbacks on the simulator; there is no thread or coroutine
machinery, which keeps runs deterministic and fast.

Time is in *simulated seconds*. The paper reports everything against
elapsed seconds, so simulated seconds preserve every reported ratio.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """Deterministic event-driven simulator.

    Typical use::

        sim = Simulator()
        sim.call_at(1.0, lambda: ...)
        sim.call_after(0.5, lambda: ...)
        sim.run_until(10.0)
    """

    __slots__ = ("_queue", "_now", "_running", "_stopped", "events_processed")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        #: Total events fired so far; useful for performance reporting.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        return self._queue.push(time, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback)

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: float | None = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``interval`` seconds.

        The first firing is at ``start`` (default: one interval from now).
        Returns a zero-argument function that cancels the repetition.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        state: dict[str, Event | None] = {"event": None}
        active = True

        def fire() -> None:
            callback()
            if active:
                state["event"] = self.call_after(interval, fire)

        first = start if start is not None else self._now + interval
        state["event"] = self.call_at(first, fire)

        def cancel() -> None:
            nonlocal active
            active = False
            event = state["event"]
            if event is not None:
                event.cancel()

        return cancel

    def stop(self) -> None:
        """Request the current :meth:`run_until` loop to return."""
        self._stopped = True

    def run_until(self, end_time: float) -> None:
        """Fire events in order until the clock reaches ``end_time``.

        The clock is left exactly at ``end_time`` (even if the queue drains
        earlier), so back-to-back ``run_until`` calls behave like one long
        run.
        """
        if self._running:
            raise SimulationError("run_until is not reentrant")
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before now {self._now}"
            )
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self._queue.pop()
                assert event is not None  # peek said there was one
                self._now = event.time
                self.events_processed += 1
                event.callback()
            if not self._stopped:
                self._now = end_time
        finally:
            self._running = False

    def run_until_idle(self, max_time: float) -> None:
        """Run until the queue drains, but never past ``max_time``."""
        if self._running:
            raise SimulationError("run_until_idle is not reentrant")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > max_time:
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                self.events_processed += 1
                event.callback()
        finally:
            self._running = False
