"""The discrete-event simulation engine.

A :class:`Simulator` owns the virtual clock and the event queue. Entities
(splitter, connections, worker PEs, merger, samplers) are plain objects that
schedule callbacks on the simulator; there is no thread or coroutine
machinery, which keeps runs deterministic and fast.

Time is in *simulated seconds*. The paper reports everything against
elapsed seconds, so simulated seconds preserve every reported ratio.

Two scheduling flavours exist:

* :meth:`Simulator.call_at` / :meth:`Simulator.call_after` return an
  :class:`~repro.sim.events.Event` handle that can be cancelled;
* :meth:`Simulator.schedule_at` / :meth:`Simulator.schedule_after` return
  nothing — the engine recycles their heap cells through a free list, so
  the per-tuple traffic that dominates every experiment allocates no
  event objects. Use these on hot paths that never cancel.

:meth:`Simulator.call_every` is backed by a reusable timer that re-arms a
single heap cell each tick instead of allocating a fresh event, so
samplers and controllers cost nothing per firing beyond their callback.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Callable
from heapq import heappop, heappush

from repro.sim.events import _FREE_LIST_MAX, Event, EventQueue
from repro.util.perf import PerfCounters


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class _RepeatingTimer:
    """A ``call_every`` repetition that reuses one heap cell per tick."""

    __slots__ = ("_sim", "_interval", "_callback", "_cell", "_active")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], None],
        first: float,
    ) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._active = True
        # The timer itself occupies the handle slot, which marks the cell
        # as non-recyclable: after each firing the cell is re-armed here.
        self._cell = sim._queue.new_cell(first, self._fire, self)

    def _fire(self) -> None:
        self._callback()
        if self._active:
            sim = self._sim
            sim._queue.repush(self._cell, sim._now + self._interval)

    def cancel(self) -> None:
        self._active = False
        self._sim._queue.cancel_cell(self._cell)


class Simulator:
    """Deterministic event-driven simulator.

    Typical use::

        sim = Simulator()
        sim.call_at(1.0, lambda: ...)
        sim.call_after(0.5, lambda: ...)
        sim.run_until(10.0)
    """

    __slots__ = (
        "_queue",
        "_heap",
        "_free",
        "_now",
        "_running",
        "_stopped",
        "_trace",
        "events_processed",
        "events_coalesced",
    )

    def __init__(self) -> None:
        self._queue = EventQueue()
        # Direct aliases of the queue's heap and free list. Both lists are
        # only ever mutated in place (compaction uses slice assignment),
        # so the aliases stay valid for the simulator's lifetime and save
        # an attribute hop per scheduled event.
        self._heap = self._queue._heap
        self._free = self._queue._free
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._trace: "hashlib._Hash | None" = None
        #: Total events fired so far; useful for performance reporting.
        self.events_processed = 0
        #: Per-tuple events the batched dataplane avoided scheduling
        #: (bumped by batching entities, not the engine itself).
        self.events_coalesced = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ----------------------------------------------------------- scheduling

    # The four scheduling entry points inline EventQueue.push / .schedule
    # (including Event construction via __new__) instead of delegating:
    # they run once per event on every hot path, and the saved method
    # dispatch + Event.__init__ frame is a measurable slice of the event
    # budget (see bench_core_hotpath.py).

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        event = Event.__new__(Event)
        cell = [time, seq, callback, event, True]
        event._cell = cell
        event._queue = queue
        heappush(self._heap, cell)
        return event

    def call_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        event = Event.__new__(Event)
        cell = [self._now + delay, seq, callback, event, True]
        event._cell = cell
        event._queue = queue
        heappush(self._heap, cell)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Hot-path :meth:`call_at`: no cancellation handle, no allocation."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        free = self._free
        if free:
            cell = free.pop()
            cell[0] = time
            cell[1] = seq
            cell[2] = callback
            cell[4] = True
        else:
            cell = [time, seq, callback, None, True]
        heappush(self._heap, cell)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Hot-path :meth:`call_after`: no cancellation handle, no allocation."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        free = self._free
        if free:
            cell = free.pop()
            cell[0] = self._now + delay
            cell[1] = seq
            cell[2] = callback
            cell[4] = True
        else:
            cell = [self._now + delay, seq, callback, None, True]
        heappush(self._heap, cell)

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start: float | None = None,
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``interval`` seconds.

        The first firing is at ``start`` (default: one interval from now).
        Returns a zero-argument function that cancels the repetition. The
        repetition reuses a single heap cell, so each tick allocates no
        event objects.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        first = start if start is not None else self._now + interval
        if first < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {first} < now {self._now}"
            )
        return _RepeatingTimer(self, interval, callback, first).cancel

    # ------------------------------------------------------------- metrics

    @property
    def perf(self) -> PerfCounters:
        """Snapshot of the engine's performance counters."""
        queue = self._queue
        return PerfCounters(
            events_processed=self.events_processed,
            events_scheduled=queue.scheduled_total,
            events_cancelled=queue.cancellations,
            heap_compactions=queue.compactions,
            live_events=len(queue),
            events_coalesced=self.events_coalesced,
        )

    def attach_observability(self, hub) -> None:
        """Register the engine's counters as callback gauges on ``hub``.

        Pure registration: the gauges read live attributes only when the
        registry is collected, so the event loop itself is untouched.
        """
        registry = hub.registry
        queue = self._queue
        registry.gauge_fn(
            "sim_events_processed",
            lambda: self.events_processed,
            help="Events fired by the simulator loop",
        )
        registry.gauge_fn(
            "sim_events_coalesced",
            lambda: self.events_coalesced,
            help="Per-tuple events the batched dataplane avoided",
        )
        registry.gauge_fn(
            "sim_events_scheduled",
            lambda: queue.scheduled_total,
            help="Events ever pushed onto the queue",
        )
        registry.gauge_fn(
            "sim_events_cancelled",
            lambda: queue.cancellations,
            help="Events cancelled before firing",
        )
        registry.gauge_fn(
            "sim_heap_compactions",
            lambda: queue.compactions,
            help="Times the event heap compacted dead cells",
        )
        registry.gauge_fn(
            "sim_live_events",
            lambda: len(queue),
            help="Events currently pending in the queue",
        )
        registry.gauge_fn(
            "sim_clock_seconds",
            lambda: self._now,
            help="Current simulated time",
        )

    def enable_tracing(self) -> None:
        """Hash every fired event's ``(time, seq)`` into a golden trace.

        The digest (:meth:`trace_digest`) pins the exact event order of a
        run; two runs with identical semantics produce identical digests.
        Adds one branch per event when disabled, a hash update when on.
        """
        self._trace = hashlib.blake2b(digest_size=16)

    def trace_digest(self) -> str:
        """Hex digest of the event trace so far (requires tracing enabled)."""
        if self._trace is None:
            raise SimulationError("tracing is not enabled")
        return self._trace.hexdigest()

    # ------------------------------------------------------------- running

    def stop(self) -> None:
        """Request the current :meth:`run_until` loop to return."""
        self._stopped = True

    def _run(self, end_time: float) -> None:
        """Fire all due events in order; the shared core of both run modes.

        The queue's ``pop_due``/``recycle`` pair is inlined into the loop
        body: at ~1M events/sec the two method frames per event are the
        single largest remaining cost. ``queue._heap`` and ``queue._free``
        are hoisted out of the loop — both are mutated strictly in place
        (:meth:`EventQueue._compact` compacts via slice assignment, never
        rebinding). The traced branch is a separate loop body so the
        untraced hot path pays no per-event trace check.
        ``events_processed`` advances per event (not batched at loop
        exit) because observability gauges read it mid-run.
        """
        if self._trace is not None:
            self._run_traced(end_time)
            return
        queue = self._queue
        heap = queue._heap
        free = self._free
        pop = heappop
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                # Inline EventQueue.pop_due(end_time).
                while True:
                    if not heap:
                        return
                    cell = heap[0]
                    if cell[2] is None:
                        pop(heap)
                        queue._dead -= 1
                        continue
                    if cell[0] > end_time:
                        return
                    pop(heap)
                    break
                cell[4] = False
                self._now = cell[0]
                self.events_processed += 1
                callback = cell[2]
                handle = cell[3]
                if handle is None:
                    # Handle-less cell: no reference escaped, safe to
                    # reuse (inline EventQueue.recycle).
                    if len(free) < _FREE_LIST_MAX:
                        cell[2] = None
                        free.append(cell)
                elif type(handle) is Event:
                    # The cell and its handle reference each other; once
                    # fired the pair would be cyclic garbage only the
                    # cycle collector could reclaim. Dropping the
                    # back-reference here lets plain refcounting free
                    # both the moment the caller lets go of the handle.
                    # The cell itself is NOT recycled: the handle may
                    # still be held, and a stale cancel() must stay a
                    # no-op (guarded by the alive flag).
                    cell[3] = None
                callback()
        finally:
            self._running = False

    def _run_traced(self, end_time: float) -> None:
        """:meth:`_run` with the golden-trace hash folded into the loop."""
        queue = self._queue
        heap = queue._heap
        free = self._free
        pop = heappop
        trace = self._trace
        pack = struct.Struct("<dq").pack
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                while True:
                    if not heap:
                        return
                    cell = heap[0]
                    if cell[2] is None:
                        pop(heap)
                        queue._dead -= 1
                        continue
                    if cell[0] > end_time:
                        return
                    pop(heap)
                    break
                cell[4] = False
                self._now = cell[0]
                self.events_processed += 1
                trace.update(pack(cell[0], cell[1]))
                callback = cell[2]
                handle = cell[3]
                if handle is None:
                    if len(free) < _FREE_LIST_MAX:
                        cell[2] = None
                        free.append(cell)
                elif type(handle) is Event:
                    cell[3] = None
                callback()
        finally:
            self._running = False

    def run_until(self, end_time: float) -> None:
        """Fire events in order until the clock reaches ``end_time``.

        The clock is left exactly at ``end_time`` (even if the queue drains
        earlier), so back-to-back ``run_until`` calls behave like one long
        run.
        """
        if self._running:
            raise SimulationError("run_until is not reentrant")
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before now {self._now}"
            )
        self._run(end_time)
        if not self._stopped:
            self._now = end_time

    def run_until_idle(self, max_time: float) -> None:
        """Run until the queue drains, but never past ``max_time``."""
        if self._running:
            raise SimulationError("run_until_idle is not reentrant")
        self._run(max_time)
