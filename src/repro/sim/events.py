"""Event and event-queue primitives for the discrete-event engine.

Determinism matters: two events scheduled for the same instant fire in the
order they were scheduled (FIFO tie-break on a monotone sequence number).
Every experiment in the repository is therefore reproducible bit-for-bit.

Hot-path representation
-----------------------

The heap does not store :class:`Event` objects. Each entry is a plain
5-slot list cell ``[time, seq, callback, handle, alive]``:

* list-vs-list comparison runs at C speed and never looks past ``seq``
  (sequence numbers are unique), so no ``__lt__`` is ever dispatched to
  Python code;
* the hand-off path that dominates simulations (:meth:`EventQueue.schedule`)
  returns no handle at all, which lets the engine recycle the cell through
  a free list — steady-state tuple traffic allocates no per-event objects;
* :meth:`EventQueue.push` wraps the cell in a lightweight :class:`Event`
  handle (stored in slot 3) so callers can cancel it. Cells with handles
  are never recycled, and the ``alive`` flag makes a stale ``cancel()``
  (after the event fired) a safe no-op.

Cancellation is lazy (``callback`` set to ``None``; skipped on pop), but
the queue tracks a live-event count so ``__len__`` is exact, and compacts
the heap when cancelled entries start to dominate.

Cell index constants: ``_TIME=0, _SEQ=1, _CB=2, _HANDLE=3, _ALIVE=4``.
"""

from __future__ import annotations

from collections.abc import Callable
from heapq import heapify, heappop, heappush

#: Upper bound on recycled cells kept around between bursts.
_FREE_LIST_MAX = 512
#: Compaction triggers only once at least this many dead entries piled up.
_COMPACT_MIN_DEAD = 64


class Event:
    """Handle to a scheduled callback.

    Ordering of the underlying queue is by ``(time, seq)``; ``seq`` is the
    global scheduling order, so simultaneous events fire FIFO. A cancelled
    event stays in the heap but is skipped when popped (lazy deletion, the
    standard heapq idiom).
    """

    __slots__ = ("_cell", "_queue")

    def __init__(self, cell: list, queue: "EventQueue") -> None:
        self._cell = cell
        self._queue = queue

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._cell[0]

    @property
    def seq(self) -> int:
        """Global scheduling order (FIFO tie-break)."""
        return self._cell[1]

    @property
    def callback(self) -> Callable[[], None] | None:
        """The scheduled callback (``None`` once cancelled)."""
        return self._cell[2]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cell[2] is None

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it.

        Cancelling an event that already fired (or cancelling twice) is a
        no-op — the ``alive`` flag guards the queue's live count.
        """
        self._queue.cancel_cell(self._cell)


class EventQueue:
    """A priority queue of scheduled callbacks with lazy cancellation."""

    __slots__ = (
        "_heap",
        "_seq",
        "_dead",
        "_free",
        "compactions",
        "cancellations",
    )

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._seq = 0
        # Cancelled-but-unpopped entries still sitting in the heap. The
        # live count is derived (len(heap) - dead) so the per-event
        # schedule/pop paths maintain no counter at all — only the rare
        # cancellation path touches it.
        self._dead = 0
        self._free: list[list] = []
        #: Heap rebuilds triggered by cancelled-entry pile-up (diagnostic).
        self.compactions = 0
        #: Total events cancelled over the queue's lifetime (diagnostic).
        self.cancellations = 0

    def __len__(self) -> int:
        """Number of *live* (scheduled, not cancelled) events."""
        return len(self._heap) - self._dead

    @property
    def scheduled_total(self) -> int:
        """Total events ever scheduled (live + fired + cancelled)."""
        return self._seq

    # ------------------------------------------------------------ scheduling

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        seq = self._seq
        self._seq = seq + 1
        cell = [time, seq, callback, None, True]
        event = Event(cell, self)
        cell[3] = event
        heappush(self._heap, cell)
        return event

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at ``time`` without returning a handle.

        The hot path: because no handle escapes, the engine may recycle the
        heap cell after firing, so steady-state traffic allocates nothing.
        Events scheduled this way cannot be cancelled.
        """
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            cell = free.pop()
            cell[0] = time
            cell[1] = seq
            cell[2] = callback
            cell[4] = True
        else:
            cell = [time, seq, callback, None, True]
        heappush(self._heap, cell)

    def repush(self, cell: list, time: float) -> None:
        """Re-arm a previously fired cell at ``time`` (reusable timers).

        The caller owns the cell (its ``handle`` slot marks it
        non-recyclable) and guarantees it is not currently in the heap.
        """
        seq = self._seq
        self._seq = seq + 1
        cell[0] = time
        cell[1] = seq
        cell[4] = True
        heappush(self._heap, cell)

    def new_cell(
        self, time: float, callback: Callable[[], None], owner: object
    ) -> list:
        """Schedule a fresh cell owned by ``owner`` and return it.

        ``owner`` is stored in the handle slot, which (being non-``None``)
        keeps the engine from recycling the cell — the owner may
        :meth:`repush` it after it fires.
        """
        seq = self._seq
        self._seq = seq + 1
        cell = [time, seq, callback, owner, True]
        heappush(self._heap, cell)
        return cell

    # ---------------------------------------------------------- cancellation

    def cancel_cell(self, cell: list) -> None:
        """Cancel a scheduled cell; a no-op once it fired or was cancelled."""
        if cell[4]:
            cell[4] = False
            cell[2] = None
            dead = self._dead + 1
            self._dead = dead
            self.cancellations += 1
            if dead > _COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is fully determined by ``(time, seq)``, so rebuilding the
        heap's internal layout cannot change event order. The heap list is
        mutated in place (slice assignment) rather than rebound so the
        engine loop may safely keep a direct reference to it.
        """
        heap = self._heap
        heap[:] = [cell for cell in heap if cell[2] is not None]
        heapify(heap)
        self._dead = 0
        self.compactions += 1

    # -------------------------------------------------------------- popping

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty.

        Returns the same handle object :meth:`push` returned. Handle-less
        cells (from :meth:`schedule`) get a wrapper created on demand.
        """
        heap = self._heap
        while heap:
            cell = heappop(heap)
            if cell[2] is None:
                self._dead -= 1
                continue
            cell[4] = False
            handle = cell[3]
            if not isinstance(handle, Event):
                handle = Event(cell, self)
                cell[3] = handle
            return handle
        return None

    def pop_due(self, limit: float) -> list | None:
        """Pop the earliest live cell with ``time <= limit`` (engine loop).

        Returns the raw cell, or ``None`` when the next live event is past
        ``limit`` (it stays queued) or the queue is empty.
        """
        heap = self._heap
        while heap:
            cell = heap[0]
            if cell[2] is None:
                heappop(heap)
                self._dead -= 1
                continue
            if cell[0] > limit:
                return None
            heappop(heap)
            cell[4] = False
            return cell
        return None

    def recycle(self, cell: list) -> None:
        """Return a fired, handle-less cell to the free list."""
        free = self._free
        if len(free) < _FREE_LIST_MAX:
            cell[2] = None  # drop the callback reference promptly
            free.append(cell)

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else None
