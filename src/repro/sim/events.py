"""Event and event-queue primitives for the discrete-event engine.

Determinism matters: two events scheduled for the same instant fire in the
order they were scheduled (FIFO tie-break on a monotone sequence number).
Every experiment in the repository is therefore reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; ``seq`` is the global scheduling order,
    so simultaneous events fire FIFO. A cancelled event stays in the heap
    but is skipped when popped (lazy deletion, the standard heapq idiom).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects with lazy cancellation."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        # May overcount by cancelled events; exactness is not needed by
        # callers (they only test emptiness via pop()).
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time`` and return its handle."""
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
