"""Fluid (steady-state) approximation of the dataplane.

A deliberately simple analytic stand-in for the event simulator, capturing
the paper's steady-state structure:

* With allocation weights ``w_j`` (fractions of traffic) and worker
  service rates ``mu_j`` (tuples/sec), the region's throughput is gated by
  its most overloaded connection:  ``lambda = min(sigma, min_j mu_j / w_j)``
  where ``sigma`` is the splitter's own maximum send rate.
* The splitter spends ``lambda / sigma`` of its time sending; the rest of
  the time it is blocked — and because it is single-threaded, *all* of
  that blocking lands on one connection, the **draft leader** (Section
  4.2). In the fluid model the leader is the bottleneck connection, and it
  is sticky: it only changes when another connection becomes strictly more
  loaded, mimicking the paper's observation that "the draft leader is
  likely to change less frequently than the measurement periods".

The fluid model exposes the same observable surface as the simulated
region — cumulative :class:`~repro.net.blocking.BlockingCounter` per
connection plus a weight setter — so the
:class:`~repro.core.balancer.LoadBalancer` runs against it unchanged. It
is used for fast controller unit tests and ablations; paper figures use
the event simulator.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.net.blocking import BlockingCounter
from repro.util.validation import check_positive


class FluidRegion:
    """Analytic steady-state model of splitter + N workers + merge."""

    def __init__(
        self,
        service_rates: Sequence[float],
        *,
        splitter_rate: float = 1e9,
        resolution: int = 1000,
        leader_stickiness: float = 1e-9,
    ) -> None:
        if not service_rates:
            raise ValueError("need at least one worker")
        for j, mu in enumerate(service_rates):
            check_positive(f"service_rates[{j}]", mu)
        check_positive("splitter_rate", splitter_rate)
        check_positive("resolution", resolution)
        self._mu = [float(m) for m in service_rates]
        self.splitter_rate = float(splitter_rate)
        self.resolution = int(resolution)
        self.blocking_counters = [BlockingCounter() for _ in service_rates]
        self.time = 0.0
        self.tuples_emitted = 0.0
        base, rem = divmod(self.resolution, len(self._mu))
        self._weights = [
            base + (1 if j < rem else 0) for j in range(len(self._mu))
        ]
        self._leader: int | None = None
        self._stickiness = leader_stickiness

    @property
    def n_workers(self) -> int:
        """Width of the region."""
        return len(self._mu)

    @property
    def weights(self) -> list[int]:
        """Current allocation weights (copy)."""
        return list(self._weights)

    def set_weights(self, weights: Sequence[int]) -> None:
        """Adopt new allocation weights (integer units of ``1/resolution``)."""
        if len(weights) != len(self._mu):
            raise ValueError(
                f"expected {len(self._mu)} weights, got {len(weights)}"
            )
        if sum(weights) != self.resolution:
            raise ValueError(
                f"weights must sum to {self.resolution}, got {sum(weights)}"
            )
        self._weights = [int(w) for w in weights]

    def set_service_rate(self, worker: int, rate: float) -> None:
        """Change a worker's capacity (e.g. external load arrives/leaves)."""
        check_positive("rate", rate)
        self._mu[worker] = float(rate)

    def throughput(self) -> float:
        """Steady-state region throughput in tuples/sec."""
        limit = self.splitter_rate
        for w, mu in zip(self._weights, self._mu):
            if w > 0:
                limit = min(limit, mu * self.resolution / w)
        return limit

    def bottleneck(self) -> int | None:
        """The most loaded connection, or ``None`` if the splitter gates."""
        best_j: int | None = None
        best_ratio = self.splitter_rate
        for j, (w, mu) in enumerate(zip(self._weights, self._mu)):
            if w == 0:
                continue
            ratio = mu * self.resolution / w
            if ratio < best_ratio:
                best_ratio = ratio
                best_j = j
        return best_j

    def advance(self, dt: float) -> None:
        """Advance steady state by ``dt`` seconds, accruing blocking time.

        The splitter's idle fraction ``1 - lambda/sigma`` is charged
        entirely to the (sticky) draft leader.
        """
        check_positive("dt", dt)
        rate = self.throughput()
        self.tuples_emitted += rate * dt
        blocked_fraction = max(0.0, 1.0 - rate / self.splitter_rate)
        self.time += dt
        if blocked_fraction <= 0.0:
            self._leader = None
            return
        leader = self._elect_leader()
        if leader is not None:
            self.blocking_counters[leader].add(blocked_fraction * dt)

    def _elect_leader(self) -> int | None:
        bottleneck = self.bottleneck()
        if bottleneck is None:
            self._leader = None
            return None
        if self._leader is not None and self._weights[self._leader] > 0:
            # Sticky: keep the incumbent while it is still (within
            # tolerance) as loaded as the strict bottleneck.
            incumbent = (
                self._mu[self._leader]
                * self.resolution
                / self._weights[self._leader]
            )
            strict = (
                self._mu[bottleneck]
                * self.resolution
                / self._weights[bottleneck]
            )
            if incumbent <= strict * (1.0 + self._stickiness):
                return self._leader
        self._leader = bottleneck
        return bottleneck
