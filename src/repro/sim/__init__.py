"""Discrete-event simulation substrate.

The paper evaluates on a real IBM Streams cluster. We do not have that
cluster (or IBM Streams), so the primary experiment substrate is a
deterministic discrete-event simulator of the dataplane. The engine here is
generic; the streaming-specific entities live in :mod:`repro.net` and
:mod:`repro.streams`.

Two models are provided:

* :class:`Simulator` — the event-driven engine used by every paper-figure
  experiment. Backpressure, drafting, and the ordered merge are emergent.
* :mod:`repro.sim.fluid` — a steady-state fluid approximation used for fast
  controller unit tests and ablations.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue

__all__ = ["Simulator", "Event", "EventQueue"]
