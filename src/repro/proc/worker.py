"""The worker process: ``python -m repro.proc.worker``.

One worker = one OS process = one duplex TCP connection back to the
parent region. The loop is deliberately primitive — a single thread
multiplexing reads, service work, and heartbeats with ``select`` — so
that the only ways it stops are exactly the failure modes the
supervisor is built to handle:

* ``SIGKILL`` — the process vanishes; the parent sees a dead socket and
  missed heartbeats.
* ``SIGSTOP`` — the process freezes mid-loop; the socket stays open but
  heartbeats stop (the piggybacked-liveness case a separate health port
  would get wrong).
* ``SIGTERM`` — *graceful drain*: the worker finishes every tuple it
  has already read, sends ``BYE``, and exits 0.
* ``EOS`` from the parent — same drain, initiated over the data channel.
* EOF from the parent — the region is gone; exit quietly.

Service work is simulated per tuple from the cost carried in each DATA
frame times the worker's ``--multiplier`` (heterogeneous capacity) times
a runtime CONTROL multiplier (host-slowdown faults). ``--mode spin``
burns CPU for the duration (the multi-core benchmark), ``--mode sleep``
sleeps it (cheap tests).

Batched wire protocol: tuples arriving in a ``DATA_BATCH`` run are
serviced a whole run per wakeup, and their results accumulate into a
single cumulative ``RESULT_BATCH`` ack — flushed when the queue drains,
when a heartbeat falls due, or at :data:`RESULT_FLUSH_MAX` pending
entries, whichever comes first. Heartbeats are never starved behind a
large run: the service loop breaks out between tuples the moment the
heartbeat deadline passes. Tuples arriving as plain ``DATA`` are acked
with a per-tuple ``RESULT`` immediately, keeping the ``batch_size=1``
wire behavior identical to the pre-batching protocol.
"""

from __future__ import annotations

import argparse
import select
import signal
import socket
import sys
import time
from collections import deque

from repro.net import framing

#: Cumulative-ack cap: a RESULT_BATCH flushes at this many pending
#: entries even mid-run, bounding both ack latency under a huge backlog
#: and the frame size (well under ``framing.MAX_PAYLOAD``).
RESULT_FLUSH_MAX = 512


class WorkerMain:
    """The worker loop, factored as a class for in-process testing."""

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: int,
        incarnation: int,
        *,
        multiplier: float = 1.0,
        heartbeat_interval: float = 0.1,
        mode: str = "sleep",
        exit_after: int | None = None,
        exit_code: int = 1,
        connect_timeout: float = 10.0,
    ) -> None:
        if mode not in ("sleep", "spin"):
            raise ValueError(f"unknown mode {mode!r}")
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.multiplier = multiplier
        self.heartbeat_interval = heartbeat_interval
        self.mode = mode
        #: Debug harness: die with ``exit_code`` after N tuples — a
        #: deterministic stand-in for an external SIGKILL in tests of
        #: nonzero-exit crash detection.
        self.exit_after = exit_after
        self.exit_code = exit_code
        self.connect_timeout = connect_timeout
        self.control_multiplier = 1.0
        self.processed = 0
        self._draining = False
        #: Whether TCP_NODELAY stuck on the connect socket (None before
        #: connect) — introspectable for the nodelay regression test.
        self.nodelay_enabled: bool | None = None

    # ------------------------------------------------------------- service

    def _service(self, cost_seconds: float) -> float:
        """Perform one tuple's work; return the realized duration."""
        duration = cost_seconds * self.multiplier * self.control_multiplier
        if duration <= 0:
            return 0.0
        if self.mode == "sleep":
            time.sleep(duration)
            return duration
        # Spin: burn the CPU so N workers genuinely occupy N cores.
        deadline = time.perf_counter() + duration
        x = 1
        while time.perf_counter() < deadline:
            x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        return duration

    # ---------------------------------------------------------------- loop

    def run(self) -> int:
        """Connect, serve until told (or made) to stop; return exit code."""
        signal.signal(signal.SIGTERM, self._on_sigterm)
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.nodelay_enabled = bool(
                sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY)
            )
        except OSError:  # pragma: no cover - AF_UNIX in exotic setups
            pass
        sock.settimeout(None)
        sock.sendall(framing.encode_hello(self.worker_id, self.incarnation))
        assembler = framing.MessageAssembler()
        # Queue entries are ``(seq, cost, body, batched)``: batched
        # tuples accumulate a cumulative ack, unbatched ones ack per
        # tuple (the B=1 wire behavior, byte for byte).
        queue: deque[tuple[int, float, bytes, bool]] = deque()
        #: Serviced-but-unacked batched results awaiting one flush.
        pending: list[tuple[int, float, bytes]] = []
        next_heartbeat = time.monotonic() + self.heartbeat_interval
        try:
            while True:
                now = time.monotonic()
                if now >= next_heartbeat:
                    # The cumulative ack rides ahead of the beat so the
                    # parent's liveness view never outruns its results.
                    if pending:
                        sock.sendall(framing.encode_result_batch(pending))
                        pending.clear()
                    sock.sendall(
                        framing.encode_heartbeat(
                            self.processed, self.incarnation
                        )
                    )
                    next_heartbeat = now + self.heartbeat_interval
                if pending and not queue:
                    # The run is serviced: one RESULT_BATCH covers it.
                    sock.sendall(framing.encode_result_batch(pending))
                    pending.clear()
                if self._draining and not queue:
                    sock.sendall(framing.encode_bye(self.processed))
                    return 0
                # Poll for input; don't sleep if there is work queued.
                timeout = 0.0 if queue else min(
                    self.heartbeat_interval, next_heartbeat - now
                )
                readable, _, _ = select.select(
                    [sock], [], [], max(0.0, timeout)
                )
                if readable:
                    try:
                        chunk = sock.recv(65536)
                    except OSError:
                        return 0
                    if not chunk:
                        return 0  # parent is gone; nothing to report to
                    for message in assembler.feed(chunk):
                        if message.type == framing.MSG_DATA:
                            queue.append(message.data() + (False,))
                        elif message.type == framing.MSG_DATA_BATCH:
                            queue.extend(
                                entry + (True,)
                                for entry in message.data_batch()
                            )
                        elif message.type == framing.MSG_CONTROL:
                            self.control_multiplier = message.control()
                        elif message.type == framing.MSG_EOS:
                            self._draining = True
                # Service a whole run per wakeup, breaking out between
                # tuples the moment a heartbeat falls due so liveness is
                # never starved behind a large batch.
                while queue:
                    seq, cost, body, batched = queue.popleft()
                    realized = self._service(cost)
                    self.processed += 1
                    if batched:
                        pending.append((seq, realized, body))
                        if len(pending) >= RESULT_FLUSH_MAX:
                            sock.sendall(
                                framing.encode_result_batch(pending)
                            )
                            pending.clear()
                    else:
                        sock.sendall(
                            framing.encode_result(seq, realized, body)
                        )
                    if (
                        self.exit_after is not None
                        and self.processed >= self.exit_after
                    ):
                        # A crash stand-in: die with pending acks
                        # unsent, exactly like a SIGKILL mid-batch.
                        return self.exit_code
                    if time.monotonic() >= next_heartbeat:
                        break
        except (framing.TruncatedStreamError, OSError):
            # A torn parent stream / dead parent: nothing useful left to
            # do. Exit zero — the parent decides what this death means.
            return 0
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _on_sigterm(self, _signum, _frame) -> None:
        self._draining = True


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.proc.worker",
        description="One worker process of the multi-process dataplane.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--incarnation", type=int, default=0)
    parser.add_argument("--multiplier", type=float, default=1.0)
    parser.add_argument("--heartbeat-interval", type=float, default=0.1)
    parser.add_argument("--mode", choices=("sleep", "spin"), default="sleep")
    parser.add_argument("--exit-after", type=int, default=None)
    parser.add_argument("--exit-code", type=int, default=1)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    worker = WorkerMain(
        args.host,
        args.port,
        args.worker_id,
        args.incarnation,
        multiplier=args.multiplier,
        heartbeat_interval=args.heartbeat_interval,
        mode=args.mode,
        exit_after=args.exit_after,
        exit_code=args.exit_code,
    )
    return worker.run()


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
