"""The multi-process ordered region: splitter + merger in the parent.

Topology::

    caller thread --submit()--> weighted splitter --TCP--> worker procs
    acceptor thread: accepts (re)connecting workers, reads HELLO
    one receiver thread per live connection: results, heartbeats
    supervisor monitor thread: liveness, restarts (repro.proc.supervisor)

Correctness invariants, in the order they matter:

1. *Bounded retransmit buffers.* Every tuple is registered in its
   worker's ``unacked`` map **before** the bytes hit the socket (for
   ``batch_size > 1``, before it even enters the slot's send outbox),
   and removed only when its RESULT arrives. A worker's window is
   capped at ``window`` in-flight tuples — buffered-but-unflushed
   tuples count — and the splitter blocks (and charges the paper's
   per-connection blocking counter) when its weighted choice is full:
   the same backpressure signal the balancer consumes in the simulator.

2. *Exactly-once output across kills.* A global ``seq -> owner`` map
   dedupes: the first RESULT for a sequence wins, later ones (a replay
   racing the original worker's last breath) are dropped. On a death the
   dead slot's unacked tuples are replayed to survivors — or parked
   until a restart lands — so the merger always converges to the full
   gap-free sequence. The dead slot's outbox is discarded wholesale:
   everything in it is in ``unacked`` and re-batches through replay.

3. *No blocking sends under the region lock.* Death handling collects
   replay entries under the lock but performs the sends outside it;
   a send that fails simply funnels into the same death path. Batch
   flushes pop a whole outbox under the region lock and ship it with
   one send-lock acquisition and one ``sendall`` outside it.

With ``batch_size=B > 1`` the splitter accumulates each worker's run in
its slot outbox and flushes a single columnar ``DATA_BATCH`` frame when
the run reaches ``B`` tuples — or earlier, whenever the splitter is
about to block, drain, close, or finish a failover, so no tuple is ever
stranded in a buffer the worker cannot see. ``batch_size=1`` keeps the
original one-``DATA``-frame-per-tuple wire behavior byte for byte.

The ordered merger is a tiny reorder buffer keyed on the global
sequence number; output order is submission order regardless of which
worker (or which incarnation of which worker) serviced each tuple.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.net import framing
from repro.net.blocking import BlockingCounter
from repro.net.socket_transport import RegionStalledError
from repro.proc.supervisor import (
    UP,
    QUARANTINED,
    Supervisor,
    SupervisorConfig,
    WorkerSlot,
)
from repro.util.validation import check_positive


@dataclass(slots=True)
class ProcessRunStats:
    """Outcome of one process-backend run, in plain numbers."""

    #: Tuples submitted (sequence numbers issued).
    tuples: int
    #: Unique results delivered through the ordered merger.
    results: int
    #: Redundant results dropped by the seq->owner dedup.
    duplicates_dropped: int
    #: Tuples re-sent after a worker death.
    replayed: int
    #: Supervised restarts performed.
    restarts: int
    #: Slots permanently removed by the restart-budget circuit breaker.
    quarantined: list[int]
    #: Worker death episodes detected.
    episodes: int
    #: Fault-injection -> detection latency of the first episode (s).
    time_to_quarantine: float | None
    #: Detection -> service-restored latency of the first episode (s).
    time_to_reconverge: float | None
    #: Region-clock duration of the run.
    wall_seconds: float
    #: Results credited to each slot (all incarnations).
    per_worker_results: list[int]
    #: Splitter blocking charged to each slot, in seconds.
    blocked_seconds: list[float]
    #: ``(slot, signal)`` escalations needed at shutdown.
    escalated: list = field(default_factory=list)
    #: Wire frames written to worker sockets (all types).
    wire_frames_sent: int = 0
    #: Wire bytes written to worker sockets.
    wire_bytes_sent: int = 0
    #: Wire frames read from worker sockets (results, acks, beats).
    wire_frames_received: int = 0
    #: DATA/DATA_BATCH flushes performed (each is one ``sendall``).
    data_flushes: int = 0
    #: Mean tuples per data flush (1.0 exactly when ``batch_size=1``).
    mean_batch_occupancy: float = 0.0

    def as_dict(self) -> dict:
        return {
            "tuples": self.tuples,
            "results": self.results,
            "duplicates_dropped": self.duplicates_dropped,
            "replayed": self.replayed,
            "restarts": self.restarts,
            "quarantined": list(self.quarantined),
            "episodes": self.episodes,
            "time_to_quarantine": self.time_to_quarantine,
            "time_to_reconverge": self.time_to_reconverge,
            "wall_seconds": self.wall_seconds,
            "per_worker_results": list(self.per_worker_results),
            "blocked_seconds": list(self.blocked_seconds),
            "escalated": [list(e) for e in self.escalated],
            "wire_frames_sent": self.wire_frames_sent,
            "wire_bytes_sent": self.wire_bytes_sent,
            "wire_frames_received": self.wire_frames_received,
            "data_flushes": self.data_flushes,
            "mean_batch_occupancy": self.mean_batch_occupancy,
        }


class _Reorderer:
    """Reorder buffer: emits ``(seq, body)`` in global sequence order."""

    __slots__ = ("next_expected", "pending")

    def __init__(self) -> None:
        self.next_expected = 0
        self.pending: dict[int, bytes] = {}

    def push(self, seq: int, body: bytes) -> list[tuple[int, bytes]]:
        """Absorb one result; return everything now emittable, in order."""
        if seq < self.next_expected or seq in self.pending:
            return []  # defensive: the owner map should have deduped
        self.pending[seq] = body
        out: list[tuple[int, bytes]] = []
        while self.next_expected in self.pending:
            out.append(
                (self.next_expected, self.pending.pop(self.next_expected))
            )
            self.next_expected += 1
        return out

    @property
    def held(self) -> int:
        return len(self.pending)


class ProcessRegion:
    """An ordered data-parallel region over real worker processes."""

    def __init__(
        self,
        n_workers: int,
        *,
        multipliers: Sequence[float] | None = None,
        window: int = 64,
        batch_size: int = 1,
        supervisor_config: SupervisorConfig | None = None,
        balancer=None,
        balancer_interval: float = 1.0,
        initial_weights: Sequence[float] | None = None,
        send_stall_timeout: float = 30.0,
        sink: Callable[[int, bytes], None] | None = None,
        host: str = "127.0.0.1",
    ) -> None:
        check_positive("n_workers", n_workers)
        check_positive("window", window)
        check_positive("batch_size", batch_size)
        check_positive("balancer_interval", balancer_interval)
        check_positive("send_stall_timeout", send_stall_timeout)
        if multipliers is None:
            multipliers = [1.0] * n_workers
        if len(multipliers) != n_workers:
            raise ValueError(
                f"{len(multipliers)} multipliers for {n_workers} workers"
            )
        self.n_workers = n_workers
        self.window = window
        self.batch_size = batch_size
        self.balancer = balancer
        self.balancer_interval = balancer_interval
        self.send_stall_timeout = send_stall_timeout
        self.sink = sink
        self.host = host
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self.slots = [
            WorkerSlot(index=j, multiplier=float(m))
            for j, m in enumerate(multipliers)
        ]
        #: The paper's per-connection cumulative blocking counters,
        #: charged with real wall time the splitter spends blocked.
        self.block_counters = [BlockingCounter() for _ in range(n_workers)]
        # Routing weights: explicit override first, then balancer-solved,
        # then static speed-proportional (1/multiplier).
        if initial_weights is not None:
            if len(initial_weights) != n_workers:
                raise ValueError(
                    f"{len(initial_weights)} initial_weights for "
                    f"{n_workers} workers"
                )
            total = sum(initial_weights)
            if total <= 0:
                raise ValueError("initial_weights must sum to > 0")
            self._route_weights = [w / total for w in initial_weights]
        elif balancer is not None:
            self._route_weights = [float(w) for w in balancer.weights]
        else:
            inv = [1.0 / m for m in multipliers]
            total = sum(inv)
            self._route_weights = [w / total for w in inv]
        self._wrr = [0.0] * n_workers
        self._last_balance = 0.0
        self._socks: list[socket.socket | None] = [None] * n_workers
        self._send_locks = [threading.Lock() for _ in range(n_workers)]
        # Wire accounting, one cell per worker so each is only ever
        # touched under that worker's send lock (out) or by its single
        # receiver thread (in) — no shared hot counter.
        self._wire_frames_out = [0] * n_workers
        self._wire_bytes_out = [0] * n_workers
        self._wire_frames_in = [0] * n_workers
        self._data_flushes = [0] * n_workers
        self._data_tuples_flushed = [0] * n_workers
        self._recv_threads: list[threading.Thread] = []
        self._owner: dict[int, int] = {}
        self._parked: list[tuple[int, float, bytes]] = []
        self._reorderer = _Reorderer()
        self.outputs: list[tuple[int, bytes]] = []
        self._next_seq = 0
        self._results = 0
        self._duplicates = 0
        self._replayed = 0
        self._service_seconds = 0.0
        self._fatal: Exception | None = None
        self._closing = False
        self._started = False
        self._t0: float | None = None
        self._escalated: list[tuple[int, str]] = []
        self._obs = None
        self._blocking_hist = None
        self._occupancy_hist = None
        # Bind before the supervisor exists so spawns know the port.
        self._listener_sock = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        self._listener_sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener_sock.bind((host, 0))
        self._listener_sock.listen(n_workers * 2)
        self.port = self._listener_sock.getsockname()[1]
        self.supervisor = Supervisor(
            self.slots,
            port=self.port,
            listener=self,
            lock=self._lock,
            clock=self.clock,
            config=supervisor_config,
            host=host,
        )
        self._accept_thread: threading.Thread | None = None

    # ----------------------------------------------------------------- clock

    def clock(self) -> float:
        """Region wall clock: seconds since :meth:`start` (0 before)."""
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ProcessRegion":
        if self._started:
            raise RuntimeError("region already started")
        self._started = True
        self._t0 = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-region-accept", daemon=True
        )
        self._accept_thread.start()
        self.supervisor.start()
        return self

    def wait_ready(self, timeout: float | None = None) -> "ProcessRegion":
        """Block until every live worker slot is connected and serving.

        Separates one-time warm-up (interpreter spawn, connect, HELLO)
        from steady-state operation: benchmarks start their clock after
        this returns, and callers that want the first ``submit`` to go
        straight onto a socket (instead of parking behind a spawning
        worker) call it too. Quarantined slots don't count — a region
        that lost slots permanently is still "ready" on the survivors.
        Raises ``TimeoutError`` if the deadline passes first.
        """
        if not self._started:
            raise RuntimeError("region not started")
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._cv:
            while True:
                if self._fatal is not None:
                    raise self._fatal
                live = [
                    s for s in self.slots if s.state != QUARANTINED
                ]
                if live and all(
                    s.state == UP
                    and self._socks[s.index] is not None
                    for s in live
                ):
                    return self
                wait = 0.05
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            "workers did not all connect within "
                            f"{timeout}s"
                        )
                    wait = min(wait, remaining)
                self._cv.wait(wait)

    def submit(self, cost_seconds: float, body: bytes = b"") -> int:
        """Route one tuple; blocks on backpressure; returns its seq."""
        if not self._started:
            raise RuntimeError("region not started")
        if self._closing:
            raise RuntimeError("region is closing")
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        self._route_and_send(seq, cost_seconds, body, replay=False)
        return seq

    def drain(self, timeout: float | None = None) -> None:
        """Block until every submitted tuple's result has been merged.

        Flushes every partial send buffer on entry (and on each wake, so
        replays re-batched mid-drain cannot strand a short run): a
        trailing batch below ``batch_size`` must still reach its worker.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            # Outside the region lock: flushing performs socket sends.
            self._flush_outboxes()
            with self._cv:
                if self._fatal is not None:
                    raise self._fatal
                if self._results >= self._next_seq:
                    return
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise RegionStalledError(
                        f"drain timed out with {self._results} of "
                        f"{self._next_seq} results after {timeout:g}s"
                    )
                self._cv.wait(timeout=0.1 if remaining is None
                              else min(0.1, remaining))

    def close(self) -> list[tuple[int, str]]:
        """Graceful shutdown: EOS to every live worker, then escalate.

        Returns the ``(slot, signal)`` escalations that were required;
        an empty list means every worker drained and exited on its own.
        """
        with self._cv:
            if self._closing:
                return list(self._escalated)
            self._closing = True
            self._cv.notify_all()
        # Ship any buffered partial batches before EOS so the drain
        # request never overtakes data on the same stream.
        self._flush_outboxes()
        for slot in self.slots:
            if slot.state == UP:
                self._send_frame(slot.index, framing.encode_eos())
        self._escalated = self.supervisor.shutdown()
        try:
            self._listener_sock.close()
        except OSError:  # pragma: no cover
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            for j, sock in enumerate(self._socks):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:  # pragma: no cover
                        pass
                    self._socks[j] = None
        for thread in self._recv_threads:
            thread.join(timeout=5.0)
        return list(self._escalated)

    def run(
        self,
        costs: Sequence[float],
        *,
        bodies: Sequence[bytes] | None = None,
        timeout: float | None = None,
    ) -> ProcessRunStats:
        """Convenience: start if needed, submit all, drain, close."""
        if not self._started:
            self.start()
        try:
            for i, cost in enumerate(costs):
                self.submit(
                    cost, b"" if bodies is None else bodies[i]
                )
            self.drain(timeout=timeout)
        finally:
            self.close()
        return self.stats()

    def stats(self) -> ProcessRunStats:
        with self._lock:
            flushes = sum(self._data_flushes)
            flushed = sum(self._data_tuples_flushed)
            return ProcessRunStats(
                tuples=self._next_seq,
                results=self._results,
                duplicates_dropped=self._duplicates,
                replayed=self._replayed,
                restarts=self.supervisor.restarts,
                quarantined=self.supervisor.quarantined,
                episodes=len(self.supervisor.episodes),
                time_to_quarantine=(
                    self.supervisor.first_time_to_quarantine()
                ),
                time_to_reconverge=(
                    self.supervisor.first_time_to_reconverge()
                ),
                wall_seconds=self.clock(),
                per_worker_results=[s.results for s in self.slots],
                blocked_seconds=[
                    c.lifetime_seconds for c in self.block_counters
                ],
                escalated=list(self._escalated),
                wire_frames_sent=sum(self._wire_frames_out),
                wire_bytes_sent=sum(self._wire_bytes_out),
                wire_frames_received=sum(self._wire_frames_in),
                data_flushes=flushes,
                mean_batch_occupancy=(
                    flushed / flushes if flushes else 0.0
                ),
            )

    # --------------------------------------------------------------- control

    def send_control(self, index: int, multiplier: float) -> bool:
        """Set a live worker's service-time multiplier (slowdown faults)."""
        return self._send_frame(index, framing.encode_control(multiplier))

    @property
    def results(self) -> int:
        with self._lock:
            return self._results

    @property
    def emitted(self) -> int:
        """Tuples emitted by the ordered merger (gap-free prefix)."""
        with self._lock:
            return self._reorderer.next_expected

    def attach_observability(self, hub) -> None:
        """Register region + supervisor instruments on ``hub``.

        Construct the hub with :meth:`clock` so span timestamps, metric
        snapshots, and the supervisor's ttq/ttr episodes all share the
        region wall clock.
        """
        self._obs = hub
        self.supervisor.attach_observability(hub)
        registry = hub.registry
        registry.gauge_fn(
            "process_region_results_total",
            lambda: self._results,
            help="Unique results merged",
        )
        registry.gauge_fn(
            "process_region_replayed_total",
            lambda: self._replayed,
            help="Tuples replayed after worker deaths",
        )
        registry.gauge_fn(
            "process_region_duplicates_total",
            lambda: self._duplicates,
            help="Redundant results dropped by dedup",
        )
        registry.gauge_fn(
            "process_region_inflight",
            lambda: sum(len(s.unacked) for s in self.slots),
            help="Tuples awaiting results across all workers",
        )
        self._blocking_hist = registry.histogram(
            "process_region_block_seconds",
            help="Splitter blocking episode durations",
        )
        registry.gauge_fn(
            "process_region_wire_frames_sent_total",
            lambda: sum(self._wire_frames_out),
            help="Wire frames written to worker sockets",
        )
        registry.gauge_fn(
            "process_region_wire_bytes_sent_total",
            lambda: sum(self._wire_bytes_out),
            help="Wire bytes written to worker sockets",
        )
        registry.gauge_fn(
            "process_region_wire_frames_received_total",
            lambda: sum(self._wire_frames_in),
            help="Wire frames read from worker sockets",
        )
        registry.gauge_fn(
            "process_region_data_flushes_total",
            lambda: sum(self._data_flushes),
            help="DATA/DATA_BATCH flushes (one sendall each)",
        )
        self._occupancy_hist = registry.histogram(
            "process_region_batch_occupancy",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
            help="Tuples carried per flushed data frame",
        )

    # ---------------------------------------------- supervisor callbacks

    def on_slot_down(self, slot: WorkerSlot, reason: str) -> None:
        """Fail over: detach the socket, replay the dead slot's window.

        The slot's outbox is discarded outright — every buffered tuple
        is registered in ``unacked``, so the replay loop below re-routes
        (and re-batches) it; keeping the stale outbox would double-send
        on the slot's next incarnation.
        """
        with self._cv:
            sock = self._socks[slot.index]
            self._socks[slot.index] = None
            entries = sorted(slot.unacked.items())
            slot.unacked.clear()
            slot.outbox = []
            for seq, _ in entries:
                self._owner.pop(seq, None)
            self._replayed += len(entries)
            self._cv.notify_all()
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        if self._closing:
            return
        for seq, (cost, body) in entries:
            self._route_and_send(seq, cost, body, replay=True)
        # Replays re-batch through the survivors' outboxes; a trailing
        # partial run must not wait for unrelated future traffic.
        self._flush_outboxes()

    def on_slot_up(self, slot: WorkerSlot) -> None:
        """A (re)connected worker is serving: flush parked tuples."""
        with self._cv:
            parked, self._parked = self._parked, []
            self._cv.notify_all()
        for seq, cost, body in sorted(parked):
            self._route_and_send(seq, cost, body, replay=True)
        self._flush_outboxes()

    def on_slot_quarantined(self, slot: WorkerSlot) -> None:
        """The circuit breaker removed a slot: re-solve the weights."""
        with self._cv:
            if self.balancer is not None:
                if slot.index not in self.balancer.quarantined:
                    self.balancer.quarantine(slot.index)
                self._route_weights = [
                    float(w) for w in self.balancer.weights
                ]
            else:
                # Renormalize speed-proportional weights over survivors.
                live = [
                    s for s in self.slots if s.state != QUARANTINED
                ]
                if live:
                    inv = {s.index: 1.0 / s.multiplier for s in live}
                    total = sum(inv.values())
                    self._route_weights = [
                        inv.get(j, 0.0) / total
                        for j in range(self.n_workers)
                    ]
            if all(s.state == QUARANTINED for s in self.slots):
                self._fatal = RegionStalledError(
                    "every worker slot exhausted its restart budget; "
                    "the region cannot make progress"
                )
            self._cv.notify_all()

    # -------------------------------------------------------------- routing

    def _pick_locked(self) -> tuple[WorkerSlot | None, int | None]:
        """Smooth weighted round-robin over serving slots.

        Returns ``(slot, None)`` on success. When the weighted choice's
        retransmit window is full, returns ``(None, index)`` without
        mutating scheduler state — the caller blocks on that slot (the
        paper's blocking signal) and retries the identical choice.
        Returns ``(None, None)`` when no slot is serving at all.
        """
        eligible = [
            s for s in self.slots
            if s.state == UP and self._socks[s.index] is not None
        ]
        if not eligible:
            return None, None
        total = 0.0
        best = None
        best_score = 0.0
        for s in eligible:
            w = max(self._route_weights[s.index], 1e-9)
            total += w
            score = self._wrr[s.index] + w
            if best is None or score > best_score:
                best, best_score = s, score
        if len(best.unacked) >= self.window:
            return None, best.index
        for s in eligible:
            self._wrr[s.index] += max(self._route_weights[s.index], 1e-9)
        self._wrr[best.index] -= total
        return best, None

    def _route_and_send(
        self, seq: int, cost: float, body: bytes, *, replay: bool
    ) -> None:
        """Route one tuple into its worker's run; flush when it is due."""
        flush = self._route_one(seq, cost, body, replay=replay)
        if flush is not None:
            self._dispatch_entries(*flush)

    def _route_one(
        self, seq: int, cost: float, body: bytes, *, replay: bool
    ) -> tuple[int, int, list[tuple[int, float, bytes]]] | None:
        """Pick a worker and buffer one tuple, blocking on backpressure.

        Returns a ``(index, incarnation, entries)`` flush order when the
        chosen slot's run reached ``batch_size`` (always, at B=1), or
        ``None`` when the tuple is parked or left buffered for a later
        flush. Before the caller ever blocks waiting for window space,
        every non-empty outbox is flushed — a buffered tuple cannot be
        acked, so waiting on it without flushing would deadlock.

        Replays never block: a full window is tolerated (transiently up
        to 2x bounded) and a dead region parks the tuple for the next
        slot-up instead of wedging a supervisor callback thread.
        """
        block_started: float | None = None
        block_slot: int | None = None
        stall_deadline = time.monotonic() + self.send_stall_timeout
        while True:
            to_flush: list = []
            with self._cv:
                if self._fatal is not None:
                    raise self._fatal
                if self._closing and not replay:
                    raise RuntimeError("region is closing")
                self._maybe_rebalance_locked()
                slot, blocked_on = self._pick_locked()
                if slot is None and replay:
                    if blocked_on is not None:
                        # Over-commit the window rather than block a
                        # failover path.
                        slot = self.slots[blocked_on]
                    else:
                        self._parked.append((seq, cost, body))
                        return None
                if slot is not None:
                    if block_started is not None:
                        self._charge_block(block_started, block_slot)
                        block_started = None
                    slot.unacked[seq] = (cost, body)
                    self._owner[seq] = slot.index
                    slot.outbox.append((seq, cost, body))
                    if len(slot.outbox) >= self.batch_size:
                        entries, slot.outbox = slot.outbox, []
                        return slot.index, slot.incarnation, entries
                    return None
                if blocked_on is not None:
                    if block_started is None or block_slot != blocked_on:
                        if block_started is not None:
                            self._charge_block(block_started, block_slot)
                        block_started = time.monotonic()
                        block_slot = blocked_on
                elif block_started is not None:
                    # An outage (no serving slot) is downtime, not
                    # backpressure: close the blocking episode.
                    self._charge_block(block_started, block_slot)
                    block_started = None
                if time.monotonic() > stall_deadline:
                    raise RegionStalledError(
                        f"no worker accepted seq {seq} within "
                        f"{self.send_stall_timeout:g}s "
                        f"(blocked_on={blocked_on})"
                    )
                to_flush = self._pop_outboxes_locked()
                if not to_flush:
                    self._cv.wait(timeout=0.05)
                    continue
            # Socket I/O strictly outside the region lock: ship every
            # pending run so acks can free the window, then retry the
            # same routing choice.
            for order in to_flush:
                self._dispatch_entries(*order)

    # ------------------------------------------------------------- flushing

    def _pop_outboxes_locked(
        self,
    ) -> list[tuple[int, int, list[tuple[int, float, bytes]]]]:
        """Take every non-empty outbox (lock held); sends happen later."""
        orders = []
        for slot in self.slots:
            if slot.outbox:
                entries, slot.outbox = slot.outbox, []
                orders.append((slot.index, slot.incarnation, entries))
        return orders

    def _flush_outboxes(self) -> None:
        """Flush every buffered partial run (no region lock held)."""
        with self._lock:
            orders = self._pop_outboxes_locked()
        for order in orders:
            self._dispatch_entries(*order)

    def _dispatch_entries(
        self,
        index: int,
        incarnation: int,
        entries: list[tuple[int, float, bytes]],
    ) -> None:
        """One flush: one frame, one send lock, one ``sendall``.

        A failed send is a death; the failover replays everything it
        finds in ``unacked``. Entries it did *not* see (we registered
        after a concurrent death was handled) are reclaimed here and
        re-routed — as replays, so a closing or dead region can park
        them instead of blocking.
        """
        if self._send_batch(index, entries):
            return
        self.supervisor.declare_dead(
            index, "send failed", incarnation=incarnation
        )
        stranded = []
        with self._lock:
            for seq, cost, body in entries:
                if self._owner.get(seq) == index:
                    self._owner.pop(seq)
                    self.slots[index].unacked.pop(seq, None)
                    stranded.append((seq, cost, body))
        for seq, cost, body in stranded:
            self._route_and_send(seq, cost, body, replay=True)

    def _send_batch(
        self, index: int, entries: list[tuple[int, float, bytes]]
    ) -> bool:
        """Encode one run as a single frame and ship it."""
        if self.batch_size == 1 and len(entries) == 1:
            # Byte-identical to the unbatched protocol: golden tests at
            # B=1 pin this wire format.
            frame = framing.encode_data(*entries[0])
        else:
            frame = framing.encode_data_batch(entries)
        return self._send_frame(index, frame, tuples=len(entries))

    def _charge_block(self, started: float, slot_index: int | None) -> None:
        """Close one splitter blocking episode (lock held)."""
        duration = time.monotonic() - started
        if slot_index is None:
            return
        self.block_counters[slot_index].add(duration)
        if self._obs is not None:
            end = self.clock()
            self._obs.tracer.record(
                "blocking", end - duration, end, channel=slot_index
            )
            if self._blocking_hist is not None:
                self._blocking_hist.observe(duration)

    def _maybe_rebalance_locked(self) -> None:
        """Feed the blocking counters to the balancer once per interval."""
        if self.balancer is None:
            return
        now = self.clock()
        if now - self._last_balance < self.balancer_interval:
            return
        self._last_balance = now
        weights = self.balancer.update(
            now, [c.read() for c in self.block_counters]
        )
        if weights is not None:
            self._route_weights = [float(w) for w in weights]

    # ------------------------------------------------------------ transport

    def _send_frame(
        self, index: int, frame: bytes, tuples: int = 0
    ) -> bool:
        """Ship one frame; ``tuples > 0`` marks it as a data flush."""
        with self._send_locks[index]:
            sock = self._socks[index]
            if sock is None:
                return False
            try:
                sock.sendall(frame)
            except OSError:
                return False
            # Wire accounting under the send lock: per-worker cells, so
            # concurrent flushes to different workers never contend.
            self._wire_frames_out[index] += 1
            self._wire_bytes_out[index] += len(frame)
            if tuples:
                self._data_flushes[index] += 1
                self._data_tuples_flushed[index] += tuples
                if self._occupancy_hist is not None:
                    self._occupancy_hist.observe(tuples)
            return True

    def _accept_loop(self) -> None:
        # The listener carries an accept timeout: closing a socket from
        # another thread does not wake a blocked accept() on Linux, so
        # the loop must poll its own exit condition.
        self._listener_sock.settimeout(0.25)
        while True:
            try:
                conn, _ = self._listener_sock.accept()
            except TimeoutError:
                if self._closing:
                    return
                continue
            except OSError:
                return  # listener closed: region shutdown
            try:
                self._admit(conn)
            except (framing.TruncatedStreamError, OSError, ValueError):
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    def _admit(self, conn: socket.socket) -> None:
        """Read HELLO, attach the connection, hand the slot to serving."""
        conn.settimeout(10.0)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover
            pass
        assembler = framing.MessageAssembler()
        hello = None
        backlog: list[framing.Message] = []
        while hello is None:
            chunk = conn.recv(65536)
            if not chunk:
                raise framing.TruncatedStreamError("EOF before HELLO")
            messages = assembler.feed(chunk)
            if messages:
                if messages[0].type != framing.MSG_HELLO:
                    raise ValueError(
                        f"first message must be HELLO, got "
                        f"type={messages[0].type}"
                    )
                hello = messages[0]
                backlog = messages[1:]
        worker_id, incarnation = hello.hello()
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"HELLO from unknown worker {worker_id}")
        conn.settimeout(None)
        slot = self.slots[worker_id]
        with self._lock:
            if (
                incarnation != slot.incarnation
                or slot.state == QUARANTINED
                or self._closing
            ):
                conn.close()
                return
            old = self._socks[worker_id]
            self._socks[worker_id] = conn
        if old is not None:  # pragma: no cover - stale socket leak guard
            try:
                old.close()
            except OSError:
                pass
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(slot, conn, assembler, incarnation, backlog),
            name=f"repro-region-recv-{worker_id}",
            daemon=True,
        )
        self._recv_threads.append(receiver)
        receiver.start()
        if not self.supervisor.on_connected(worker_id, incarnation):
            with self._lock:
                if self._socks[worker_id] is conn:
                    self._socks[worker_id] = None
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _receive_loop(
        self,
        slot: WorkerSlot,
        conn: socket.socket,
        assembler: framing.MessageAssembler,
        incarnation: int,
        backlog: list[framing.Message],
    ) -> None:
        torn = None
        try:
            for message in backlog:
                self._handle_message(slot, incarnation, message)
            self._wire_frames_in[slot.index] += len(backlog)
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    assembler.eof()  # raises if the peer died mid-frame
                    break
                messages = assembler.feed(chunk)
                self._wire_frames_in[slot.index] += len(messages)
                for message in messages:
                    self._handle_message(slot, incarnation, message)
        except framing.TruncatedStreamError as exc:
            torn = str(exc)
        except OSError:
            pass
        if not self._closing:
            self.supervisor.declare_dead(
                slot.index,
                torn or "connection lost",
                incarnation=incarnation,
            )

    def _absorb_result_locked(
        self, slot: WorkerSlot, seq: int, body: bytes
    ) -> None:
        """Dedup + credit + merge one result (region lock held)."""
        owner = self._owner.pop(seq, None)
        if owner is None:
            self._duplicates += 1
            return
        self.slots[owner].unacked.pop(seq, None)
        slot.results += 1
        self._results += 1
        for out_seq, out_body in self._reorderer.push(seq, body):
            if self.sink is not None:
                self.sink(out_seq, out_body)
            else:
                self.outputs.append((out_seq, out_body))

    def _handle_message(
        self, slot: WorkerSlot, incarnation: int, message: framing.Message
    ) -> None:
        if message.type == framing.MSG_RESULT:
            seq, _service, body = message.result()
            with self._cv:
                self._absorb_result_locked(slot, seq, body)
                self._cv.notify_all()
            self.supervisor.heartbeat(slot.index, incarnation)
        elif message.type == framing.MSG_RESULT_BATCH:
            # One cumulative ack run: one lock acquisition, one wakeup,
            # one liveness refresh for the whole batch. A replayed batch
            # overlapping already-acked seqs dedupes entry by entry —
            # first result wins, the rest count as duplicates.
            entries = message.result_batch()
            with self._cv:
                for seq, _service, body in entries:
                    self._absorb_result_locked(slot, seq, body)
                self._cv.notify_all()
            self.supervisor.heartbeat(slot.index, incarnation)
        elif message.type == framing.MSG_HEARTBEAT:
            _processed, beat_incarnation = message.heartbeat()
            self.supervisor.heartbeat(slot.index, beat_incarnation)
        elif message.type == framing.MSG_BYE:
            self.supervisor.heartbeat(slot.index, incarnation)
        # HELLO/DATA/CONTROL/EOS are parent->worker or handled at admit.
