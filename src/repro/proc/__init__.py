"""The multi-process dataplane: real worker processes over real sockets.

The simulator (:mod:`repro.sim`) is the experiment workhorse; this
package is the *system*: the splitter and the ordered merger run in the
parent process, every worker is a separate OS process reached over a
framed TCP connection (:mod:`repro.net.framing`), and a
:class:`~repro.proc.supervisor.Supervisor` owns the worker lifecycle —
spawn, heartbeat liveness, crash detection, capped-jittered-backoff
restarts with a restart-budget circuit breaker, and quarantine.

Ordered exactly-once delivery holds across real ``SIGKILL``: every
in-flight tuple sits in a bounded per-worker retransmit buffer until its
result comes back, a dead worker's unacknowledged tuples are replayed to
survivors, and the merger deduplicates by sequence number while emitting
the gap-free ordered stream.

Entry points:

* :class:`~repro.proc.region.ProcessRegion` — the library API;
* ``python -m repro.proc.worker`` — the worker executable (spawned by
  the supervisor, rarely run by hand);
* :class:`~repro.proc.faults.RealFaultDriver` — arms a declarative
  :class:`~repro.faults.schedule.FaultSchedule` as real signals
  (``SIGKILL``/``SIGSTOP``/``SIGCONT``) against live worker processes;
* ``--backend=process`` on the CLI / ``RegionParams(backend="process")``
  via :func:`repro.experiments.process_backend.run_process_experiment`.
"""

import importlib

#: Public name -> defining module, resolved lazily (PEP 562): the worker
#: executable imports this package on startup and must not pay for the
#: parent-side region/supervisor machinery it never uses.
_EXPORTS = {
    "ProcessRegion": "repro.proc.region",
    "ProcessRunStats": "repro.proc.region",
    "RealFaultDriver": "repro.proc.faults",
    "Supervisor": "repro.proc.supervisor",
    "SupervisorConfig": "repro.proc.supervisor",
    "WorkerSlot": "repro.proc.supervisor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
