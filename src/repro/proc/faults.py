"""Real fault injection: declarative schedules fired as real signals.

The simulator arms a :class:`~repro.faults.schedule.FaultSchedule` as
clock callbacks against a model injector. Here the *same schedule* is
armed against live worker processes:

* :class:`~repro.faults.schedule.CrashEvent` -> ``SIGKILL``. The
  supervisor's own policy (capped jittered backoff, restart budget)
  governs the restart, so ``restart_after`` is ignored — real
  supervision does not take restart timing hints from the failure.
* :class:`~repro.faults.schedule.StallEvent` -> ``SIGSTOP`` now,
  ``SIGCONT`` after ``duration``. A stopped process keeps its socket
  open but stops heartbeating, which is exactly the wedged-connection
  failure the sim models; the supervisor detects the silence, SIGKILLs
  the frozen incarnation, and restarts — so the late ``SIGCONT`` lands
  on a corpse, harmlessly.
* :class:`~repro.faults.schedule.SlowdownEvent` -> a CONTROL frame
  setting the service-time multiplier. The process tree is one host, so
  the host-wide slowdown applies to every live worker (and re-applies
  to restarts that land during the burst).
* :class:`~repro.faults.schedule.CountCrashEvent` -> ``SIGKILL`` once
  the ordered merger has emitted ``emitted`` tuples, polled off the
  region's real progress counter.
* :class:`~repro.faults.schedule.OverloadBurstEvent` is demand-side and
  has no process-backend equivalent: arming one raises.

Every fault is announced to the supervisor via ``note_fault`` *before*
the signal fires, so the recovery episodes' time-to-quarantine measures
true injection-to-detection latency on the shared region clock.
"""

from __future__ import annotations

import signal
import threading

from repro.faults.schedule import FaultSchedule
from repro.util.validation import check_positive


class RealFaultDriver:
    """Fires an armed :class:`FaultSchedule` against a live region."""

    def __init__(self, region, *, poll_interval: float = 0.005) -> None:
        check_positive("poll_interval", poll_interval)
        self.region = region
        self.supervisor = region.supervisor
        self.poll_interval = poll_interval
        #: Pending timed actions: ``(due_time, description, thunk)``.
        self._timed: list[tuple[float, str, callable]] = []
        #: Pending progress-triggered crashes: ``(emitted, worker)``.
        self._counted: list[tuple[int, int]] = []
        #: Multiplier currently in force per the slowdown schedule.
        self._slowdown = 1.0
        #: Everything that actually fired: ``(region time, description)``.
        self.fired: list[tuple[float, str]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # ---------------------------------------------------------------- arming

    def arm(self, schedule: FaultSchedule) -> "RealFaultDriver":
        """Translate ``schedule`` into pending signal/control actions."""
        schedule.validate(self.region.n_workers)
        if schedule.bursts:
            raise ValueError(
                "overload bursts drive the offered arrival rate; the "
                "process backend has no rated source to burst"
            )
        for event in schedule.crashes:
            self._timed.append((
                event.time,
                f"SIGKILL worker {event.worker}",
                lambda e=event: self._kill(e.worker, signal.SIGKILL),
            ))
        for event in schedule.stalls:
            self._timed.append((
                event.time,
                f"SIGSTOP worker {event.worker}",
                lambda e=event: self._kill(e.worker, signal.SIGSTOP),
            ))
            if event.duration is not None:
                self._timed.append((
                    event.time + event.duration,
                    f"SIGCONT worker {event.worker}",
                    lambda e=event: self.supervisor.kill(
                        e.worker, signal.SIGCONT
                    ),
                ))
        for event in schedule.slowdowns:
            self._timed.append((
                event.time,
                f"slowdown x{event.multiplier:g}",
                lambda e=event: self._set_slowdown(e.multiplier),
            ))
            if event.duration is not None:
                self._timed.append((
                    event.time + event.duration,
                    "slowdown end",
                    lambda e=event: self._set_slowdown(1.0),
                ))
        for event in schedule.count_crashes:
            self._counted.append((event.emitted, event.worker))
        self._timed.sort(key=lambda t: t[0])
        self._counted.sort()
        return self

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "RealFaultDriver":
        if self._thread is not None:
            raise RuntimeError("fault driver already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-fault-driver", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def exhausted(self) -> bool:
        """Whether every armed action has fired."""
        return not self._timed and not self._counted

    # -------------------------------------------------------------- internal

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            now = self.region.clock()
            while self._timed and self._timed[0][0] <= now:
                _, description, thunk = self._timed.pop(0)
                thunk()
                self.fired.append((now, description))
            if self._counted:
                emitted = self.region.emitted
                while self._counted and self._counted[0][0] <= emitted:
                    _, worker = self._counted.pop(0)
                    self._kill(worker, signal.SIGKILL)
                    self.fired.append((
                        now,
                        f"SIGKILL worker {worker} at emitted={emitted}",
                    ))
            if self.exhausted:
                return

    def _kill(self, worker: int, sig: int) -> None:
        """Announce then deliver a lethal/freezing signal."""
        self.supervisor.note_fault(worker)
        self.supervisor.kill(worker, sig)

    def _set_slowdown(self, multiplier: float) -> None:
        self._slowdown = multiplier
        for slot in self.region.slots:
            self.region.send_control(slot.index, multiplier)
